"""Cache replacement policies: LRU and RRIP.

The paper's IBTB is managed with re-reference interval prediction (RRIP,
Jaleel et al.) using 2-bit re-reference values (§3.1, §4.2), and its
region array with LRU (§3.6).  Both policies are implemented over an
abstract "set of ways" so the IBTB, region array, and the baseline BTBs
share them.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.state import Stateful, check_state, require


class LRUPolicy(Stateful):
    """Least-recently-used replacement over ``num_ways`` ways of one set.

    Tracks a recency stack as a list of way indices, most recent first.
    Ways never touched sort older than any touched way.
    """

    __slots__ = ("num_ways", "_stack")

    def __init__(self, num_ways: int) -> None:
        if num_ways < 1:
            raise ValueError(f"need >= 1 ways, got {num_ways}")
        self.num_ways = num_ways
        self._stack: List[int] = []

    def touch(self, way: int) -> None:
        """Mark ``way`` as most recently used."""
        self._check(way)
        if way in self._stack:
            self._stack.remove(way)
        self._stack.insert(0, way)

    def victim(self) -> int:
        """The way to evict: least-recently used, preferring untouched ways."""
        touched = set(self._stack)
        for way in range(self.num_ways):
            if way not in touched:
                return way
        return self._stack[-1]

    def evict(self, way: int) -> None:
        """Forget recency state for ``way`` (it now holds a fresh line)."""
        self._check(way)
        if way in self._stack:
            self._stack.remove(way)

    def _check(self, way: int) -> None:
        if not 0 <= way < self.num_ways:
            raise ValueError(f"way {way} out of range [0, {self.num_ways})")

    def recency_order(self) -> List[int]:
        """Way indices from most to least recently used (touched ways only)."""
        return list(self._stack)

    @staticmethod
    def storage_bits_per_entry(num_ways: int) -> int:
        """Bits to encode a position in an ``num_ways`` recency stack."""
        return max(1, (num_ways - 1).bit_length())

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "LRUPolicy",
            "num_ways": self.num_ways,
            "stack": list(self._stack),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "LRUPolicy")
        require(
            state["num_ways"] == self.num_ways,
            "LRUPolicy way-count mismatch",
        )
        stack = [int(way) for way in state["stack"]]
        require(
            len(stack) == len(set(stack))
            and all(0 <= way < self.num_ways for way in stack),
            "LRU recency stack malformed",
        )
        self._stack = stack


class RRIPPolicy(Stateful):
    """Static re-reference interval prediction (SRRIP) over one set.

    Each way carries an M-bit re-reference prediction value (RRPV).
    Insertions get RRPV = max-1 ("long re-reference"), hits promote to 0
    ("near-immediate"), and the victim is any way with RRPV == max, aging
    all ways until one appears.  This is SRRIP-HP as in Jaleel et al.
    """

    __slots__ = ("num_ways", "rrpv_bits", "_max", "_rrpv")

    def __init__(self, num_ways: int, rrpv_bits: int = 2) -> None:
        if num_ways < 1:
            raise ValueError(f"need >= 1 ways, got {num_ways}")
        if rrpv_bits < 1:
            raise ValueError(f"need >= 1 RRPV bits, got {rrpv_bits}")
        self.num_ways = num_ways
        self.rrpv_bits = rrpv_bits
        self._max = (1 << rrpv_bits) - 1
        # Empty ways start at max so they are chosen as victims first.
        self._rrpv = [self._max] * num_ways

    def touch(self, way: int) -> None:
        """Promote ``way`` to near-immediate re-reference on a hit."""
        self._check(way)
        self._rrpv[way] = 0

    def insert(self, way: int) -> None:
        """Set the insertion RRPV (long re-reference) for a filled way."""
        self._check(way)
        self._rrpv[way] = self._max - 1 if self._max > 0 else 0

    def victim(self) -> int:
        """Pick a victim way, aging the set until one reaches max RRPV."""
        while True:
            for way in range(self.num_ways):
                if self._rrpv[way] == self._max:
                    return way
            for way in range(self.num_ways):
                self._rrpv[way] += 1

    def rrpv(self, way: int) -> int:
        self._check(way)
        return self._rrpv[way]

    def _check(self, way: int) -> None:
        if not 0 <= way < self.num_ways:
            raise ValueError(f"way {way} out of range [0, {self.num_ways})")

    def storage_bits(self) -> int:
        return self.num_ways * self.rrpv_bits

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "RRIPPolicy",
            "num_ways": self.num_ways,
            "rrpv_bits": self.rrpv_bits,
            "rrpv": list(self._rrpv),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "RRIPPolicy")
        require(
            state["num_ways"] == self.num_ways
            and state["rrpv_bits"] == self.rrpv_bits,
            "RRIPPolicy geometry mismatch",
        )
        rrpv = [int(value) for value in state["rrpv"]]
        require(
            len(rrpv) == self.num_ways
            and all(0 <= value <= self._max for value in rrpv),
            "RRPV vector malformed",
        )
        self._rrpv = rrpv
