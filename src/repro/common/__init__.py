"""Shared low-level building blocks used by every predictor and substrate.

This package models the small hardware idioms that branch predictors are
built from: bit manipulation on target addresses, folded-XOR history
hashing, saturating counters, shift-register histories, cache replacement
policies (LRU and RRIP), and a storage-budget accountant used for the
paper's iso-area comparisons (Table 2).
"""

from repro.common.bitops import (
    bit_of,
    bits_of,
    bits_to_int,
    mask,
    sign_magnitude_bits,
)
from repro.common.counters import SaturatingCounter, SignedSaturatingCounter
from repro.common.hashing import FoldedHistory, mix_pc, stable_hash64
from repro.common.history import (
    GlobalHistory,
    LocalHistoryTable,
    PathHistory,
)
from repro.common.replacement import LRUPolicy, RRIPPolicy
from repro.common.state import (
    STATE_PROTOCOL_VERSION,
    StateError,
    Stateful,
    check_state,
    decode_array,
    encode_array,
    hash_state,
)
from repro.common.storage import StorageBudget

__all__ = [
    "bit_of",
    "bits_of",
    "bits_to_int",
    "mask",
    "sign_magnitude_bits",
    "SaturatingCounter",
    "SignedSaturatingCounter",
    "FoldedHistory",
    "mix_pc",
    "stable_hash64",
    "GlobalHistory",
    "LocalHistoryTable",
    "PathHistory",
    "LRUPolicy",
    "RRIPPolicy",
    "STATE_PROTOCOL_VERSION",
    "StateError",
    "Stateful",
    "StorageBudget",
    "check_state",
    "decode_array",
    "encode_array",
    "hash_state",
]
