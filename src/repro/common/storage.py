"""Hardware storage-budget accounting for iso-area comparisons.

Table 2 of the paper compares predictors at an equivalent hardware budget
(64 KB for BTB/ITTAGE/BLBP, 128 KB for VPC including its conditional
predictor).  Every predictor in this library reports its state through a
:class:`StorageBudget`, which itemizes bit costs per component so the
bench for Table 2 can print the same budget rows the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

BITS_PER_KB = 8 * 1024


@dataclass
class StorageBudget:
    """An itemized account of predictor state, in bits."""

    name: str
    items: List[Tuple[str, int]] = field(default_factory=list)

    def add(self, component: str, bits: int) -> None:
        """Record ``bits`` of state for ``component``."""
        if bits < 0:
            raise ValueError(f"negative bit count for {component}: {bits}")
        self.items.append((component, bits))

    def add_table(
        self, component: str, rows: int, bits_per_row: int
    ) -> None:
        """Record a table of ``rows`` entries of ``bits_per_row`` bits."""
        self.add(component, rows * bits_per_row)

    def total_bits(self) -> int:
        """Sum of all recorded component bits."""
        return sum(bits for _, bits in self.items)

    def total_kilobytes(self) -> float:
        """Total state in kilobytes (8192 bits per KB)."""
        return self.total_bits() / BITS_PER_KB

    def as_dict(self) -> Dict[str, int]:
        """Component -> bits map, merging duplicate component names."""
        merged: Dict[str, int] = {}
        for component, bits in self.items:
            merged[component] = merged.get(component, 0) + bits
        return merged

    def format_table(self) -> str:
        """Render the budget as an aligned text table."""
        lines = [f"{self.name}: {self.total_kilobytes():.2f} KB total"]
        width = max((len(c) for c, _ in self.items), default=0)
        for component, bits in self.items:
            lines.append(
                f"  {component:<{width}}  {bits:>10} bits "
                f"({bits / BITS_PER_KB:8.2f} KB)"
            )
        return "\n".join(lines)
