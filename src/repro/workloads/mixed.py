"""Phase-structured composition of workload generators.

Real traces interleave behaviours: an Android app runs interpreter-like
bytecode, then a burst of virtual dispatch in the UI toolkit, then
callback-heavy I/O.  :func:`generate_mixed` models this by running each
component spec for a phase worth of records and concatenating the phases
round-robin until the requested length is reached.  Phase changes force
predictors to re-warm, which is a large part of why real-world MPKI is
higher than steady-state microbenchmarks suggest.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Sequence, Tuple

import numpy as np

from repro.trace.stream import Trace, concatenate
from repro.workloads.base import WorkloadSpec


@dataclass
class MixedSpec(WorkloadSpec):
    """A weighted mixture of component workload specs.

    Attributes:
        components: (spec, weight) pairs; each phase allocates records to
            a component proportionally to its weight.
        phase_records: records per phase before switching components.
    """

    components: Sequence[Tuple[WorkloadSpec, float]] = field(default_factory=list)
    phase_records: int = 4000

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("MixedSpec needs at least one component")
        for _, weight in self.components:
            if weight <= 0:
                raise ValueError(f"component weight must be positive, got {weight}")
        if self.phase_records < 1:
            raise ValueError(f"phase_records must be >= 1, got {self.phase_records}")

    def generate(self) -> Trace:
        """Produce the trace for this spec."""
        return generate_mixed(self)


def generate_mixed(spec: MixedSpec) -> Trace:
    """Generate a phase-interleaved trace from ``spec``.

    Each component generates one long sub-trace (deterministic in the
    component's own seed mixed with the mixture seed), which is then cut
    into ``phase_records`` slices; phases are interleaved weighted
    round-robin until ``spec.num_records`` records accumulate.
    """
    total_weight = sum(weight for _, weight in spec.components)
    sub_traces: List[Trace] = []
    for position, (component, weight) in enumerate(spec.components):
        share = weight / total_weight
        needed = int(spec.num_records * share) + spec.phase_records
        sub_spec = replace(
            component,
            name=f"{spec.name}/{component.name}",
            seed=component.seed ^ (spec.seed * 0x9E3779B9 + position),
            num_records=needed,
        )
        sub = sub_spec.generate()
        # Relocate each component to its own "shared library" base so
        # branches from different components never alias by PC.
        offset = np.uint64(position) * np.uint64(0x0000_0001_0000_0000)
        sub_traces.append(
            Trace(
                name=sub.name,
                pcs=sub.pcs + offset,
                types=sub.types,
                takens=sub.takens,
                targets=sub.targets + offset,
                gaps=sub.gaps,
            )
        )

    phases: List[Trace] = []
    cursors = [0] * len(sub_traces)
    emitted = 0
    position = 0
    while emitted < spec.num_records:
        index = position % len(sub_traces)
        position += 1
        sub = sub_traces[index]
        start = cursors[index]
        if start >= len(sub):
            continue
        stop = min(start + spec.phase_records, len(sub))
        cursors[index] = stop
        phase = Trace(
            name=sub.name,
            pcs=sub.pcs[start:stop],
            types=sub.types[start:stop],
            takens=sub.takens[start:stop],
            targets=sub.targets[start:stop],
            gaps=sub.gaps[start:stop],
        )
        phases.append(phase)
        emitted += len(phase)
        if all(cursor >= len(trace) for cursor, trace in zip(cursors, sub_traces)):
            break

    merged = concatenate(spec.name, phases)
    return merged.head(spec.num_records) if len(merged) > spec.num_records else merged
