"""Switch-statement / jump-table workload generator.

Models code like ``gcc``'s pattern matchers and protocol demultiplexers:
a dispatch loop switches on a case value through a jump table (one
static indirect jump with many targets).  The case stream follows a
structured Markov process, and each case's handler executes conditional
branches at *shared helper PCs* whose outcomes encode the case index —
the mechanism by which real handler code (flag tests, length checks)
leaks the current case into global history, giving history-based
predictors signal for the *next* dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.stream import Trace
from repro.workloads.base import (
    AddressAllocator,
    TraceBuilder,
    WorkloadSpec,
    draw_gap,
)
from repro.workloads.markov import (
    MarkovChain,
    clamped_self_loop,
    structured_transition_matrix,
)


@dataclass
class SwitchCaseSpec(WorkloadSpec):
    """Parameters for a switch/jump-table workload.

    Attributes:
        num_cases: jump-table size (targets of the single dispatch jump).
        determinism: Markov determinism of the case stream.
        handler_noise: probability a handler signal-branch outcome flips.
        handler_signal_bits: how many bits of the case index the handler
            leaks into conditional outcomes (0 = no leak: only target
            history carries information, starving purely conditional-
            history predictors).
        mean_gap: mean non-branch instructions between branches.
        num_switches: distinct switch statements (static dispatch jumps);
            they share one case stream, modelling nested dispatch.
        filler_conditionals: bookkeeping conditionals per dispatch (see
            :class:`repro.workloads.vdispatch.VirtualDispatchSpec`).
        self_loop: probability mass on the case process staying put.
    """

    num_cases: int = 16
    determinism: float = 0.85
    handler_noise: float = 0.02
    handler_signal_bits: int = -1  # -1 = all bits of the case index
    mean_gap: float = 10.0
    num_switches: int = 1
    filler_conditionals: int = 8
    self_loop: float = 0.05

    def __post_init__(self) -> None:
        if self.num_cases < 1:
            raise ValueError(f"need >= 1 cases, got {self.num_cases}")
        if self.num_switches < 1:
            raise ValueError(f"need >= 1 switches, got {self.num_switches}")
        if not 0.0 <= self.handler_noise <= 1.0:
            raise ValueError(f"handler_noise out of [0,1]: {self.handler_noise}")
        if self.filler_conditionals < 0:
            raise ValueError(
                f"negative filler_conditionals {self.filler_conditionals}"
            )

    def generate(self) -> Trace:
        """Produce the trace for this spec."""
        return generate_switchcase(self)


def generate_switchcase(spec: SwitchCaseSpec) -> Trace:
    """Generate a switch/jump-table trace from ``spec``."""
    rng = spec.rng()
    alloc = AddressAllocator()
    builder = TraceBuilder(spec.name)

    driver = alloc.function()
    loop_pc = alloc.site()
    inner_pc = alloc.site()
    dispatch_pcs = [alloc.site() for _ in range(spec.num_switches)]

    case_bits = max(1, (spec.num_cases - 1).bit_length())
    if spec.handler_signal_bits < 0:
        signal_bits = case_bits
    else:
        signal_bits = min(spec.handler_signal_bits, case_bits)
    # Shared helper function whose conditionals encode the case index.
    helper = alloc.function()
    signal_pcs = [alloc.site() for _ in range(signal_bits)]

    # One handler block per case per switch (jump-table targets).
    handlers = [
        [alloc.function() for _ in range(spec.num_cases)]
        for _ in range(spec.num_switches)
    ]

    matrix = structured_transition_matrix(
        spec.num_cases, rng, determinism=spec.determinism,
        self_loop=clamped_self_loop(spec.determinism, spec.self_loop)
    )
    chain = MarkovChain(matrix, rng)

    iteration = 0
    while len(builder) < spec.num_records:
        case = chain.step()
        switch = iteration % spec.num_switches

        # Dispatch-loop back edge.
        builder.conditional(
            loop_pc, True, driver + 0x8, gap=draw_gap(rng, spec.mean_gap)
        )

        # Bookkeeping inner loop (fixed taken/.../not-taken pattern).
        for step in range(spec.filler_conditionals):
            taken = step < spec.filler_conditionals - 1
            builder.conditional(
                inner_pc, taken, inner_pc + (0x10 if taken else 0x4), gap=2
            )

        # The jump-table dispatch.
        handler = handlers[switch][case]
        builder.indirect_jump(
            dispatch_pcs[switch], handler, gap=draw_gap(rng, 3.0)
        )

        # Handler body: a case-specific internal conditional...
        internal = bool((case ^ iteration) & 1)
        builder.conditional(
            handler + 0x10,
            internal,
            handler + (0x40 if internal else 0x14),
            gap=draw_gap(rng, spec.mean_gap),
        )
        # ...then the shared helper leaks the case index, noisily.
        for bit_position, pc in enumerate(signal_pcs):
            outcome = bool((case >> bit_position) & 1)
            if spec.handler_noise > 0 and rng.random() < spec.handler_noise:
                outcome = not outcome
            builder.conditional(pc, outcome, pc + (0x10 if outcome else 0x4), gap=1)
        # Handler jumps back to the loop head.
        builder.direct_jump(handler + 0x60, loop_pc, gap=draw_gap(rng, 2.0))

        iteration += 1

    return builder.build()
