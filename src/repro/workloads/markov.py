"""Markov-chain engines for hidden program state.

Receiver types at a virtual call site, opcodes under an interpreter
dispatch loop, and message kinds in a server event loop all follow
*structured* stochastic processes: strong repetition, a few dominant
successors per state, occasional surprises.  A Markov chain with a
structured transition matrix captures this and gives history-based
predictors learnable signal while leaving an irreducible noise floor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def structured_transition_matrix(
    num_states: int,
    rng: np.random.Generator,
    determinism: float = 0.85,
    self_loop: float = 0.05,
) -> np.ndarray:
    """Build a row-stochastic transition matrix with dominant successors.

    Each state gets one dominant successor (a random permutation, so the
    chain has long deterministic cycles) receiving ``determinism`` mass,
    ``self_loop`` mass on staying put, and the remainder spread over a few
    random alternates.  ``determinism=1`` yields a pure cycle — perfectly
    predictable from history; lower values raise the noise floor.
    """
    if num_states < 1:
        raise ValueError(f"need >= 1 states, got {num_states}")
    if not 0.0 <= determinism <= 1.0:
        raise ValueError(f"determinism must be in [0, 1], got {determinism}")
    if not 0.0 <= self_loop <= 1.0 - determinism:
        raise ValueError(
            f"self_loop must be in [0, {1.0 - determinism}], got {self_loop}"
        )
    matrix = np.zeros((num_states, num_states))
    # Dominant successors form one full cycle through all states (a
    # random permutation could contain fixed points or short cycles and
    # absorb the chain, collapsing every workload to a constant target).
    order = rng.permutation(num_states)
    successor = np.empty(num_states, dtype=np.int64)
    for position in range(num_states):
        successor[order[position]] = order[(position + 1) % num_states]
    residual = 1.0 - determinism - self_loop
    for state in range(num_states):
        matrix[state, successor[state]] += determinism
        matrix[state, state] += self_loop
        if residual > 0:
            # Spread the residual over up to three random alternates.
            num_alternates = min(3, num_states)
            alternates = rng.choice(num_states, size=num_alternates, replace=False)
            for alt in alternates:
                matrix[state, alt] += residual / num_alternates
    # Normalize defensively (self-loop/dominant may coincide).
    matrix /= matrix.sum(axis=1, keepdims=True)
    return matrix


def clamped_self_loop(determinism: float, self_loop: float) -> float:
    """Largest self-loop mass compatible with ``determinism``.

    Workload specs draw determinism and self-loop independently; this
    keeps their sum within probability-1 when building the matrix.
    """
    return min(self_loop, max(0.0, 1.0 - determinism))


class MarkovChain:
    """A seeded Markov chain with pre-drawn uniform randomness.

    ``step()`` advances the hidden state; sampling uses cumulative-row
    lookup against a single uniform draw, keeping per-step cost low.
    """

    def __init__(
        self,
        transition_matrix: np.ndarray,
        rng: np.random.Generator,
        initial_state: Optional[int] = None,
    ) -> None:
        matrix = np.asarray(transition_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"transition matrix must be square, got {matrix.shape}")
        rows = matrix.sum(axis=1)
        if not np.allclose(rows, 1.0):
            raise ValueError("transition matrix rows must sum to 1")
        self.num_states = matrix.shape[0]
        self._cumulative = np.cumsum(matrix, axis=1)
        self._rng = rng
        self.state = (
            initial_state
            if initial_state is not None
            else int(rng.integers(self.num_states))
        )
        if not 0 <= self.state < self.num_states:
            raise ValueError(f"initial state {self.state} out of range")

    def step(self) -> int:
        """Advance to and return the next state."""
        draw = self._rng.random()
        row = self._cumulative[self.state]
        self.state = int(np.searchsorted(row, draw, side="right"))
        if self.state >= self.num_states:  # guard against fp round-off
            self.state = self.num_states - 1
        return self.state

    def walk(self, length: int) -> np.ndarray:
        """Generate ``length`` successive states (advancing the chain)."""
        states = np.empty(length, dtype=np.int64)
        for i in range(length):
            states[i] = self.step()
        return states
