"""Bytecode-interpreter workload generator.

Models ``perlbench``-style interpreter loops: a fixed bytecode *program*
(an opcode sequence drawn once) executed repeatedly.  The dispatch
target sequence is therefore periodic with the program length — fully
predictable once history reaches back one period — which is exactly the
behaviour that rewards long-history predictors (BLBP's 630-bit history
and its (252, 630) interval; ITTAGE's long geometric lengths) over a BTB.

Conditional branches inside handlers carry a mix of program-determined
structure (loop bookkeeping, the periodic position) and data-dependent
noise, so conditional global history encodes the position in the
bytecode program.  ``program_length`` controls how deep into history a
predictor must look; ``restart_period`` re-draws the program to create
phase changes (interpreting a different function).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.stream import Trace
from repro.workloads.base import (
    AddressAllocator,
    TraceBuilder,
    WorkloadSpec,
    draw_gap,
)


@dataclass
class InterpreterSpec(WorkloadSpec):
    """Parameters for an interpreter-dispatch workload.

    Attributes:
        num_opcodes: size of the opcode set (dispatch jump-table size).
        program_length: length of the repeated bytecode program; the
            dispatch sequence repeats with this period.
        data_noise: probability each handler's data-dependent conditional
            diverges from its position-determined outcome.
        restart_period: executions of the program before a new program is
            drawn (0 = never; the same program runs for the whole trace).
        mean_gap: mean non-branch instructions between branches.
        filler_conditionals: operand-decode bookkeeping conditionals per
            dispatch (fixed taken/.../not-taken pattern).
    """

    num_opcodes: int = 24
    program_length: int = 40
    data_noise: float = 0.05
    restart_period: int = 0
    mean_gap: float = 8.0
    filler_conditionals: int = 6
    #: Zipf skew of opcode usage: real interpreters execute a few hot
    #: opcodes most of the time (loads, branches) with a long cold tail.
    #: 0 = uniform usage.
    opcode_skew: float = 1.2

    def __post_init__(self) -> None:
        if self.num_opcodes < 1:
            raise ValueError(f"need >= 1 opcodes, got {self.num_opcodes}")
        if self.program_length < 1:
            raise ValueError(f"need >= 1 bytecodes, got {self.program_length}")
        if not 0.0 <= self.data_noise <= 1.0:
            raise ValueError(f"data_noise out of [0,1]: {self.data_noise}")
        if self.filler_conditionals < 0:
            raise ValueError(
                f"negative filler_conditionals {self.filler_conditionals}"
            )

    def generate(self) -> Trace:
        """Produce the trace for this spec."""
        return generate_interpreter(self)


def generate_interpreter(spec: InterpreterSpec) -> Trace:
    """Generate an interpreter-loop trace from ``spec``."""
    rng = spec.rng()
    alloc = AddressAllocator()
    builder = TraceBuilder(spec.name)

    driver = alloc.function()
    loop_pc = alloc.site()
    inner_pc = alloc.site()
    dispatch_pc = alloc.site()
    handlers = [alloc.function() for _ in range(spec.num_opcodes)]
    opcode_bits = max(1, (spec.num_opcodes - 1).bit_length())
    # Shared "fetch" helper: its conditionals encode the current opcode,
    # as a real interpreter's operand-decoding branches do.
    fetch = alloc.function()
    fetch_pcs = [alloc.site() for _ in range(opcode_bits)]

    # Zipf-weighted opcode popularity (identity permutation of ranks so
    # the same opcodes stay hot across program restarts, as in a real VM).
    ranks = np.arange(1, spec.num_opcodes + 1, dtype=float)
    weights = ranks ** (-spec.opcode_skew) if spec.opcode_skew > 0 else np.ones_like(ranks)
    weights /= weights.sum()

    def draw_program() -> list:
        return rng.choice(
            spec.num_opcodes, size=spec.program_length, p=weights
        ).tolist()

    program = draw_program()
    position = 0
    executions = 0

    while len(builder) < spec.num_records:
        opcode = program[position]

        # Interpreter loop back edge.
        builder.conditional(
            loop_pc, True, driver + 0x8, gap=draw_gap(rng, spec.mean_gap)
        )

        # Operand-decode bookkeeping loop.
        for step in range(spec.filler_conditionals):
            taken = step < spec.filler_conditionals - 1
            builder.conditional(
                inner_pc, taken, inner_pc + (0x10 if taken else 0x4), gap=2
            )

        # Fetch/decode conditionals leak the opcode into global history.
        for bit_position, pc in enumerate(fetch_pcs):
            outcome = bool((opcode >> bit_position) & 1)
            builder.conditional(pc, outcome, pc + (0x10 if outcome else 0x4), gap=1)

        # The dispatch itself (the hot indirect jump of the interpreter).
        handler = handlers[opcode]
        builder.indirect_jump(dispatch_pc, handler, gap=draw_gap(rng, 2.0))

        # Handler body: position-structured conditional with data noise.
        structured = bool(position & 1)
        if spec.data_noise > 0 and rng.random() < spec.data_noise:
            structured = not structured
        builder.conditional(
            handler + 0x10,
            structured,
            handler + (0x40 if structured else 0x14),
            gap=draw_gap(rng, spec.mean_gap),
        )
        builder.direct_jump(handler + 0x60, loop_pc, gap=draw_gap(rng, 2.0))

        position += 1
        if position >= len(program):
            position = 0
            executions += 1
            if spec.restart_period and executions % spec.restart_period == 0:
                program = draw_program()

    return builder.build()
