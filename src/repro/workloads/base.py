"""Shared machinery for workload generators.

:class:`TraceBuilder` accumulates branch records column-wise (appending
to Python lists, converting to NumPy arrays once) so generating a
100k-record trace stays cheap.  :class:`AddressAllocator` hands out
plausible, non-overlapping code addresses so traces look like real
programs (distinct functions in distinct regions, 4-byte instruction
alignment) — which matters, because BLBP predicts target *bits* and the
bit-level structure of the address space is part of the problem.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.common.hashing import stable_hash64
from repro.trace.record import BranchType
from repro.trace.stream import Trace

#: Base of the synthetic text segment.  Real x86-64 binaries load around
#: this address; using it keeps target bit patterns realistic.
TEXT_BASE = 0x0000_0000_0040_0000


class TraceBuilder:
    """Column-wise accumulator for branch records."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._pcs: List[int] = []
        self._types: List[int] = []
        self._takens: List[bool] = []
        self._targets: List[int] = []
        self._gaps: List[int] = []

    def branch(
        self,
        pc: int,
        branch_type: BranchType,
        taken: bool,
        target: int,
        gap: int = 0,
    ) -> None:
        """Append one dynamic branch execution."""
        self._pcs.append(pc)
        self._types.append(int(branch_type))
        self._takens.append(taken)
        self._targets.append(target)
        self._gaps.append(gap)

    def conditional(self, pc: int, taken: bool, target: int, gap: int = 0) -> None:
        """Append a conditional branch."""
        self.branch(pc, BranchType.CONDITIONAL, taken, target, gap)

    def indirect_call(self, pc: int, target: int, gap: int = 0) -> None:
        """Append an indirect call."""
        self.branch(pc, BranchType.INDIRECT_CALL, True, target, gap)

    def indirect_jump(self, pc: int, target: int, gap: int = 0) -> None:
        """Append an indirect jump."""
        self.branch(pc, BranchType.INDIRECT_JUMP, True, target, gap)

    def direct_call(self, pc: int, target: int, gap: int = 0) -> None:
        """Append a direct call."""
        self.branch(pc, BranchType.DIRECT_CALL, True, target, gap)

    def direct_jump(self, pc: int, target: int, gap: int = 0) -> None:
        """Append a direct jump."""
        self.branch(pc, BranchType.DIRECT_JUMP, True, target, gap)

    def ret(self, pc: int, target: int, gap: int = 0) -> None:
        """Append a procedure return."""
        self.branch(pc, BranchType.RETURN, True, target, gap)

    def __len__(self) -> int:
        return len(self._pcs)

    def build(self) -> Trace:
        """Freeze the accumulated records into an immutable Trace."""
        return Trace(
            name=self.name,
            pcs=np.array(self._pcs, dtype=np.uint64),
            types=np.array(self._types, dtype=np.uint8),
            takens=np.array(self._takens, dtype=bool),
            targets=np.array(self._targets, dtype=np.uint64),
            gaps=np.array(self._gaps, dtype=np.uint32),
        )


class AddressAllocator:
    """Hands out non-overlapping, 4-byte-aligned code addresses.

    ``function()`` reserves a function-sized region and returns its entry
    point; ``site()`` returns successive instruction addresses inside the
    most recently allocated function.
    """

    def __init__(self, base: int = TEXT_BASE, function_size: int = 0x200) -> None:
        if base % 4 != 0:
            raise ValueError(f"base {base:#x} is not 4-byte aligned")
        if function_size % 4 != 0 or function_size <= 0:
            raise ValueError(f"bad function size {function_size:#x}")
        self._next = base
        self._function_size = function_size
        self._site_cursor = base
        self._count = 0

    def function(self) -> int:
        """Reserve a new function region; return its entry address.

        Entries are deterministically jittered within their region so
        their low-order address bits vary, as in real binaries — this
        matters for bit-level target prediction, where perfectly-aligned
        entries would leave most predicted bits constant.
        """
        region = self._next
        self._next += self._function_size
        self._count += 1
        jitter_slots = self._function_size // 8  # keep room for sites
        entry = region + 4 * (stable_hash64(self._count) % jitter_slots)
        self._site_cursor = entry
        return entry

    def site(self) -> int:
        """Next instruction address within the current function."""
        address = self._site_cursor
        self._site_cursor += 4
        if self._site_cursor >= self._next:
            raise RuntimeError("function region exhausted; allocate a new one")
        return address


@dataclass
class WorkloadSpec(abc.ABC):
    """Base class for workload specifications.

    Every concrete spec is a frozen bag of parameters plus a seed; the
    corresponding ``generate_*`` function turns it into a :class:`Trace`
    deterministically.
    """

    name: str
    seed: int
    num_records: int

    def rng(self) -> np.random.Generator:
        """The seeded generator all randomness in this workload flows from."""
        return np.random.default_rng(self.seed)

    @abc.abstractmethod
    def generate(self) -> Trace:
        """Produce the trace for this spec."""


def draw_gap(rng: np.random.Generator, mean_gap: float) -> int:
    """Draw a non-branch instruction gap (geometric-ish, mean ``mean_gap``)."""
    if mean_gap <= 0:
        return 0
    return int(rng.geometric(1.0 / (mean_gap + 1.0)) - 1)
