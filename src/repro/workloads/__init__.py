"""Synthetic workload generators standing in for the paper's trace suite.

The paper evaluates on 88 proprietary traces (SPEC simpoints and Samsung
CBP-5 mobile/server traces).  We cannot redistribute those, so this
package synthesizes branch traces from program models that exhibit the
same mechanisms the predictors exploit:

* **virtual-method dispatch** whose receiver type follows a hidden Markov
  process leaked into prior conditional-branch outcomes
  (:mod:`repro.workloads.vdispatch`);
* **switch/jump-table dispatch** as in bytecode interpreters
  (:mod:`repro.workloads.switchcase`);
* **function-pointer call chains** with call/return nesting
  (:mod:`repro.workloads.callret`);
* **phase-structured mixes** of the above (:mod:`repro.workloads.mixed`).

:mod:`repro.workloads.suite` assembles these into the 88-trace suite of
Table 1 and a CBP-4-like secondary suite, with polymorphism statistics
shaped to match the paper's Figures 6 and 7.
"""

from repro.workloads.base import AddressAllocator, TraceBuilder, WorkloadSpec
from repro.workloads.callret import CallReturnSpec, generate_callret
from repro.workloads.interpreter import InterpreterSpec, generate_interpreter
from repro.workloads.markov import MarkovChain, structured_transition_matrix
from repro.workloads.mixed import MixedSpec, generate_mixed
from repro.workloads.recursive import RecursiveSpec, generate_recursive
from repro.workloads.suite import (
    SuiteTrace,
    build_cbp4_like_suite,
    build_suite88,
    suite88_specs,
)
from repro.workloads.switchcase import SwitchCaseSpec, generate_switchcase
from repro.workloads.vdispatch import VirtualDispatchSpec, generate_vdispatch

__all__ = [
    "AddressAllocator",
    "TraceBuilder",
    "WorkloadSpec",
    "MarkovChain",
    "structured_transition_matrix",
    "VirtualDispatchSpec",
    "generate_vdispatch",
    "SwitchCaseSpec",
    "generate_switchcase",
    "InterpreterSpec",
    "generate_interpreter",
    "CallReturnSpec",
    "generate_callret",
    "MixedSpec",
    "generate_mixed",
    "RecursiveSpec",
    "generate_recursive",
    "SuiteTrace",
    "build_suite88",
    "build_cbp4_like_suite",
    "suite88_specs",
]
