"""Recursive-descent workload generator.

Models recursive tree walkers — compilers' AST passes, `eon`-style
scene-graph traversal, JSON/XML parsers (`xalancbmk`) — where an
indirect call dispatches on the *node kind* at each level of a random
tree and deep call chains stress the return-address stack.

The node-kind sequence is produced by a depth-structured process: each
node's kind correlates with its parent's kind (grammar structure) and
leaks into conditional outcomes before the dispatch, so history-based
predictors get signal.  Tree depth follows the configured distribution;
depths beyond the RAS capacity exercise its overflow behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.trace.stream import Trace
from repro.workloads.base import (
    AddressAllocator,
    TraceBuilder,
    WorkloadSpec,
    draw_gap,
)
from repro.workloads.markov import (
    MarkovChain,
    clamped_self_loop,
    structured_transition_matrix,
)


@dataclass
class RecursiveSpec(WorkloadSpec):
    """Parameters for a recursive tree-walk workload.

    Attributes:
        num_kinds: node kinds (targets of the visit dispatch).
        max_depth: maximum recursion depth.
        branching: mean children per internal node (controls tree shape;
            the walk is depth-first with a fixed per-node child count
            drawn deterministically from the node kind).
        determinism: kind-transition determinism (parent -> child kind).
        mean_gap: mean non-branch instructions between branches.
        filler_conditionals: bookkeeping conditionals per visit.
        self_loop: probability the child kind repeats the parent's.
    """

    num_kinds: int = 6
    max_depth: int = 12
    branching: int = 2
    determinism: float = 0.9
    mean_gap: float = 10.0
    filler_conditionals: int = 8
    self_loop: float = 0.1

    def __post_init__(self) -> None:
        if self.num_kinds < 1:
            raise ValueError(f"need >= 1 kinds, got {self.num_kinds}")
        if self.max_depth < 1:
            raise ValueError(f"need depth >= 1, got {self.max_depth}")
        if self.branching < 1:
            raise ValueError(f"need branching >= 1, got {self.branching}")
        if self.filler_conditionals < 0:
            raise ValueError(
                f"negative filler_conditionals {self.filler_conditionals}"
            )

    def generate(self) -> Trace:
        """Produce the trace for this spec."""
        return generate_recursive(self)


def generate_recursive(spec: RecursiveSpec) -> Trace:
    """Generate a recursive tree-walk trace from ``spec``."""
    rng = spec.rng()
    alloc = AddressAllocator()
    builder = TraceBuilder(spec.name)

    driver = alloc.function()
    loop_pc = alloc.site()
    inner_pc = alloc.site()
    kind_bits = max(1, (spec.num_kinds - 1).bit_length())
    signal_pcs = [alloc.site() for _ in range(kind_bits)]
    # The single polymorphic "visit" dispatch site lives in the shared
    # walker function; each kind has its own visit method.
    walker = alloc.function()
    dispatch_pc = walker + 0x10
    visitors = [alloc.function() for _ in range(spec.num_kinds)]

    matrix = structured_transition_matrix(
        spec.num_kinds,
        rng,
        determinism=spec.determinism,
        self_loop=clamped_self_loop(spec.determinism, spec.self_loop),
    )
    chain = MarkovChain(matrix, rng)

    def visit(kind: int, depth: int, caller_resume: int) -> None:
        """Emit the branch stream for visiting one node."""
        if len(builder) >= spec.num_records:
            return
        # Signal conditionals leak the node kind before the dispatch.
        for bit_position, pc in enumerate(signal_pcs):
            outcome = bool((kind >> bit_position) & 1)
            builder.conditional(pc, outcome, pc + (0x10 if outcome else 0x4), gap=1)
        # Call into the walker, dispatch on the kind.
        call_pc = caller_resume - 4
        builder.direct_call(call_pc, walker, gap=draw_gap(rng, 3.0))
        visitor = visitors[kind]
        builder.indirect_call(dispatch_pc, visitor, gap=draw_gap(rng, 2.0))

        # Visitor body: recurse into children (kind-determined count).
        is_internal = depth < spec.max_depth and (kind % 3 != 0)
        children = spec.branching if is_internal else 0
        body_pc = visitor + 0x10
        builder.conditional(
            body_pc,
            children > 0,
            body_pc + (0x20 if children else 0x4),
            gap=draw_gap(rng, spec.mean_gap),
        )
        for child in range(children):
            if len(builder) >= spec.num_records:
                break
            child_kind = chain.step()
            visit(child_kind, depth + 1, visitor + 0x40 + 4 * child)
        # Unwind: visitor returns to the dispatch site, walker returns
        # to its caller.
        builder.ret(visitor + 0x80, dispatch_pc + 4, gap=draw_gap(rng, 4.0))
        builder.ret(walker + 0x80, caller_resume, gap=draw_gap(rng, 4.0))

    while len(builder) < spec.num_records:
        # Top-level loop: bookkeeping then one tree walk.
        builder.conditional(
            loop_pc, True, driver + 0x8, gap=draw_gap(rng, spec.mean_gap)
        )
        for step in range(spec.filler_conditionals):
            taken = step < spec.filler_conditionals - 1
            builder.conditional(
                inner_pc, taken, inner_pc + (0x10 if taken else 0x4), gap=2
            )
        root_kind = chain.step()
        visit(root_kind, 0, driver + 0x40)

    return builder.build()
