"""Assembly of the evaluation suites.

:func:`suite88_specs` mirrors Table 1 of the paper: 88 workloads drawn
from four sources — SPEC CPU2000 (1), SPEC CPU2006 (12), SPEC CPU2017
(7), and the CBP-5 competition (68, split mobile/server × short/long).
Each named trace maps to a workload spec whose parameters are drawn
deterministically from the trace name, within ranges chosen per flavour:

* ``perlbench`` → interpreter loops (periodic dispatch, long history);
* ``gcc`` → wide switch statements (up to 64-way jump tables);
* ``povray``/``eon``/``xalancbmk`` → C++ virtual dispatch;
* ``sjeng`` → small, highly-deterministic switches;
* CBP-5 ``MOBILE`` → Java-flavoured mixes heavy on virtual dispatch and
  interpretation, with high indirect-branch density;
* CBP-5 ``SERVER`` → callback/switch mixes with a mostly-monomorphic
  static population.

A second, easier suite (:func:`build_cbp4_like_suite`) stands in for the
CBP-4 traces used in the paper's §5.1 cross-check, where both ITTAGE and
BLBP land near 0.03 MPKI.

Trace lengths scale with the ``REPRO_SCALE`` environment variable
(``small``/``medium``/``full``) or an explicit ``scale`` multiplier, so
tests stay fast while benchmark runs can use longer traces.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.trace.stream import Trace
from repro.workloads.base import WorkloadSpec
from repro.workloads.callret import CallReturnSpec
from repro.workloads.interpreter import InterpreterSpec
from repro.workloads.mixed import MixedSpec
from repro.workloads.switchcase import SwitchCaseSpec
from repro.workloads.vdispatch import VirtualDispatchSpec

#: Base record counts before scaling.
_SPEC_RECORDS = 16000
_SHORT_RECORDS = 10000
_LONG_RECORDS = 20000

_SCALE_PRESETS = {"small": 1.0, "medium": 3.0, "full": 10.0}

#: Default scale when REPRO_SCALE is unset (medium).


def env_scale(default: float = 3.0) -> float:
    """Resolve the trace-length scale from ``REPRO_SCALE`` if set."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    if raw in _SCALE_PRESETS:
        return _SCALE_PRESETS[raw]
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(_SCALE_PRESETS)} or a float, "
            f"got {raw!r}"
        )


def _seed_from(name: str) -> int:
    """Stable 63-bit seed derived from a trace name."""
    digest = hashlib.sha256(name.encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1


@dataclass(frozen=True)
class SuiteTrace:
    """One named workload in a suite."""

    name: str
    source: str
    category: str
    spec: WorkloadSpec

    def generate(self) -> Trace:
        """Generate this suite entry's trace."""
        return self.spec.generate()


def _records(base: int, scale: float) -> int:
    return max(2000, int(base * scale))


def _perlbench(name: str, records: int) -> WorkloadSpec:
    rng = np.random.default_rng(_seed_from(name))
    return InterpreterSpec(
        name=name,
        seed=_seed_from(name + "/gen"),
        num_records=records,
        num_opcodes=int(rng.integers(20, 36)),
        program_length=int(rng.integers(30, 90)),
        data_noise=float(rng.uniform(0.002, 0.015)),
        restart_period=int(rng.choice([0, 40, 120])),
        mean_gap=float(rng.uniform(6.0, 12.0)),
        filler_conditionals=int(rng.integers(4, 12)),
        opcode_skew=float(rng.uniform(1.0, 1.5)),
    )


def _gcc(name: str, records: int) -> WorkloadSpec:
    rng = np.random.default_rng(_seed_from(name))
    return SwitchCaseSpec(
        name=name,
        seed=_seed_from(name + "/gen"),
        num_cases=int(rng.integers(16, 48)),
        num_records=records,
        determinism=float(rng.uniform(0.92, 0.99)),
        handler_noise=float(rng.uniform(0.002, 0.015)),
        num_switches=int(rng.integers(1, 4)),
        mean_gap=float(rng.uniform(8.0, 14.0)),
        filler_conditionals=int(rng.integers(6, 16)),
        self_loop=float(rng.uniform(0.05, 0.25)),
    )


def _cpp_dispatch(name: str, records: int) -> WorkloadSpec:
    rng = np.random.default_rng(_seed_from(name))
    return VirtualDispatchSpec(
        name=name,
        seed=_seed_from(name + "/gen"),
        num_records=records,
        num_sites=int(rng.integers(3, 10)),
        num_types=int(rng.integers(3, 8)),
        determinism=float(rng.uniform(0.93, 0.995)),
        signal_noise=float(rng.uniform(0.0, 0.02)),
        signal_lag=int(rng.integers(0, 12)),
        mean_gap=float(rng.uniform(10.0, 18.0)),
        phase_length=int(rng.choice([0, 0, 2000, 5000])),
        filler_conditionals=int(rng.integers(8, 24)),
        self_loop=float(rng.uniform(0.0, 0.3)),
        monomorphic_sites=int(rng.integers(2, 10)),
    )


def _sjeng(name: str, records: int) -> WorkloadSpec:
    rng = np.random.default_rng(_seed_from(name))
    return SwitchCaseSpec(
        name=name,
        seed=_seed_from(name + "/gen"),
        num_records=records,
        num_cases=int(rng.integers(6, 12)),
        determinism=float(rng.uniform(0.95, 0.995)),
        handler_noise=float(rng.uniform(0.0, 0.03)),
        num_switches=1,
        mean_gap=float(rng.uniform(10.0, 16.0)),
        filler_conditionals=int(rng.integers(8, 16)),
        self_loop=float(rng.uniform(0.0, 0.1)),
    )


def _mobile(name: str, records: int) -> WorkloadSpec:
    """Java-flavoured mobile workload: dispatch-heavy mixes."""
    rng = np.random.default_rng(_seed_from(name))
    dispatch = VirtualDispatchSpec(
        name="vdispatch",
        seed=_seed_from(name + "/vd"),
        num_records=records,
        num_sites=int(rng.integers(4, 16)),
        num_types=int(rng.integers(2, 12)),
        determinism=float(rng.uniform(0.92, 0.99)),
        signal_noise=float(rng.uniform(0.0, 0.015)),
        signal_lag=int(rng.integers(0, 30)),
        mean_gap=float(rng.uniform(4.0, 10.0)),
        phase_length=int(rng.choice([0, 1500, 4000])),
        filler_conditionals=int(rng.integers(6, 16)),
        self_loop=float(rng.uniform(0.0, 0.3)),
        monomorphic_sites=int(rng.integers(0, 6)),
    )
    interp = InterpreterSpec(
        name="interp",
        seed=_seed_from(name + "/in"),
        num_records=records,
        num_opcodes=int(rng.integers(16, 40)),
        program_length=int(rng.integers(20, 120)),
        data_noise=float(rng.uniform(0.005, 0.025)),
        restart_period=int(rng.choice([0, 30, 80])),
        mean_gap=float(rng.uniform(4.0, 9.0)),
        filler_conditionals=int(rng.integers(4, 10)),
        opcode_skew=float(rng.uniform(0.9, 1.6)),
    )
    # A megamorphic component for the polymorphism tail of Fig. 7.
    mega = SwitchCaseSpec(
        name="mega",
        seed=_seed_from(name + "/mg"),
        num_records=records,
        num_cases=int(rng.integers(24, 56)),
        determinism=float(rng.uniform(0.9, 0.98)),
        handler_noise=float(rng.uniform(0.005, 0.02)),
        num_switches=1,
        mean_gap=float(rng.uniform(4.0, 8.0)),
        filler_conditionals=int(rng.integers(6, 12)),
        self_loop=float(rng.uniform(0.05, 0.3)),
    )
    weights = rng.dirichlet([3.0, 2.0, 1.0])
    return MixedSpec(
        name=name,
        seed=_seed_from(name + "/mix"),
        num_records=records,
        components=[
            (dispatch, float(weights[0])),
            (interp, float(weights[1])),
            (mega, float(weights[2])),
        ],
        phase_records=int(rng.integers(1500, 4000)),
    )


def _server(name: str, records: int) -> WorkloadSpec:
    """Server workload: callback/switch mixes, mostly monomorphic."""
    rng = np.random.default_rng(_seed_from(name))
    callbacks = CallReturnSpec(
        name="callret",
        seed=_seed_from(name + "/cr"),
        num_records=records,
        num_callbacks=int(rng.integers(6, 20)),
        num_sites=int(rng.integers(6, 24)),
        polymorphism_cap=int(rng.integers(1, 5)),
        call_depth=int(rng.integers(1, 4)),
        determinism=float(rng.uniform(0.93, 0.995)),
        mean_gap=float(rng.uniform(10.0, 20.0)),
        filler_conditionals=int(rng.integers(8, 20)),
        self_loop=float(rng.uniform(0.0, 0.2)),
    )
    demux = SwitchCaseSpec(
        name="demux",
        seed=_seed_from(name + "/dx"),
        num_records=records,
        num_cases=int(rng.integers(8, 32)),
        determinism=float(rng.uniform(0.92, 0.99)),
        handler_noise=float(rng.uniform(0.002, 0.012)),
        num_switches=int(rng.integers(1, 3)),
        mean_gap=float(rng.uniform(8.0, 16.0)),
        filler_conditionals=int(rng.integers(6, 14)),
        self_loop=float(rng.uniform(0.05, 0.25)),
    )
    weights = rng.dirichlet([2.5, 1.5])
    return MixedSpec(
        name=name,
        seed=_seed_from(name + "/mix"),
        num_records=records,
        components=[(callbacks, float(weights[0])), (demux, float(weights[1]))],
        phase_records=int(rng.integers(2000, 5000)),
    )


def suite88_specs(scale: Optional[float] = None) -> List[SuiteTrace]:
    """The 88-workload suite of Table 1, as (ungenerated) specs."""
    if scale is None:
        scale = env_scale()
    suite: List[SuiteTrace] = []

    def add(name: str, source: str, category: str,
            factory: Callable[[str, int], WorkloadSpec], base: int) -> None:
        suite.append(
            SuiteTrace(
                name=name,
                source=source,
                category=category,
                spec=factory(name, _records(base, scale)),
            )
        )

    # SPEC CPU2000: 252.eon (C++ ray tracer).
    add("spec2000.252_eon", "SPEC CPU2000", "spec", _cpp_dispatch, _SPEC_RECORDS)

    # SPEC CPU2006: 12 simpoints across 4 benchmarks.
    for simpoint in range(3):
        add(f"spec2006.400_perlbench.{simpoint}", "SPEC CPU2006", "spec",
            _perlbench, _SPEC_RECORDS)
    for simpoint in range(4):
        add(f"spec2006.403_gcc.{simpoint}", "SPEC CPU2006", "spec",
            _gcc, _SPEC_RECORDS)
    for simpoint in range(3):
        add(f"spec2006.453_povray.{simpoint}", "SPEC CPU2006", "spec",
            _cpp_dispatch, _SPEC_RECORDS)
    for simpoint in range(2):
        add(f"spec2006.458_sjeng.{simpoint}", "SPEC CPU2006", "spec",
            _sjeng, _SPEC_RECORDS)

    # SPEC CPU2017: 7 simpoints across 3 benchmarks.
    for simpoint in range(3):
        add(f"spec2017.600_perlbench.{simpoint}", "SPEC CPU2017", "spec",
            _perlbench, _SPEC_RECORDS)
    for simpoint in range(2):
        add(f"spec2017.602_gcc.{simpoint}", "SPEC CPU2017", "spec",
            _gcc, _SPEC_RECORDS)
    for simpoint in range(2):
        add(f"spec2017.623_xalancbmk.{simpoint}", "SPEC CPU2017", "spec",
            _cpp_dispatch, _SPEC_RECORDS)

    # CBP-5: 24 short-mobile, 10 long-mobile, 24 short-server,
    # 10 long-server = 68 traces.
    for index in range(1, 25):
        add(f"SHORT-MOBILE-{index}", "CBP-5", "mobile-short",
            _mobile, _SHORT_RECORDS)
    for index in range(1, 11):
        add(f"LONG-MOBILE-{index}", "CBP-5", "mobile-long",
            _mobile, _LONG_RECORDS)
    for index in range(1, 25):
        add(f"SHORT-SERVER-{index}", "CBP-5", "server-short",
            _server, _SHORT_RECORDS)
    for index in range(1, 11):
        add(f"LONG-SERVER-{index}", "CBP-5", "server-long",
            _server, _LONG_RECORDS)

    if len(suite) != 88:
        raise AssertionError(f"suite has {len(suite)} traces, expected 88")
    return suite


def build_suite88(scale: Optional[float] = None) -> List[Trace]:
    """Generate all 88 traces (deterministic; can take a little while)."""
    return [entry.generate() for entry in suite88_specs(scale)]


def cbp4_like_specs(scale: Optional[float] = None) -> List[SuiteTrace]:
    """An easier secondary suite standing in for the CBP-4 traces.

    The paper's §5.1 cross-check runs untuned predictors on CBP-4 traces
    and finds both ITTAGE and BLBP near 0.03 MPKI — an order of magnitude
    easier than the main suite.  These specs use high determinism, little
    noise, and sparse indirect branches to land in that regime.
    """
    if scale is None:
        scale = env_scale()
    suite: List[SuiteTrace] = []
    for index in range(1, 11):
        name = f"CBP4-INT-{index}"
        rng = np.random.default_rng(_seed_from(name))
        spec = CallReturnSpec(
            name=name,
            seed=_seed_from(name + "/gen"),
            num_records=_records(_SHORT_RECORDS, scale),
            num_callbacks=int(rng.integers(4, 10)),
            num_sites=int(rng.integers(8, 20)),
            polymorphism_cap=int(rng.integers(1, 3)),
            call_depth=int(rng.integers(1, 3)),
            determinism=float(rng.uniform(0.95, 0.995)),
            mean_gap=float(rng.uniform(16.0, 28.0)),
            filler_conditionals=int(rng.integers(10, 20)),
            self_loop=float(rng.uniform(0.0, 0.05)),
        )
        suite.append(SuiteTrace(name, "CBP-4", "cbp4", spec))
    for index in range(1, 11):
        name = f"CBP4-MM-{index}"
        rng = np.random.default_rng(_seed_from(name))
        spec = VirtualDispatchSpec(
            name=name,
            seed=_seed_from(name + "/gen"),
            num_records=_records(_SHORT_RECORDS, scale),
            num_sites=int(rng.integers(2, 6)),
            num_types=int(rng.integers(2, 4)),
            determinism=float(rng.uniform(0.96, 0.995)),
            signal_noise=0.0,
            signal_lag=int(rng.integers(0, 4)),
            mean_gap=float(rng.uniform(16.0, 26.0)),
            filler_conditionals=int(rng.integers(10, 20)),
            self_loop=float(rng.uniform(0.0, 0.05)),
        )
        suite.append(SuiteTrace(name, "CBP-4", "cbp4", spec))
    return suite


def build_cbp4_like_suite(scale: Optional[float] = None) -> List[Trace]:
    """Generate the CBP-4-like secondary suite."""
    return [entry.generate() for entry in cbp4_like_specs(scale)]
