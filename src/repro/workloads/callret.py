"""Function-pointer call-chain workload generator.

Models callback-driven C code (event loops, qsort comparators, vtable-free
plugin dispatch): a driver repeatedly invokes functions through pointer
tables, with nested direct calls and returns underneath.  Most call sites
here are monomorphic or weakly polymorphic, so this generator supplies
the large population of *easy* indirect branches visible in the paper's
Fig. 6 (many benchmarks dominated by monomorphic branches) and the steep
initial drop of the Fig. 7 target-count distribution.  Returns exercise
the return-address stack rather than the indirect predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.trace.stream import Trace
from repro.workloads.base import (
    AddressAllocator,
    TraceBuilder,
    WorkloadSpec,
    draw_gap,
)
from repro.workloads.markov import (
    MarkovChain,
    clamped_self_loop,
    structured_transition_matrix,
)


@dataclass
class CallReturnSpec(WorkloadSpec):
    """Parameters for a function-pointer/call-return workload.

    Attributes:
        num_callbacks: functions reachable through the pointer table.
        num_sites: static indirect call sites.  Site ``i`` uses only
            ``1 + (i % polymorphism_cap)`` of the callbacks, so most
            sites are monomorphic or nearly so.
        polymorphism_cap: maximum distinct callees per site.
        call_depth: nested direct calls (and returns) under each callback.
        determinism: Markov determinism of the callback-selection stream.
        mean_gap: mean non-branch instructions between branches.
        filler_conditionals: bookkeeping conditionals per iteration.
        self_loop: probability mass on the selector staying put.
    """

    num_callbacks: int = 8
    num_sites: int = 6
    polymorphism_cap: int = 3
    call_depth: int = 2
    determinism: float = 0.9
    mean_gap: float = 14.0
    filler_conditionals: int = 10
    self_loop: float = 0.05

    def __post_init__(self) -> None:
        if self.num_callbacks < 1:
            raise ValueError(f"need >= 1 callbacks, got {self.num_callbacks}")
        if self.num_sites < 1:
            raise ValueError(f"need >= 1 sites, got {self.num_sites}")
        if self.polymorphism_cap < 1:
            raise ValueError(
                f"polymorphism_cap must be >= 1, got {self.polymorphism_cap}"
            )
        if self.call_depth < 0:
            raise ValueError(f"negative call_depth {self.call_depth}")
        if self.filler_conditionals < 0:
            raise ValueError(
                f"negative filler_conditionals {self.filler_conditionals}"
            )

    def generate(self) -> Trace:
        """Produce the trace for this spec."""
        return generate_callret(self)


def generate_callret(spec: CallReturnSpec) -> Trace:
    """Generate a function-pointer call-chain trace from ``spec``."""
    rng = spec.rng()
    alloc = AddressAllocator()
    builder = TraceBuilder(spec.name)

    driver = alloc.function()
    loop_pc = alloc.site()
    inner_pc = alloc.site()
    site_pcs = [alloc.site() for _ in range(spec.num_sites)]
    callbacks = [alloc.function() for _ in range(spec.num_callbacks)]
    # Nested helper functions for the direct-call chains.
    helpers = [alloc.function() for _ in range(max(1, spec.call_depth))]

    # Per-site callee subsets: site i draws from a small slice, giving the
    # mostly-monomorphic static population.
    site_callees: List[List[int]] = []
    for site in range(spec.num_sites):
        width = 1 + (site % spec.polymorphism_cap)
        start = site % spec.num_callbacks
        subset = [callbacks[(start + j) % spec.num_callbacks] for j in range(width)]
        site_callees.append(subset)

    matrix = structured_transition_matrix(
        spec.num_callbacks,
        rng,
        determinism=spec.determinism,
        self_loop=clamped_self_loop(spec.determinism, spec.self_loop),
    )
    chain = MarkovChain(matrix, rng)

    iteration = 0
    while len(builder) < spec.num_records:
        selector = chain.step()
        site = iteration % spec.num_sites
        callees = site_callees[site]
        callee = callees[selector % len(callees)]
        site_pc = site_pcs[site]

        # Driver loop back edge plus selector-correlated conditionals so
        # polymorphic sites are predictable from history.
        builder.conditional(
            loop_pc, True, driver + 0x8, gap=draw_gap(rng, spec.mean_gap)
        )
        for step in range(spec.filler_conditionals):
            taken = step < spec.filler_conditionals - 1
            builder.conditional(
                inner_pc, taken, inner_pc + (0x10 if taken else 0x4), gap=2
            )
        hint_bits = max(1, (spec.num_callbacks - 1).bit_length())
        for bit_position in range(hint_bits):
            hint = bool((selector >> bit_position) & 1)
            pc = loop_pc + 0x20 + 4 * bit_position
            builder.conditional(pc, hint, pc + (0x40 if hint else 0x4), gap=1)

        # The indirect call through the function pointer.
        builder.indirect_call(site_pc, callee, gap=draw_gap(rng, 4.0))

        # Nested direct call chain inside the callback, then unwind in
        # LIFO order: each frame returns to its caller's resume address.
        frames = [callee]
        return_stack = [site_pc + 4]
        for depth in range(spec.call_depth):
            helper = helpers[depth % len(helpers)]
            call_pc = frames[-1] + 0x10 + 4 * depth
            builder.direct_call(call_pc, helper, gap=draw_gap(rng, spec.mean_gap))
            return_stack.append(call_pc + 4)
            frames.append(helper)
        while frames:
            returning = frames.pop()
            builder.ret(returning + 0x80, return_stack.pop(), gap=draw_gap(rng, 6.0))

        iteration += 1

    return builder.build()
