"""Virtual-method-dispatch workload generator.

Models the indirect-branch behaviour of object-oriented programs (the
paper's primary motivation, §1): a driver loop walks a stream of
polymorphic objects whose dynamic type follows a hidden Markov process,
and calls virtual methods on them through indirect calls.

Crucially, the receiver type *leaks into conditional-branch outcomes*
before the dispatch: real programs test object properties that correlate
with the type (null checks, kind flags, size classes).  We model this as
``signal`` conditional branches whose outcomes encode the bits of the
current type index, each independently flipped with probability
``signal_noise``.  History-based indirect predictors (ITTAGE, BLBP) can
learn the mapping from those outcomes to the dispatch target; a plain
BTB cannot, which reproduces the qualitative gap in the paper's Fig. 8.

``signal_lag`` inserts additional predictable conditional branches
between the signal and the dispatch, pushing the informative outcomes
deeper into global history — traces with large lags exercise the long
history intervals of BLBP (§3.6) and the long geometric lengths of
ITTAGE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.trace.stream import Trace
from repro.workloads.base import (
    AddressAllocator,
    TraceBuilder,
    WorkloadSpec,
    draw_gap,
)
from repro.workloads.markov import (
    MarkovChain,
    clamped_self_loop,
    structured_transition_matrix,
)


@dataclass
class VirtualDispatchSpec(WorkloadSpec):
    """Parameters for a virtual-dispatch workload.

    Attributes:
        num_sites: distinct virtual call sites (static indirect branches).
        num_types: receiver types, i.e. targets per call site.
        determinism: Markov determinism of the type stream (1.0 = cyclic,
            perfectly learnable; lower values add an irreducible floor).
        signal_noise: probability each signal-branch outcome is flipped.
        signal_lag: predictable filler conditionals between signal and
            dispatch (pushes signal deeper into history).
        mean_gap: mean non-branch instructions between branches.
        phase_length: dispatches before the type process re-randomizes
            (0 disables phase changes).
        shared_methods: if True, all sites share one vtable (same type
            maps to the same method address at every site), as for calls
            to one virtual function from many places.
        filler_conditionals: bookkeeping conditionals (an inner loop with
            a fixed taken/.../not-taken pattern) emitted per dispatch.
            Real traces run 15-30 conditional branches per indirect
            branch (the paper's Fig. 1); these fillers reproduce that mix
            and keep the global history's context space from exploding.
        self_loop: probability mass on the type process staying put
            (bursty object streams).
    """

    num_sites: int = 4
    num_types: int = 4
    determinism: float = 0.9
    signal_noise: float = 0.0
    signal_lag: int = 0
    mean_gap: float = 12.0
    phase_length: int = 0
    shared_methods: bool = False
    filler_conditionals: int = 10
    self_loop: float = 0.05
    #: Extra call sites that only ever see one receiver type — real C++
    #: programs are full of effectively-monomorphic virtual calls, which
    #: dominate the paper's Fig. 6 for many benchmarks.  One such site
    #: (cycling through the set) is called per dispatch iteration.
    monomorphic_sites: int = 0

    def __post_init__(self) -> None:
        if self.num_sites < 1:
            raise ValueError(f"need >= 1 sites, got {self.num_sites}")
        if self.num_types < 1:
            raise ValueError(f"need >= 1 types, got {self.num_types}")
        if not 0.0 <= self.signal_noise <= 1.0:
            raise ValueError(f"signal_noise out of [0,1]: {self.signal_noise}")
        if self.signal_lag < 0:
            raise ValueError(f"negative signal_lag {self.signal_lag}")
        if self.filler_conditionals < 0:
            raise ValueError(
                f"negative filler_conditionals {self.filler_conditionals}"
            )
        if not 0.0 <= self.self_loop <= 1.0:
            raise ValueError(f"self_loop out of [0,1]: {self.self_loop}")
        if self.monomorphic_sites < 0:
            raise ValueError(
                f"negative monomorphic_sites {self.monomorphic_sites}"
            )

    def generate(self) -> Trace:
        """Produce the trace for this spec."""
        return generate_vdispatch(self)


def _signal_bit_count(num_types: int) -> int:
    """Bits needed to encode a type index."""
    return max(1, (num_types - 1).bit_length())


def generate_vdispatch(spec: VirtualDispatchSpec) -> Trace:
    """Generate a virtual-dispatch trace from ``spec``."""
    rng = spec.rng()
    alloc = AddressAllocator()
    builder = TraceBuilder(spec.name)

    # Static program layout. One driver function holds the loop branch,
    # the signal branches, the lag branches, and the call sites.
    driver = alloc.function()
    loop_pc = alloc.site()
    inner_pc = alloc.site()
    signal_bits = _signal_bit_count(spec.num_types)
    signal_pcs = [alloc.site() for _ in range(signal_bits)]
    lag_pcs = [alloc.site() for _ in range(spec.signal_lag)]
    site_pcs = [alloc.site() for _ in range(spec.num_sites)]

    # Virtual method entry points.  Per-site vtables unless shared.
    if spec.shared_methods:
        shared = [alloc.function() for _ in range(spec.num_types)]
        vtables: List[List[int]] = [shared for _ in range(spec.num_sites)]
    else:
        vtables = [
            [alloc.function() for _ in range(spec.num_types)]
            for _ in range(spec.num_sites)
        ]
    # Each method body ends in a return; give each a return-site PC.
    method_ret_pcs = {
        entry: entry + 0x40 for table in vtables for entry in table
    }

    # Monomorphic call sites, each in its own caller function and bound
    # to a single private callee.
    mono_site_pcs = []
    mono_callees = []
    for _ in range(spec.monomorphic_sites):
        alloc.function()
        mono_site_pcs.append(alloc.site())
        mono_callees.append(alloc.function())

    matrix = structured_transition_matrix(
        spec.num_types, rng, determinism=spec.determinism,
        self_loop=clamped_self_loop(spec.determinism, spec.self_loop)
    )
    chain = MarkovChain(matrix, rng)
    lag_phase = 0

    dispatches = 0
    while len(builder) < spec.num_records:
        type_index = chain.step()

        # Loop-back conditional (taken; models the driver loop).
        builder.conditional(
            loop_pc, True, driver + 0x8, gap=draw_gap(rng, spec.mean_gap)
        )

        # Inner bookkeeping loop: a fixed taken/.../not-taken pattern.
        for step in range(spec.filler_conditionals):
            taken = step < spec.filler_conditionals - 1
            builder.conditional(
                inner_pc, taken, inner_pc + (0x10 if taken else 0x4), gap=2
            )

        # Signal branches: outcome = bit b of the type index, noisy.
        for bit_position, pc in enumerate(signal_pcs):
            outcome = bool((type_index >> bit_position) & 1)
            if spec.signal_noise > 0 and rng.random() < spec.signal_noise:
                outcome = not outcome
            builder.conditional(
                pc, outcome, pc + (0x10 if outcome else 0x4), gap=1
            )

        # Lag filler: perfectly predictable alternating conditionals.
        for pc in lag_pcs:
            outcome = bool(lag_phase & 1)
            builder.conditional(pc, outcome, pc + (0x10 if outcome else 0x4), gap=1)
        lag_phase += 1

        # The virtual dispatch itself, at a randomly-chosen site (real
        # call sites are not visited in lockstep with the type stream).
        site = int(rng.integers(spec.num_sites))
        site_pc = site_pcs[site]
        method = vtables[site][type_index]
        builder.indirect_call(site_pc, method, gap=draw_gap(rng, 4.0))

        # Method body: a type-correlated conditional with mild noise —
        # real branch outcomes are strongly biased/structured, and an
        # IID-random outcome here would needlessly explode the history
        # context space every predictor hashes over.
        body_outcome = bool((type_index ^ dispatches) & 1)
        if rng.random() < 0.02:
            body_outcome = not body_outcome
        builder.conditional(
            method + 0x10,
            body_outcome,
            method + (0x30 if body_outcome else 0x14),
            gap=draw_gap(rng, spec.mean_gap),
        )
        builder.ret(method_ret_pcs[method], site_pc + 4, gap=draw_gap(rng, 4.0))

        # One monomorphic call per iteration, cycling through the sites.
        if spec.monomorphic_sites:
            mono = dispatches % spec.monomorphic_sites
            mono_pc = mono_site_pcs[mono]
            callee = mono_callees[mono]
            builder.indirect_call(mono_pc, callee, gap=draw_gap(rng, 6.0))
            builder.ret(callee + 0x80, mono_pc + 4, gap=draw_gap(rng, 6.0))

        dispatches += 1
        if spec.phase_length and dispatches % spec.phase_length == 0:
            matrix = structured_transition_matrix(
                spec.num_types,
                rng,
                determinism=spec.determinism,
                self_loop=clamped_self_loop(spec.determinism, spec.self_loop),
            )
            chain = MarkovChain(matrix, rng, initial_state=chain.state)

    return builder.build()
