"""Workload validation: the calibration contract, executable.

``docs/workloads.md`` records the properties synthetic traces must have
for predictor comparisons to be meaningful.  This module checks them on
a generated trace:

* **call/return discipline** — returns never underflow the call stack
  and target the caller's resume point;
* **conditional density** — enough conditionals per indirect branch for
  interval features to see stable contexts;
* **outcome structure** — conditional streams are compressible, not IID
  (measured as per-static-branch lag-1 conditional entropy
  H(X_t | X_{t-1}), which is 1.0 for balanced IID outcomes and lower
  for structured sequences — marginal entropy cannot tell a balanced
  signal from noise);
* **target-bit diversity** — the predicted low-order bits actually vary
  across targets (no degenerate alignment);
* **signal presence** — mutual information between recent conditional
  outcomes and the next indirect target is positive, i.e. the history
  actually carries the target.

``validate_trace`` returns a report of findings; the suite tests assert
that every suite-88 flavour passes.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.trace.record import BranchType
from repro.trace.stream import Trace

_COND = int(BranchType.CONDITIONAL)
_INDIRECT = (int(BranchType.INDIRECT_JUMP), int(BranchType.INDIRECT_CALL))
_RETURN = int(BranchType.RETURN)


@dataclass
class ValidationReport:
    """Findings from validating one trace against the contract."""

    trace_name: str
    conditional_per_indirect: float
    return_underflows: int
    return_mismatches: int
    mean_outcome_entropy: float      # bits, per static conditional branch
    predicted_bit_diversity: float   # fraction of low bits that vary
    signal_mutual_information: float # bits between history and target
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def _entropy(counts: Counter) -> float:
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def _mutual_information(history_symbols: List[int], targets: List[int]) -> float:
    """Empirical MI between a small history symbol and the target id."""
    if not history_symbols:
        return 0.0
    joint = Counter(zip(history_symbols, targets))
    history_margin = Counter(history_symbols)
    target_margin = Counter(targets)
    total = len(history_symbols)
    mi = 0.0
    for (h, t), count in joint.items():
        p_joint = count / total
        p_h = history_margin[h] / total
        p_t = target_margin[t] / total
        mi += p_joint * math.log2(p_joint / (p_h * p_t))
    return max(0.0, mi)


def validate_trace(
    trace: Trace,
    min_conditional_per_indirect: float = 3.0,
    min_bit_diversity: float = 0.25,
    min_signal_mi: float = 0.05,
    max_outcome_entropy: float = 0.95,
    signal_bits: int = 6,
    predicted_low_bit: int = 2,
    predicted_bits: int = 12,
) -> ValidationReport:
    """Check ``trace`` against the calibration contract."""
    pcs = trace.pcs.tolist()
    types = trace.types.tolist()
    takens = trace.takens.tolist()
    targets = trace.targets.tolist()

    conditionals = 0
    indirects = 0
    stack: List[int] = []
    underflows = 0
    mismatches = 0
    outcome_counts: Dict[int, Counter] = defaultdict(Counter)
    last_outcome: Dict[int, bool] = {}
    # Keep a deep history so the signal probe can look past filler
    # conditionals: MI is evaluated on signal_bits-wide windows at
    # several lags and the best lag is reported.
    probe_lags = (0, 4, 8, 12, 16, 20, 26)
    history_depth = max(probe_lags) + signal_bits
    history = 0
    history_mask = (1 << history_depth) - 1
    history_symbols: List[int] = []
    target_ids: List[int] = []
    poly_exec_pcs: List[int] = []
    indirect_targets: Dict[int, set] = defaultdict(set)

    for index in range(len(pcs)):
        branch_type = types[index]
        pc = pcs[index]
        if branch_type == _COND:
            conditionals += 1
            taken = bool(takens[index])
            previous = last_outcome.get(pc)
            if previous is not None:
                outcome_counts[pc][(previous, taken)] += 1
            last_outcome[pc] = taken
            history = ((history << 1) | int(taken)) & history_mask
            continue
        target = targets[index]
        if branch_type in _INDIRECT:
            indirects += 1
            history_symbols.append(history)
            target_ids.append(target)
            poly_exec_pcs.append(pc)
            indirect_targets[pc].add(target)
        if branch_type in (
            int(BranchType.DIRECT_CALL),
            int(BranchType.INDIRECT_CALL),
        ):
            stack.append(pc + 4)
        elif branch_type == _RETURN:
            if not stack:
                underflows += 1
            elif stack.pop() != target:
                mismatches += 1

    cond_per_indirect = conditionals / indirects if indirects else float("inf")

    # Lag-1 conditional entropy per branch: H(pairs) - H(prev).
    entropies = []
    for counts in outcome_counts.values():
        if sum(counts.values()) < 16:
            continue
        prev_margin = Counter()
        for (previous, _), count in counts.items():
            prev_margin[previous] += count
        entropies.append(_entropy(counts) - _entropy(prev_margin))
    mean_entropy = sum(entropies) / len(entropies) if entropies else 0.0

    # Bit diversity over polymorphic branches' target sets.
    varying = 0
    considered = 0
    for pc, target_set in indirect_targets.items():
        if len(target_set) < 2:
            continue
        values = np.array(sorted(target_set), dtype=np.uint64)
        for bit in range(predicted_low_bit, predicted_low_bit + predicted_bits):
            considered += 1
            bits = (values >> np.uint64(bit)) & np.uint64(1)
            if bits.min() != bits.max():
                varying += 1
    diversity = varying / considered if considered else 1.0

    window_mask = (1 << signal_bits) - 1
    mi = max(
        (
            _mutual_information(
                [(h >> lag) & window_mask for h in history_symbols],
                target_ids,
            )
            for lag in probe_lags
        ),
        default=0.0,
    )

    problems: List[str] = []
    if indirects == 0:
        problems.append("trace has no indirect branches")
    if cond_per_indirect < min_conditional_per_indirect:
        problems.append(
            f"only {cond_per_indirect:.1f} conditionals per indirect branch "
            f"(need >= {min_conditional_per_indirect})"
        )
    if underflows:
        problems.append(f"{underflows} return-stack underflows")
    if mismatches:
        problems.append(f"{mismatches} returns to wrong resume address")
    if entropies and mean_entropy > max_outcome_entropy:
        problems.append(
            f"conditional outcomes look IID (mean per-branch entropy "
            f"{mean_entropy:.2f} bits > {max_outcome_entropy})"
        )
    if considered and diversity < min_bit_diversity:
        problems.append(
            f"predicted target bits too uniform (diversity {diversity:.2f} "
            f"< {min_bit_diversity})"
        )
    # The signal check only applies when the trace is meaningfully
    # polymorphic: on monomorphic workloads the target is determined by
    # the branch PC and history legitimately carries no information.
    polymorphic_pcs = {
        pc for pc, target_set in indirect_targets.items() if len(target_set) > 1
    }
    polymorphic_executions = sum(
        1
        for symbol_pc in poly_exec_pcs
        if symbol_pc in polymorphic_pcs
    )
    polymorphic_share = polymorphic_executions / indirects if indirects else 0.0
    if (
        indirects >= 200
        and polymorphic_share >= 0.3
        and mi < min_signal_mi
    ):
        problems.append(
            f"history carries no target signal (MI {mi:.3f} bits "
            f"< {min_signal_mi}) despite {100 * polymorphic_share:.0f}% "
            f"polymorphic executions"
        )

    return ValidationReport(
        trace_name=trace.name,
        conditional_per_indirect=cond_per_indirect,
        return_underflows=underflows,
        return_mismatches=mismatches,
        mean_outcome_entropy=mean_entropy,
        predicted_bit_diversity=diversity,
        signal_mutual_information=mi,
        problems=problems,
    )


def format_report(report: ValidationReport) -> str:
    lines = [
        f"validation of {report.trace_name}: "
        + ("OK" if report.ok else "PROBLEMS"),
        f"  conditionals per indirect  {report.conditional_per_indirect:8.2f}",
        f"  return underflows          {report.return_underflows:8d}",
        f"  return mismatches          {report.return_mismatches:8d}",
        f"  mean outcome entropy       {report.mean_outcome_entropy:8.3f} bits",
        f"  predicted-bit diversity    {report.predicted_bit_diversity:8.2f}",
        f"  history->target MI         {report.signal_mutual_information:8.3f} bits",
    ]
    for problem in report.problems:
        lines.append(f"  !! {problem}")
    return "\n".join(lines)
