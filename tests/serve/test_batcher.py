"""Micro-batcher tests: fusion correctness, ordering, metrics, failure.

Batching must be invisible in the results — only throughput changes —
so the core assertions here compare batched execution against solo
stepping of identical sessions.
"""

import asyncio

import pytest

from repro.serve.batcher import MicroBatcher, _BatchItem, drain_batch
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import trace_events
from repro.serve.session import PredictorSession
from repro.workloads.vdispatch import VirtualDispatchSpec


def _events(seed=31, num_records=80):
    return trace_events(
        VirtualDispatchSpec(
            name=f"serve-batch-{seed}",
            seed=seed,
            num_records=num_records,
            num_sites=4,
            num_types=4,
            filler_conditionals=3,
        ).generate()
    )


def _item(loop, session, events):
    return _BatchItem(session, events, loop.create_future())


class TestDrainBatch:
    def test_fused_group_matches_solo(self):
        async def run():
            loop = asyncio.get_running_loop()
            events = _events()
            batched = [PredictorSession(f"b{i}", "BLBP") for i in range(3)]
            solo = [PredictorSession(f"s{i}", "BLBP") for i in range(3)]
            metrics = ServerMetrics()
            items = [_item(loop, session, events) for session in batched]
            drain_batch(items, metrics)
            solo_outputs = [s.step_events(events) for s in solo]
            for item, expected, solo_session, batched_session in zip(
                items, solo_outputs, solo, batched
            ):
                assert item.future.result() == expected
                assert batched_session.state_hash() == solo_session.state_hash()
            assert metrics.fused_groups == 1
            assert metrics.fused_sessions == 3
            assert metrics.batches == 1
            assert metrics.batch_events == 3 * len(events)

        asyncio.run(run())

    def test_multi_run_session_steps_solo_in_order(self):
        async def run():
            loop = asyncio.get_running_loop()
            events = _events()
            half = len(events) // 2
            # One session submits two runs in the same batch; another
            # session shares the first run's payload.  The two-run
            # session must not fuse (order within it matters).
            twice = PredictorSession("twice", "ITTAGE")
            other = PredictorSession("other", "ITTAGE")
            control = PredictorSession("control", "ITTAGE")
            metrics = ServerMetrics()
            items = [
                _item(loop, twice, events[:half]),
                _item(loop, other, events[:half]),
                _item(loop, twice, events[half:]),
            ]
            drain_batch(items, metrics)
            expected = control.step_events(events)
            assert (
                items[0].future.result() + items[2].future.result() == expected
            )
            assert twice.state_hash() == control.state_hash()
            assert metrics.fused_sessions == 0

        asyncio.run(run())

    def test_failure_poisons_only_its_future(self):
        async def run():
            loop = asyncio.get_running_loop()
            events = _events()
            good = PredictorSession("good", "BTB")
            bad = PredictorSession("bad", "BTB")
            bad.predictor = None  # stepping will raise AttributeError
            items = [
                _item(loop, bad, events[:4]),
                _item(loop, good, events),
            ]
            drain_batch(items, ServerMetrics())
            assert isinstance(items[0].future.exception(), AttributeError)
            control = PredictorSession("ctl", "BTB")
            assert items[1].future.result() == control.step_events(events)

        asyncio.run(run())

    def test_empty_batch_is_noop(self):
        metrics = ServerMetrics()
        drain_batch([], metrics)
        assert metrics.batches == 0


class TestMicroBatcher:
    def test_window_coalesces_concurrent_submissions(self):
        async def run():
            events = _events()
            metrics = ServerMetrics()
            batcher = MicroBatcher(0.02, 10_000, metrics)
            sessions = [PredictorSession(f"w{i}", "BLBP") for i in range(4)]
            outputs = await asyncio.gather(
                *(batcher.submit(session, events) for session in sessions)
            )
            await batcher.close()
            control = PredictorSession("ctl", "BLBP")
            expected = control.step_events(events)
            assert all(out == expected for out in outputs)
            # All four submissions landed in one drained batch, fused.
            assert metrics.batches == 1
            assert metrics.fused_sessions == 4

        asyncio.run(run())

    def test_event_cap_triggers_early_drain(self):
        async def run():
            events = _events()
            metrics = ServerMetrics()
            # Cap below one run's size: the drain must not wait out a
            # long window.
            batcher = MicroBatcher(30.0, len(events), metrics)
            session = PredictorSession("cap", "BTB")
            output = await asyncio.wait_for(
                batcher.submit(session, events), timeout=5.0
            )
            await batcher.close()
            assert len(output) == len(events)
            assert metrics.batches == 1

        asyncio.run(run())

    def test_flush_drains_pending_synchronously(self):
        async def run():
            events = _events()
            batcher = MicroBatcher(60.0, 10_000, ServerMetrics())
            session = PredictorSession("f", "BTB")
            waiter = asyncio.ensure_future(batcher.submit(session, events))
            await asyncio.sleep(0)  # let submit enqueue
            assert batcher.flush() == 1
            assert await waiter == PredictorSession(
                "ctl", "BTB"
            ).step_events(events)
            await batcher.close()

        asyncio.run(run())

    def test_closed_batcher_rejects_submissions(self):
        async def run():
            batcher = MicroBatcher()
            await batcher.close()
            with pytest.raises(RuntimeError):
                await batcher.submit(
                    PredictorSession("x", "BTB"), _events()[:2]
                )

        asyncio.run(run())

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            MicroBatcher(window_seconds=-1)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_events=0)
