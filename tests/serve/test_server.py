"""End-to-end server tests: sockets, eviction, drain/restart, hygiene.

Each test spins a real :class:`PredictionServer` on an ephemeral
localhost port inside ``asyncio.run`` (the suite does not depend on an
async pytest plugin).  The load paths always compare against a direct
``simulate`` or an uninterrupted control server, because the subsystem's
contract is that batching, eviction, and restarts are invisible.
"""

import asyncio
import json

import pytest

from repro.registry import make_indirect
from repro.serve.client import ServeClient, drive_load
from repro.serve.protocol import trace_events
from repro.serve.server import (
    PredictionServer,
    SessionManager,
    SessionStore,
)
from repro.serve.session import PredictorSession, SessionError
from repro.sim.engine import simulate
from repro.workloads.vdispatch import VirtualDispatchSpec


def _trace(seed=43, num_records=120):
    return VirtualDispatchSpec(
        name=f"serve-e2e-{seed}",
        seed=seed,
        num_records=num_records,
        num_sites=4,
        num_types=4,
        filler_conditionals=4,
    ).generate()


async def _with_server(tmp_path, coro, **kwargs):
    server = PredictionServer(
        state_dir=tmp_path / "state", **kwargs
    )
    port = await server.start()
    try:
        return await coro(server, port)
    finally:
        await server.stop()


class TestLockstepProtocol:
    def test_open_stream_close_matches_simulate(self, tmp_path):
        async def scenario(server, port):
            trace = _trace()
            events = trace_events(trace)
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                welcome = await client.hello()
                assert welcome["protocol"] == 1
                assert "BLBP" in welcome["predictors"]
                opened = await client.open("e2e", "BLBP")
                assert opened == {
                    "t": "opened",
                    "session": "e2e",
                    "predictor": "BLBP",
                    "resumed": False,
                    "events": 0,
                }
                for start in range(0, len(events), 40):
                    out = await client.events(
                        "e2e", events[start : start + 40]
                    )
                    assert len(out["out"]) == len(events[start : start + 40])
                closed = await client.close_session("e2e")
            finally:
                await client.aclose()

            reference = make_indirect("BLBP")
            result = simulate(reference, trace)
            assert closed["state_hash"] == reference.state_hash()
            assert closed["result"]["mpki"] == result.mpki()
            assert (
                closed["result"]["indirect_branches"]
                == result.indirect_branches
            )
            assert (
                closed["result"]["total_instructions"]
                == result.total_instructions
            )

        asyncio.run(_with_server(tmp_path, scenario))

    def test_unknown_predictor_error_points_at_registry(self, tmp_path):
        async def scenario(server, port):
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                with pytest.raises(Exception) as info:
                    await client.open("x", "NoSuchPredictor")
                assert "repro registry" in str(info.value)
            finally:
                await client.aclose()

        asyncio.run(_with_server(tmp_path, scenario))

    def test_double_open_and_unknown_session_errors(self, tmp_path):
        async def scenario(server, port):
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                await client.open("dup", "BTB")
                with pytest.raises(Exception, match="already open"):
                    await client.open("dup", "BTB")
                with pytest.raises(Exception, match="unknown session"):
                    await client.events("ghost", trace_events(_trace())[:2])
            finally:
                await client.aclose()

        asyncio.run(_with_server(tmp_path, scenario))

    def test_stats_shape(self, tmp_path):
        async def scenario(server, port):
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                await client.open("s1", "BTB")
                await client.events("s1", trace_events(_trace())[:30])
                stats = await client.stats(sessions=True)
            finally:
                await client.aclose()
            assert stats["sessions"]["opened"] == 1
            assert stats["sessions"]["resident"] == 1
            assert stats["events"]["total"] == 30
            assert stats["batching"]["batches"] >= 1
            assert stats["per_session"]["s1"]["events"] == 30
            assert stats["max_resident"] == server.manager.max_resident

        asyncio.run(_with_server(tmp_path, scenario))


class TestEvictionAndRestart:
    def test_eviction_is_invisible(self, tmp_path):
        """A cap-2 server must match an uncapped one bit-for-bit."""

        async def run_fleet(state_dir, max_resident):
            server = PredictionServer(
                state_dir=state_dir, max_resident=max_resident
            )
            port = await server.start()
            try:
                outcome = await drive_load(
                    "127.0.0.1",
                    port,
                    sessions=12,
                    events_per_session=60,
                    connections=2,
                    distinct_streams=4,
                )
                evicted = server.metrics.sessions_evicted
                rehydrated = server.metrics.sessions_rehydrated
            finally:
                await server.stop()
            return outcome["closed"], evicted, rehydrated

        async def scenario():
            capped, evicted, rehydrated = await run_fleet(
                tmp_path / "capped", 2
            )
            uncapped, _, _ = await run_fleet(tmp_path / "uncapped", 1024)
            assert evicted > 0 and rehydrated > 0
            assert capped == uncapped

        asyncio.run(scenario())

    def test_drain_restart_resume_is_invisible(self, tmp_path):
        """Stop mid-stream, restart on the same state dir, finish: the
        closes must equal an uninterrupted control run."""

        async def scenario():
            golden_server = PredictionServer(state_dir=tmp_path / "golden")
            golden_port = await golden_server.start()
            golden = await drive_load(
                "127.0.0.1", golden_port, sessions=10,
                events_per_session=80, connections=2,
            )
            await golden_server.stop()

            state = tmp_path / "state"
            first = PredictionServer(state_dir=state)
            port = await first.start()
            await drive_load(
                "127.0.0.1", port, sessions=10, events_per_session=80,
                connections=2, count=37, do_close=False,
            )
            saved = await first.stop()
            assert saved == 10
            assert first.store.count() == 10

            second = PredictionServer(state_dir=state)
            port = await second.start()
            resumed = await drive_load(
                "127.0.0.1", port, sessions=10, events_per_session=80,
                connections=2, offset=37,
            )
            await second.stop()
            assert resumed["resumed"] == 10
            assert resumed["closed"] == golden["closed"]
            # Clean closes leave no checkpoints behind.
            assert second.store.count() == 0

        asyncio.run(scenario())

    def test_resume_rejects_predictor_mismatch(self, tmp_path):
        async def scenario(server, port):
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                await client.open("swap", "BTB")
                await client.events("swap", trace_events(_trace())[:10])
                await client.drain()
            finally:
                await client.aclose()
            await server.stop()

            restarted = PredictionServer(state_dir=server.store.state_dir)
            port = await restarted.start()
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                with pytest.raises(Exception, match="checkpointed with"):
                    await client.open("swap", "BLBP")
            finally:
                await client.aclose()
                await restarted.stop()

        asyncio.run(_with_server(tmp_path, scenario))


class TestSessionManager:
    def test_admission_never_evicts_the_admitted_session(self, tmp_path):
        """Regression: when every other resident is mid-flight, the
        eviction sweep must skip the session being admitted — evicting
        it would orphan the object the caller is about to step and leave
        a stale checkpoint on disk."""

        async def scenario():
            manager = SessionManager(
                SessionStore(tmp_path / "state"), max_resident=1
            )
            manager.open("busy", "BTB")
            manager.acquire("busy")  # pin the only resident
            manager.open("incoming", "BTB")
            # Soft cap: both stay resident rather than orphaning one.
            assert "incoming" in manager._resident
            assert "busy" in manager._resident
            manager.release("busy")
            manager.evict_over_capacity()
            assert list(manager._resident) == ["incoming"]

        asyncio.run(scenario())

    def test_rehydrated_session_is_not_its_own_victim(self, tmp_path):
        async def scenario():
            manager = SessionManager(
                SessionStore(tmp_path / "state"), max_resident=1
            )
            manager.open("a", "BTB")
            manager.evict("a")
            manager.open("pinned", "BTB")
            manager.acquire("pinned")
            session = manager.get("a")  # rehydrate over capacity
            assert manager._resident["a"] is session
            events = trace_events(_trace())[:20]
            session.step_events(events)
            manager.release("pinned")
            # A later eviction persists the *stepped* state.
            manager.evict("a")
            restored = manager.get("a")
            assert restored.cursor == 20

        asyncio.run(scenario())


class TestStoreHygiene:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = SessionStore(tmp_path / "state")
        session = PredictorSession("hygiene", "BTB")
        session.step_events(trace_events(_trace())[:15])
        store.save(session)
        names = [p.name for p in store.state_dir.iterdir()]
        assert len(names) == 1
        assert names[0].endswith(".session.json")

    def test_roundtrip_and_delete(self, tmp_path):
        store = SessionStore(tmp_path / "state")
        session = PredictorSession("rt", "ITTAGE")
        session.step_events(trace_events(_trace())[:25])
        store.save(session)
        restored = PredictorSession.from_checkpoint(store.load("rt"))
        assert restored.state_hash() == session.state_hash()
        assert restored.cursor == 25
        store.delete("rt")
        assert store.load("rt") is None
        assert store.count() == 0

    def test_damaged_checkpoint_refused(self, tmp_path):
        store = SessionStore(tmp_path / "state")
        session = PredictorSession("dmg", "BTB")
        session.step_events(trace_events(_trace())[:10])
        path = store.save(session)
        path.write_text("{not json")
        with pytest.raises(SessionError, match="unreadable"):
            store.load("dmg")

    def test_tampered_state_refused_on_rehydrate(self, tmp_path):
        store = SessionStore(tmp_path / "state")
        session = PredictorSession("tmp", "BTB")
        session.step_events(trace_events(_trace())[:10])
        path = store.save(session)
        document = json.loads(path.read_text())
        document["predictor_hash"] = "f" * 64
        path.write_text(json.dumps(document))
        with pytest.raises(SessionError, match="does not match"):
            PredictorSession.from_checkpoint(store.load("tmp"))

    def test_weird_session_ids_map_to_safe_unique_paths(self, tmp_path):
        store = SessionStore(tmp_path / "state")
        ids = ["a/../b", "a ../b", "x" * 200, "x" * 201, "日本語"]
        paths = {store.path_for(session_id) for session_id in ids}
        assert len(paths) == len(ids)
        for path in paths:
            assert path.parent == store.state_dir
            assert path.name.endswith(".session.json")
