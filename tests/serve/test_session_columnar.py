"""The serve layer's columnar fast path is bit-identical to stepping.

Event runs of at least ``COLUMNAR_STEP_THRESHOLD`` on columnar-supported
predictors replay through :func:`repro.sim.kernel.simulate_columnar_many`
(fused sessions as lanes over one shared precompute) with the RAS and
warmup/metric accounting swept session-side.  Every output, accumulator,
RAS state, and final ``state_hash`` must match per-event stepping
exactly — and runs that are short, mixed-depth, or hosting unsupported
predictors must never take the shortcut.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.serve import session as session_module
from repro.serve.session import (
    COLUMNAR_STEP_THRESHOLD,
    PredictorSession,
    step_sessions_fused,
)
from repro.trace.record import BranchType

_COLUMNAR_KEYS = ["BLBP", "ITTAGE", "VPC"]

Event = Tuple[int, int, bool, int, int]


def _events(seed: int, count: int) -> List[Event]:
    """A mixed event run: conditionals, indirects, calls, returns."""
    rng = random.Random(seed)
    pcs = [0x4000, 0x4008, 0x4040, 0x5000]
    targets = [0x10_0000, 0x10_0040, 0x10_0080, 0x11_0000]
    events: List[Event] = []
    depth = 0
    for _ in range(count):
        kind = rng.choice(
            ("ind", "ind", "icall", "cond", "cond", "ret", "dcall")
        )
        if kind == "ret" and depth == 0:
            kind = "cond"
        if kind == "cond":
            events.append(
                (0x900, int(BranchType.CONDITIONAL),
                 rng.random() < 0.5, 0x910, 1)
            )
        elif kind == "ind":
            events.append(
                (rng.choice(pcs), int(BranchType.INDIRECT_JUMP), True,
                 rng.choice(targets), 2)
            )
        elif kind == "icall":
            events.append(
                (rng.choice(pcs), int(BranchType.INDIRECT_CALL), True,
                 rng.choice(targets), 2)
            )
            depth += 1
        elif kind == "dcall":
            events.append(
                (0x7000, int(BranchType.DIRECT_CALL), True,
                 rng.choice(targets), 1)
            )
            depth += 1
        else:
            events.append(
                (0x8000, int(BranchType.RETURN), True,
                 rng.choice(targets), 1)
            )
            depth -= 1
    return events


def _solo_outputs(key, events, warmup=0, ras_depth=32):
    """Per-event stepping — the scalar reference call sequence."""
    session = PredictorSession(
        "s", key, warmup_records=warmup, ras_depth=ras_depth
    )
    outputs = [session.step(*event) for event in events]
    return session, outputs


def _assert_sessions_match(fast, reference):
    assert fast.result() == reference.result()
    assert fast.cursor == reference.cursor
    assert fast.skip == reference.skip
    assert fast.instruction_gaps == reference.instruction_gaps
    assert fast.ras.state_dict() == reference.ras.state_dict()
    assert fast.state_hash() == reference.state_hash()


def _spy_columnar(monkeypatch):
    """Record each fast-path attempt's success; delegate to the real one."""
    attempts = []
    original = session_module._step_sessions_columnar

    def spy(sessions, events):
        outputs = original(sessions, events)
        attempts.append(outputs is not None)
        return outputs

    monkeypatch.setattr(session_module, "_step_sessions_columnar", spy)
    return attempts


class TestStepEventsParity:
    @pytest.mark.parametrize("key", _COLUMNAR_KEYS)
    def test_long_run_matches_per_event_stepping(self, key, monkeypatch):
        attempts = _spy_columnar(monkeypatch)
        events = _events(1, COLUMNAR_STEP_THRESHOLD + 64)
        fast = PredictorSession("s", key)
        reference, expected = _solo_outputs(key, events)
        outputs = fast.step_events(events)
        assert attempts == [True], "the columnar shortcut did not run"
        assert outputs == expected
        _assert_sessions_match(fast, reference)

    @pytest.mark.parametrize("key", _COLUMNAR_KEYS)
    def test_warmup_accounting(self, key):
        """Warmup events are consumed but not counted — the sweep must
        track the per-event countdown exactly."""
        warmup = COLUMNAR_STEP_THRESHOLD // 2
        events = _events(2, COLUMNAR_STEP_THRESHOLD + 32)
        fast = PredictorSession("s", key, warmup_records=warmup)
        reference, expected = _solo_outputs(key, events, warmup=warmup)
        outputs = fast.step_events(events)
        assert outputs == expected
        _assert_sessions_match(fast, reference)

    def test_short_run_stays_scalar(self, monkeypatch):
        attempts = _spy_columnar(monkeypatch)
        events = _events(3, COLUMNAR_STEP_THRESHOLD - 1)
        fast = PredictorSession("s", "BLBP")
        reference, expected = _solo_outputs("BLBP", events)
        outputs = fast.step_events(events)
        assert attempts == [], "a sub-threshold run took the shortcut"
        assert outputs == expected
        _assert_sessions_match(fast, reference)

    def test_unsupported_predictor_stays_scalar(self, monkeypatch):
        attempts = _spy_columnar(monkeypatch)
        events = _events(4, COLUMNAR_STEP_THRESHOLD + 16)
        fast = PredictorSession("s", "BTB")
        reference, expected = _solo_outputs("BTB", events)
        outputs = fast.step_events(events)
        assert attempts == []
        assert outputs == expected
        _assert_sessions_match(fast, reference)

    def test_mid_stream_shortcut(self):
        """A session already warm from scalar stepping must continue
        bit-identically through a columnar run (live RAS, live tables)."""
        for key in _COLUMNAR_KEYS:
            lead_in = _events(5, 100)
            long_run = _events(6, COLUMNAR_STEP_THRESHOLD + 16)
            fast = PredictorSession("s", key)
            reference = PredictorSession("s", key)
            for event in lead_in:
                fast.step(*event)
                reference.step(*event)
            expected = [reference.step(*event) for event in long_run]
            outputs = fast.step_events(long_run)
            assert outputs == expected, key
            _assert_sessions_match(fast, reference)


class TestFusedStepParity:
    def test_fused_sessions_match_solo(self, monkeypatch):
        attempts = _spy_columnar(monkeypatch)
        events = _events(7, COLUMNAR_STEP_THRESHOLD + 32)
        keys = ["BLBP", "BLBP", "ITTAGE", "VPC"]
        fused = [PredictorSession("s", key) for key in keys]
        outputs = step_sessions_fused(fused, events)
        assert attempts == [True]
        for slot, key in enumerate(keys):
            reference, expected = _solo_outputs(key, events)
            assert outputs[slot] == expected, f"lane {slot} ({key})"
            _assert_sessions_match(fused[slot], reference)

    def test_mixed_ras_depth_stays_scalar(self, monkeypatch):
        """Sessions with differing RAS depths cannot share one derived
        plane; the fused pass must step them scalar — and still match."""
        attempts = _spy_columnar(monkeypatch)
        events = _events(8, COLUMNAR_STEP_THRESHOLD + 16)
        fused = [
            PredictorSession("s", "BLBP", ras_depth=32),
            PredictorSession("s", "BLBP", ras_depth=16),
        ]
        outputs = step_sessions_fused(fused, events)
        assert attempts == []
        for slot, depth in enumerate((32, 16)):
            reference, expected = _solo_outputs(
                "BLBP", events, ras_depth=depth
            )
            assert outputs[slot] == expected
            _assert_sessions_match(fused[slot], reference)

    def test_mixed_support_stays_scalar(self, monkeypatch):
        attempts = _spy_columnar(monkeypatch)
        events = _events(9, COLUMNAR_STEP_THRESHOLD + 16)
        fused = [
            PredictorSession("s", "BLBP"),
            PredictorSession("s", "BTB"),
        ]
        outputs = step_sessions_fused(fused, events)
        assert attempts == []
        for slot, key in enumerate(("BLBP", "BTB")):
            reference, expected = _solo_outputs(key, events)
            assert outputs[slot] == expected
            _assert_sessions_match(fused[slot], reference)
