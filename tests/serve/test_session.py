"""Session-layer equivalence: the serve state machine vs the engine.

The whole serve subsystem rests on one guarantee: a
:class:`PredictorSession` fed a trace's events finishes bit-identical to
:func:`repro.sim.engine.simulate` on that trace, and suspending the
session at *any* event boundary (checkpoint → JSON → rehydrate) does not
perturb that.  These tests pin the guarantee directly, for several
registered predictor kinds, with the suspend point chosen by hypothesis.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.registry import make_indirect
from repro.serve.protocol import trace_events
from repro.serve.session import (
    SESSION_CHECKPOINT_KIND,
    PredictorSession,
    SessionError,
    step_sessions_fused,
)
from repro.sim.engine import simulate
from repro.workloads.vdispatch import VirtualDispatchSpec

#: Predictor kinds the equivalence property runs over (≥ 3, spanning
#: table-based, TAGE-like, and perceptron-based designs).
KINDS = ["BTB", "TargetCache", "VPC", "ITTAGE", "BLBP"]


def _trace(seed=11, num_records=160):
    return VirtualDispatchSpec(
        name=f"serve-session-{seed}",
        seed=seed,
        num_records=num_records,
        num_sites=4,
        num_types=4,
        determinism=0.8,
        filler_conditionals=4,
    ).generate()


def _assert_matches_simulate(session, trace, warmup=0):
    """The session's result and state hash equal a direct simulate."""
    reference = make_indirect(session.predictor_key)
    result = simulate(reference, trace, warmup_records=warmup)
    ours = session.result()
    assert ours.total_instructions == result.total_instructions
    assert ours.indirect_branches == result.indirect_branches
    assert ours.indirect_mispredictions == result.indirect_mispredictions
    assert ours.return_branches == result.return_branches
    assert ours.return_mispredictions == result.return_mispredictions
    assert ours.conditional_branches == result.conditional_branches
    assert session.state_hash() == reference.state_hash()


class TestEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    def test_streaming_matches_simulate(self, kind):
        trace = _trace()
        session = PredictorSession("s", kind)
        session.step_events(trace_events(trace))
        _assert_matches_simulate(session, trace)

    @pytest.mark.parametrize("kind", ["BLBP", "ITTAGE"])
    def test_warmup_matches_simulate(self, kind):
        trace = _trace(seed=13)
        session = PredictorSession("s", kind, warmup_records=40)
        session.step_events(trace_events(trace))
        _assert_matches_simulate(session, trace, warmup=40)

    @pytest.mark.parametrize("kind", KINDS)
    def test_chunked_streaming_equals_one_shot(self, kind):
        events = trace_events(_trace(seed=17))
        one_shot = PredictorSession("a", kind)
        outputs_one = one_shot.step_events(events)
        chunked = PredictorSession("b", kind)
        outputs_chunks = []
        for start in range(0, len(events), 13):
            outputs_chunks.extend(
                chunked.step_events(events[start : start + 13])
            )
        assert outputs_one == outputs_chunks
        assert one_shot.state_hash() == chunked.state_hash()


class TestSuspendResume:
    """Satellite 3: open → stream → evict → rehydrate → stream is
    bit-identical to the uninterrupted run, across predictor kinds."""

    @given(
        kind=st.sampled_from(["BLBP", "ITTAGE", "BTB"]),
        cut=st.integers(min_value=0, max_value=160),
        seed=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_suspend_anywhere_is_invisible(self, kind, cut, seed):
        trace = _trace(seed=seed)
        events = trace_events(trace)
        cut = min(cut, len(events))

        control = PredictorSession("ctl", kind)
        control_out = control.step_events(events)

        probe = PredictorSession("ctl", kind)
        head = probe.step_events(events[:cut])
        # Evict: checkpoint through JSON exactly as the session store
        # writes it, then rehydrate into a fresh object.
        document = json.loads(json.dumps(probe.checkpoint()))
        resumed = PredictorSession.from_checkpoint(document)
        tail = resumed.step_events(events[cut:])

        assert head + tail == control_out
        assert resumed.state_hash() == control.state_hash()
        assert resumed.result() == control.result()
        _assert_matches_simulate(resumed, trace)

    def test_checkpoint_envelope_fields(self):
        session = PredictorSession("env", "BLBP", warmup_records=5)
        session.step_events(trace_events(_trace())[:20])
        document = session.checkpoint()
        assert document["kind"] == SESSION_CHECKPOINT_KIND
        assert document["session"] == "env"
        assert document["predictor_key"] == "BLBP"
        assert document["warmup_records"] == 5
        assert document["predictor_hash"] == session.state_hash()
        assert document["checkpoint"]["cursor"] == 20

    def test_rejects_wrong_kind(self):
        with pytest.raises(SessionError):
            PredictorSession.from_checkpoint({"kind": "SomethingElse"})

    def test_rejects_malformed_document(self):
        with pytest.raises(SessionError):
            PredictorSession.from_checkpoint(
                {"kind": SESSION_CHECKPOINT_KIND, "session": "x"}
            )

    def test_rejects_tampered_state(self):
        session = PredictorSession("tamper", "BLBP")
        session.step_events(trace_events(_trace())[:30])
        document = session.checkpoint()
        # Flip the recorded hash: the restore must refuse, not resurrect.
        document["predictor_hash"] = "0" * 64
        with pytest.raises(SessionError, match="does not match"):
            PredictorSession.from_checkpoint(document)


class TestFusedStepping:
    def test_fused_equals_solo(self):
        events = trace_events(_trace(seed=23))
        kinds = ["BLBP", "ITTAGE", "BTB", "BLBP"]
        solo = [PredictorSession(f"solo-{i}", k) for i, k in enumerate(kinds)]
        fused = [PredictorSession(f"fuse-{i}", k) for i, k in enumerate(kinds)]
        solo_outputs = [s.step_events(events) for s in solo]
        fused_outputs = step_sessions_fused(fused, events)
        assert fused_outputs == solo_outputs
        for a, b in zip(solo, fused):
            assert a.state_hash() == b.state_hash()
            assert a.result().mpki() == b.result().mpki()

    def test_fused_respects_warmup(self):
        events = trace_events(_trace(seed=29))
        solo = PredictorSession("a", "BLBP", warmup_records=25)
        fused = PredictorSession("b", "BLBP", warmup_records=25)
        solo_out = solo.step_events(events)
        fused_out = step_sessions_fused([fused], events)[0]
        assert fused_out == solo_out
        assert solo.mispredictions == fused.mispredictions

    def test_empty_inputs(self):
        assert step_sessions_fused([], trace_events(_trace())[:3]) == []
        session = PredictorSession("e", "BTB")
        assert step_sessions_fused([session], []) == [[]]


class TestValidation:
    def test_unknown_predictor_key(self):
        with pytest.raises(SessionError, match="unknown indirect"):
            PredictorSession("x", "NotAPredictor")

    def test_negative_warmup(self):
        with pytest.raises(SessionError):
            PredictorSession("x", "BTB", warmup_records=-1)
