"""Wire-format tests for the serve protocol.

The protocol module is the single source of truth for both ends of the
connection, so these tests pin the encode/decode roundtrip, the event
validation contract (everything the server will refuse), and the
trace → wire-events bridge the equivalence suite builds on.
"""

import json

import pytest

from repro.serve import protocol
from repro.serve.protocol import ProtocolError
from repro.trace.record import BranchType
from repro.workloads.vdispatch import VirtualDispatchSpec


def _trace(num_records=50, seed=7):
    return VirtualDispatchSpec(
        name="proto-test",
        seed=seed,
        num_records=num_records,
        num_sites=3,
        num_types=4,
        filler_conditionals=2,
    ).generate()


class TestEncodeDecode:
    def test_roundtrip(self):
        message = {"t": "open", "session": "s-1", "predictor": "BLBP"}
        assert protocol.decode(protocol.encode(message)) == message

    def test_encode_is_one_compact_line(self):
        line = protocol.encode({"t": "hello"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert b" " not in line

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"[1, 2, 3]\n")

    def test_decode_rejects_missing_tag(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b'{"session": "x"}\n')

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"not json at all\n")


class TestEventValidation:
    def test_parse_event_normalizes(self):
        event = protocol.parse_event([4096, 3, 1, 8192, 7])
        assert event == (4096, 3, True, 8192, 7)
        assert isinstance(event[2], bool)

    @pytest.mark.parametrize(
        "raw",
        [
            [1, 2, 3],                       # wrong arity
            "nope",                          # not an array
            [-1, 0, True, 0, 0],             # negative pc
            [0, 9, True, 0, 0],              # unknown branch type
            [0, 0, True, -5, 0],             # negative target
            [0, 0, True, 0, -1],             # negative gap
            [0.5, 0, True, 0, 0],            # float pc
        ],
    )
    def test_parse_event_rejects(self, raw):
        with pytest.raises(ProtocolError):
            protocol.parse_event(raw)

    def test_parse_events_rejects_empty(self):
        with pytest.raises(ProtocolError):
            protocol.parse_events([])
        with pytest.raises(ProtocolError):
            protocol.parse_events(None)

    def test_require_session_id(self):
        assert protocol.require_session_id({"session": "abc"}) == "abc"
        with pytest.raises(ProtocolError):
            protocol.require_session_id({"session": ""})
        with pytest.raises(ProtocolError):
            protocol.require_session_id({"session": 17})
        with pytest.raises(ProtocolError):
            protocol.require_session_id({"session": "x" * 257})


class TestTraceEvents:
    def test_matches_trace_columns(self):
        trace = _trace()
        events = protocol.trace_events(trace)
        assert len(events) == len(trace.pcs)
        for index, (pc, bt, taken, target, gap) in enumerate(events):
            assert pc == int(trace.pcs[index])
            assert bt == int(trace.types[index])
            assert taken == bool(trace.takens[index])
            assert target == int(trace.targets[index])
            assert gap == int(trace.gaps[index])

    def test_events_are_wire_safe(self):
        events = protocol.trace_events(_trace())
        # Every event validates and JSON-roundtrips untouched.
        for event in events:
            assert protocol.parse_event(list(event)) == event
        encoded = protocol.encode(
            {"t": "events", "session": "s", "events": [list(e) for e in events]}
        )
        decoded = protocol.decode(encoded)
        assert protocol.parse_events(decoded["events"]) == events

    def test_covers_multiple_branch_types(self):
        kinds = {event[1] for event in protocol.trace_events(_trace(200))}
        assert int(BranchType.CONDITIONAL) in kinds
        assert int(BranchType.INDIRECT_CALL) in kinds
