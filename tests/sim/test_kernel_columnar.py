"""Lockstep differentials for the ITTAGE/VPC columnar kernels and the
fused multi-predictor columnar pass.

The BLBP kernel's ordering barriers are pinned by
``test_kernel_properties``; this module pins the other two kernels and
the fused entry point:

* :func:`repro.sim.kernel.simulate_columnar` on ITTAGE and VPC must
  emit per-branch predictions and a final ``state_hash`` identical to
  the scalar engine's call sequence — on traces mixing conditionals,
  indirect jumps/calls, returns, and direct branches, from both cold
  and warm predictor state, on both replay paths (compiled and numpy);
* :func:`repro.sim.kernel.simulate_columnar_many` must give every lane
  of a heterogeneous fused group (identical BLBP twins, differing BLBP
  geometries and feature toggles, hierarchical IBTB, ITTAGE, VPC) the
  exact results and final state a solo run produces, and must form a
  single lane-parallel group from identical-config lanes;
* :func:`repro.sim.kernel.columnar_support` reasons must name the
  offending type and the remedy, and the kernels must refuse
  unsupported predictors rather than silently misreplay them.
"""

from __future__ import annotations

import contextlib
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BLBP
from repro.core.config import BLBPConfig
from repro.predictors.ittage import ITTAGE, ITTAGEConfig
from repro.predictors.vpc import VPCConfig, VPCPredictor
from repro.sim import kernel
from repro.sim.engine import simulate
from repro.sim.kernel import (
    columnar_support,
    columnar_supported,
    simulate_columnar,
    simulate_columnar_many,
)
from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace

_COND = int(BranchType.CONDITIONAL)
_INDIRECT = (int(BranchType.INDIRECT_JUMP), int(BranchType.INDIRECT_CALL))

#: Tiny pools so back-to-back branches collide in tables and IBTB sets.
_PCS = [0x4000, 0x4008, 0x4040, 0x5000]
_TARGETS = [0x10_0000, 0x10_0040, 0x10_0080, 0x11_0000, 0x12_0000]


@contextlib.contextmanager
def _replay_path(force_numpy: bool):
    """Pin the replay path for the duration: the numpy fallback when
    forced, else whatever the environment resolves (compiled when a C
    compiler is available)."""
    saved = os.environ.get("REPRO_COLUMNAR_COMPILED")
    try:
        if force_numpy:
            os.environ["REPRO_COLUMNAR_COMPILED"] = "0"
        else:
            os.environ.pop("REPRO_COLUMNAR_COMPILED", None)
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_COLUMNAR_COMPILED", None)
        else:
            os.environ["REPRO_COLUMNAR_COMPILED"] = saved


def _append_event(records, depth, kind, pc_index, target_index, taken):
    """Append one event; returns the updated call depth."""
    pc = _PCS[pc_index]
    target = _TARGETS[target_index]
    if kind == "ret" and depth == 0:
        kind = "cond"  # returns only make sense under an open call
    if kind == "cond":
        records.append(
            BranchRecord(0x900 + 8 * pc_index, BranchType.CONDITIONAL,
                         taken, 0x910, inst_gap=1)
        )
    elif kind == "ind":
        records.append(
            BranchRecord(pc, BranchType.INDIRECT_JUMP, True, target,
                         inst_gap=2)
        )
    elif kind == "icall":
        records.append(
            BranchRecord(pc, BranchType.INDIRECT_CALL, True, target,
                         inst_gap=2)
        )
        depth += 1
    elif kind == "dcall":
        records.append(
            BranchRecord(0x7000, BranchType.DIRECT_CALL, True, target,
                         inst_gap=1)
        )
        depth += 1
    elif kind == "ret":
        records.append(
            BranchRecord(0x8000, BranchType.RETURN, True, target,
                         inst_gap=1)
        )
        depth -= 1
    else:  # direct jump
        records.append(
            BranchRecord(0x7100, BranchType.DIRECT_JUMP, True, target,
                         inst_gap=1)
        )
    return depth


_KINDS = ["ind", "ind", "icall", "cond", "cond", "ret", "dcall", "djump"]


def _random_trace(seed: int, name: str, count: int) -> Trace:
    rng = random.Random(seed)
    records = []
    depth = 0
    for _ in range(count):
        depth = _append_event(
            records, depth, rng.choice(_KINDS),
            rng.randrange(len(_PCS)), rng.randrange(len(_TARGETS)),
            rng.random() < 0.5,
        )
    return Trace.from_records(name, records)


@st.composite
def mixed_traces(draw):
    """Traces mixing every branch kind over deliberately tiny pools."""
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(_KINDS),
                st.integers(0, len(_PCS) - 1),
                st.integers(0, len(_TARGETS) - 1),
                st.booleans(),
            ),
            min_size=1,
            max_size=120,
        )
    )
    records = []
    depth = 0
    for kind, pc_index, target_index, taken in events:
        depth = _append_event(
            records, depth, kind, pc_index, target_index, taken
        )
    return Trace.from_records("hyp-mixed", records)


def _scalar_per_branch(predictor, trace):
    """Per-branch predictions from the engine's exact call sequence."""
    predictions = []
    for pc, branch_type, taken, target in zip(
        trace.pcs.tolist(),
        trace.types.tolist(),
        trace.takens.tolist(),
        trace.targets.tolist(),
    ):
        if branch_type == _COND:
            predictor.on_conditional(pc, taken)
        elif branch_type in _INDIRECT:
            predictions.append(predictor.predict_target(pc))
            predictor.train(pc, target)
            predictor.on_retired(pc, branch_type, target)
        else:
            predictor.on_retired(pc, branch_type, target)
    return predictions


def _assert_lockstep(make_predictor, trace, force_numpy, warm_trace=None):
    scalar_predictor = make_predictor()
    columnar_predictor = make_predictor()
    if warm_trace is not None:
        simulate(scalar_predictor, warm_trace)
        columnar_predictor.load_state(scalar_predictor.state_dict())
    scalar_predictions = _scalar_per_branch(scalar_predictor, trace)
    sink = {}
    with _replay_path(force_numpy):
        simulate_columnar(columnar_predictor, trace, prediction_sink=sink)
    assert len(scalar_predictions) == len(sink["predictions"])
    for position, (scalar, valid, predicted) in enumerate(
        zip(
            scalar_predictions,
            sink["valid"].tolist(),
            sink["predictions"].tolist(),
        )
    ):
        columnar = predicted if valid else None
        assert scalar == columnar, (
            f"{trace.name}: indirect #{position}: scalar {scalar!r} vs "
            f"columnar {columnar!r}"
        )
    assert scalar_predictor.state_hash() == columnar_predictor.state_hash()


def _small_ittage():
    return ITTAGE(
        ITTAGEConfig(base_entries=64, tagged_entries=32, u_reset_period=16)
    )


def _small_vpc():
    return VPCPredictor(VPCConfig(btb_entries=128))


class TestITTAGELockstep:
    @settings(max_examples=40, deadline=None)
    @given(trace=mixed_traces())
    def test_lockstep_on_mixed_traces(self, trace):
        _assert_lockstep(_small_ittage, trace, force_numpy=False)

    @settings(max_examples=40, deadline=None)
    @given(trace=mixed_traces())
    def test_lockstep_on_mixed_traces_numpy_replay(self, trace):
        _assert_lockstep(_small_ittage, trace, force_numpy=True)

    @pytest.mark.parametrize("force_numpy", [False, True])
    def test_warm_start(self, force_numpy):
        """Resuming from mid-stream state (tables, use-alt meta-counter,
        the allocation RNG) must stay bit-identical."""
        warm = _random_trace(7, "ittage-warm", 160)
        main = _random_trace(8, "ittage-main", 200)
        _assert_lockstep(
            _small_ittage, main, force_numpy, warm_trace=warm
        )


class TestVPCLockstep:
    @settings(max_examples=40, deadline=None)
    @given(trace=mixed_traces())
    def test_lockstep_on_mixed_traces(self, trace):
        _assert_lockstep(_small_vpc, trace, force_numpy=False)

    @settings(max_examples=40, deadline=None)
    @given(trace=mixed_traces())
    def test_lockstep_on_mixed_traces_numpy_replay(self, trace):
        _assert_lockstep(_small_vpc, trace, force_numpy=True)

    @pytest.mark.parametrize("force_numpy", [False, True])
    def test_warm_start(self, force_numpy):
        """Resuming with a warm BTB and conditional predictor — the
        virtual-PC iteration depends on both — must stay bit-identical."""
        warm = _random_trace(11, "vpc-warm", 160)
        main = _random_trace(12, "vpc-main", 200)
        _assert_lockstep(_small_vpc, main, force_numpy, warm_trace=warm)


def _lanes():
    """A heterogeneous fused group: identical BLBP twins (groupable),
    BLBP geometry/feature variants, hierarchical IBTB, ITTAGE, VPC."""
    return [
        BLBP(BLBPConfig(table_rows=256, ibtb_sets=64)),
        BLBP(BLBPConfig(table_rows=256, ibtb_sets=64)),
        BLBP(BLBPConfig(table_rows=128, ibtb_sets=64)),
        BLBP(BLBPConfig(table_rows=256, ibtb_sets=32)),
        BLBP(BLBPConfig(table_rows=256, ibtb_sets=64,
                        use_local_history=False)),
        BLBP(BLBPConfig(table_rows=256, ibtb_sets=64,
                        use_selective_update=False)),
        BLBP(BLBPConfig(use_hierarchical_ibtb=True)),
        _small_ittage(),
        _small_vpc(),
    ]


def _assert_fused_matches_solo(seed, count, force_numpy, warm):
    trace = _random_trace(seed, f"fused-{seed}", count)
    fused = _lanes()
    solo = _lanes()
    if warm:
        warm_trace = _random_trace(seed + 1000, f"fused-warm-{seed}",
                                   count // 2)
        for lane, reference in zip(fused, solo):
            simulate(reference, warm_trace)
            lane.load_state(reference.state_dict())
    solo_results = [
        simulate(predictor, trace, collect_per_pc=True)
        for predictor in solo
    ]
    with _replay_path(force_numpy):
        fused_results = simulate_columnar_many(
            fused, trace, collect_per_pc=True
        )
    for slot, (fused_result, solo_result) in enumerate(
        zip(fused_results, solo_results)
    ):
        assert fused_result == solo_result, f"lane {slot}: result diverges"
    for slot, (lane, reference) in enumerate(zip(fused, solo)):
        assert lane.state_hash() == reference.state_hash(), (
            f"lane {slot}: final predictor state diverges"
        )


class TestFusedColumnarMany:
    @pytest.mark.parametrize("force_numpy", [False, True])
    @pytest.mark.parametrize("warm", [False, True])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_heterogeneous_lanes_match_solo(self, seed, warm, force_numpy):
        _assert_fused_matches_solo(seed, 200, force_numpy, warm)

    @pytest.mark.parametrize("force_numpy", [False, True])
    def test_single_lane(self, force_numpy):
        """One lane is the degenerate fused group: no lane-parallel
        core, but the same prepare/replay/finish path."""
        trace = _random_trace(99, "single-lane", 150)
        fused = BLBP(BLBPConfig(table_rows=128, ibtb_sets=32))
        solo = BLBP(BLBPConfig(table_rows=128, ibtb_sets=32))
        expected = simulate(solo, trace, collect_per_pc=True)
        with _replay_path(force_numpy):
            (result,) = simulate_columnar_many(
                [fused], trace, collect_per_pc=True
            )
        assert result == expected
        assert fused.state_hash() == solo.state_hash()

    def test_identical_lanes_form_one_group(self, monkeypatch):
        """Lanes with identical configurations share every precompute
        artifact, so the kernel must hand all of them to the multi-lane
        replay as a single group."""
        group_sizes = []
        original = kernel._replay_blbp_group

        def spy(preps):
            group_sizes.append(len(preps))
            return original(preps)

        monkeypatch.setattr(kernel, "_replay_blbp_group", spy)
        trace = _random_trace(3, "grouped", 200)
        config = lambda: BLBPConfig(table_rows=256, ibtb_sets=64)  # noqa: E731
        fused = [BLBP(config()) for _ in range(3)]
        solo = [BLBP(config()) for _ in range(3)]
        results = simulate_columnar_many(fused, trace)
        expected = [simulate(predictor, trace) for predictor in solo]
        assert results == expected
        for lane, reference in zip(fused, solo):
            assert lane.state_hash() == reference.state_hash()
        assert 3 in group_sizes, (
            f"identical lanes were not grouped: group sizes {group_sizes}"
        )

    def test_empty_predictor_list(self):
        assert simulate_columnar_many([], _random_trace(0, "t", 20)) == []


class TestColumnarSupport:
    def test_supported_exact_types(self):
        for predictor in (BLBP(), _small_ittage(), _small_vpc()):
            ok, reason = columnar_support(predictor)
            assert ok, reason
            assert "kernel" in reason
            assert columnar_supported(predictor)

    def test_subclass_rejected_with_reason(self):
        class Tweaked(BLBP):
            pass

        ok, reason = columnar_support(Tweaked())
        assert not ok
        assert "Tweaked" in reason
        assert "subclasses BLBP" in reason
        assert "scalar" in reason
        assert not columnar_supported(Tweaked())

    def test_unknown_type_rejected_with_reason(self):
        ok, reason = columnar_support(object())
        assert not ok
        assert "no columnar kernel" in reason
        for name in ("BLBP", "ITTAGE", "VPCPredictor"):
            assert name in reason

    def test_simulate_columnar_refuses_unsupported(self):
        class Tweaked(BLBP):
            pass

        trace = _random_trace(0, "refuse", 30)
        with pytest.raises(TypeError, match="subclasses"):
            simulate_columnar(Tweaked(), trace)
        with pytest.raises(TypeError, match="subclasses"):
            simulate_columnar_many([BLBP(), Tweaked()], trace)
