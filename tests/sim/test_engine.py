"""Tests for the simulation engine's accounting discipline."""

from typing import Optional

import pytest

from repro.common.storage import StorageBudget
from repro.predictors.base import IndirectBranchPredictor
from repro.predictors.btb import BranchTargetBuffer
from repro.sim.engine import simulate
from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace


class _Oracle(IndirectBranchPredictor):
    """Predicts whatever it was last trained with per PC (perfect after
    first sighting); also records the calls it receives."""

    name = "oracle"

    def __init__(self):
        self.last = {}
        self.predict_calls = []
        self.train_calls = []
        self.conditional_calls = []
        self.retired_calls = []

    def predict_target(self, pc: int) -> Optional[int]:
        self.predict_calls.append(pc)
        return self.last.get(pc)

    def train(self, pc: int, target: int) -> None:
        self.train_calls.append((pc, target))
        self.last[pc] = target

    def on_conditional(self, pc: int, taken: bool) -> None:
        self.conditional_calls.append((pc, taken))

    def on_retired(self, pc: int, branch_type: int, target: int) -> None:
        self.retired_calls.append((pc, branch_type, target))

    def storage_budget(self) -> StorageBudget:
        return StorageBudget(self.name)


class TestSimulate:
    def test_counts_branch_populations(self, tiny_trace):
        result = simulate(_Oracle(), tiny_trace)
        assert result.conditional_branches == 2
        assert result.indirect_branches == 2
        assert result.return_branches == 2

    def test_indirect_mispredictions_cold_only(self, tiny_trace):
        result = simulate(_Oracle(), tiny_trace)
        # Both indirect branches are seen once -> both cold misses.
        assert result.indirect_mispredictions == 2

    def test_predict_train_pairing(self, tiny_trace):
        oracle = _Oracle()
        simulate(oracle, tiny_trace)
        assert len(oracle.predict_calls) == len(oracle.train_calls) == 2

    def test_conditionals_reach_hook(self, tiny_trace):
        oracle = _Oracle()
        simulate(oracle, tiny_trace)
        assert oracle.conditional_calls == [(0x1000, True), (0x2040, False)]

    def test_non_conditionals_retired(self, tiny_trace):
        oracle = _Oracle()
        simulate(oracle, tiny_trace)
        assert len(oracle.retired_calls) == 6  # everything non-conditional

    def test_ras_predicts_balanced_returns(self, tiny_trace):
        result = simulate(_Oracle(), tiny_trace)
        assert result.return_mispredictions == 0

    def test_total_instructions_matches_trace(self, tiny_trace):
        result = simulate(_Oracle(), tiny_trace)
        assert result.total_instructions == tiny_trace.total_instructions()

    def test_warmup_excludes_early_mispredictions(self, tiny_trace):
        result = simulate(_Oracle(), tiny_trace, warmup_records=len(tiny_trace))
        assert result.indirect_mispredictions == 0
        assert result.indirect_branches == 0

    def test_per_pc_collection(self, tiny_trace):
        result = simulate(_Oracle(), tiny_trace, collect_per_pc=True)
        assert sum(result.mispredictions_by_pc.values()) == 2

    def test_mpki_definition(self):
        # One indirect miss in exactly 2000 instructions -> 0.5 MPKI.
        records = [
            BranchRecord(0x10, BranchType.INDIRECT_JUMP, True, 0x20, 1998),
            BranchRecord(0x30, BranchType.CONDITIONAL, True, 0x40, 0),
        ]
        trace = Trace.from_records("mpki", records)
        result = simulate(_Oracle(), trace)
        assert result.mpki() == pytest.approx(0.5)

    def test_real_predictor_runs(self, vdispatch_trace):
        result = simulate(BranchTargetBuffer(), vdispatch_trace)
        assert result.indirect_branches > 0
        assert 0 <= result.misprediction_rate() <= 1
