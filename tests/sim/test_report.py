"""Tests for the plain-text report rendering."""

from repro.sim.metrics import CampaignResult, SimulationResult
from repro.sim.report import (
    format_breakdown_table,
    format_campaign,
    format_mpki_table,
    format_series,
)


def _campaign():
    campaign = CampaignResult()
    for trace, blbp, ittage in (("a", 1, 3), ("b", 4, 2)):
        for name, misses in (("BLBP", blbp), ("ITTAGE", ittage)):
            campaign.add(
                SimulationResult(
                    trace_name=trace,
                    predictor_name=name,
                    total_instructions=1000,
                    indirect_branches=100,
                    indirect_mispredictions=misses,
                )
            )
    return campaign


class TestFormatMpkiTable:
    def test_contains_all_rows_and_means(self):
        rendered = format_mpki_table(_campaign())
        assert "a" in rendered and "b" in rendered
        assert "MEAN" in rendered
        assert "BLBP" in rendered and "ITTAGE" in rendered

    def test_sort_by_orders_rows(self):
        rendered = format_mpki_table(_campaign(), sort_by="ITTAGE")
        lines = [l for l in rendered.splitlines() if l.startswith(("a ", "b "))]
        assert [l[0] for l in lines] == ["b", "a"]

    def test_max_rows_truncates(self):
        rendered = format_mpki_table(_campaign(), max_rows=1)
        body = [l for l in rendered.splitlines() if l.startswith(("a ", "b "))]
        assert len(body) == 1


class TestFormatCampaign:
    def test_mentions_means(self):
        rendered = format_campaign(_campaign())
        assert "BLBP" in rendered
        assert "2.5" in rendered  # mean of 1 and 4 MPKI


class TestFormatSeries:
    def test_wraps_lines(self):
        rendered = format_series("x", list(range(25)), per_line=10)
        assert len(rendered.splitlines()) == 4  # label + 3 chunks


class TestFormatBreakdownTable:
    def test_renders_cells(self):
        rendered = format_breakdown_table(
            {"row1": {"colA": 1.5, "colB": 2.5}},
            columns=["colA", "colB"],
            title="thing",
        )
        assert "row1" in rendered
        assert "1.5000" in rendered
