"""Tests for the conditional-stream simulation path."""

import pytest

from repro.cond import BLBPConditional, GShare, HashedPerceptron
from repro.sim.engine import simulate_conditional


class TestSimulateConditional:
    def test_counts_only_conditionals(self, tiny_trace):
        result = simulate_conditional(GShare(), tiny_trace)
        assert result.indirect_branches == 2   # the 2 conditionals
        assert result.conditional_branches == 2

    def test_mpki_uses_all_instructions(self, tiny_trace):
        result = simulate_conditional(GShare(), tiny_trace)
        assert result.total_instructions == tiny_trace.total_instructions()

    def test_warmup_excludes_prefix(self, tiny_trace):
        result = simulate_conditional(
            GShare(), tiny_trace, warmup_records=len(tiny_trace)
        )
        assert result.indirect_branches == 0

    @pytest.mark.parametrize("factory", [GShare, HashedPerceptron, BLBPConditional])
    def test_predictors_learn_suite_conditionals(self, factory, vdispatch_trace):
        result = simulate_conditional(factory(), vdispatch_trace)
        # The vdispatch conditional stream is mostly structured; any
        # serious predictor beats 30% miss rate.
        assert result.misprediction_rate() < 0.30

    def test_result_name_is_class_name(self, tiny_trace):
        result = simulate_conditional(GShare(), tiny_trace)
        assert result.predictor_name == "GShare"
