"""The compiled-replay loader: entry points, env override, build races.

The race regression pinned here: a builder whose own compile fails (a
transient error while another process held the toolchain, say) must
re-check whether a concurrent builder already published the
content-addressed library before giving up — a failed compile with a
published library present still resolves, and a failed compile with
nothing published returns the numpy fallback without raising.
"""

from __future__ import annotations

import os
import shutil
import subprocess

import pytest

from repro.sim import native

_ENTRY_POINTS = {
    "blbp_replay",
    "blbp_replay_many",
    "ittage_replay",
    "vpc_replay",
}


def _reset_loader(monkeypatch):
    """A pristine loader state; monkeypatch restores the real one."""
    monkeypatch.setattr(native, "_lib", None)
    monkeypatch.setattr(native, "_attempted", False)
    monkeypatch.setattr(native, "_fns", {})


class TestLoader:
    def test_all_entry_points_available(self):
        if not native.available():
            pytest.skip("no C compiler in this environment")
        assert set(native.loaded_functions()) == _ENTRY_POINTS

    def test_env_override_forces_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_COMPILED", "0")
        for name in _ENTRY_POINTS:
            assert native.load(name) is None
        assert not native.available()

    def test_unknown_entry_point_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_COLUMNAR_COMPILED", raising=False)
        with pytest.raises(ValueError, match="unknown replay core"):
            native.load("nonexistent_replay")


class TestBuildRace:
    def test_failed_compile_finds_concurrently_published_library(
        self, monkeypatch, tmp_path
    ):
        """Our compile fails, but a concurrent builder published the
        library meanwhile: the build must resolve to it, not blacklist
        the compiled path for the whole process."""
        real = native._build()
        if real is None:
            pytest.skip("no C compiler in this environment")
        monkeypatch.delenv("REPRO_COLUMNAR_COMPILED", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        _reset_loader(monkeypatch)
        expected = os.path.join(
            native.cache_dir(), os.path.basename(real)
        )

        def racing_run(cmd, capture_output=True, timeout=None):
            # The "concurrent builder" publishes while we fail.
            os.makedirs(os.path.dirname(expected), exist_ok=True)
            shutil.copy(real, expected)
            return subprocess.CompletedProcess(cmd, 1, b"", b"flaky cc")

        monkeypatch.setattr(native.subprocess, "run", racing_run)
        assert native._build() == expected
        assert native.load("blbp_replay") is not None
        assert native.load("blbp_replay_many") is not None

    def test_failed_compile_without_publish_falls_back(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.delenv("REPRO_COLUMNAR_COMPILED", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        _reset_loader(monkeypatch)

        def failing_run(cmd, capture_output=True, timeout=None):
            return subprocess.CompletedProcess(cmd, 1, b"", b"boom")

        monkeypatch.setattr(native.subprocess, "run", failing_run)
        assert native._build() is None
        assert native.load() is None
        assert not native.available()
