"""Unit tests for the §3.7 selection-latency model."""

import pytest

from repro.core import BLBP
from repro.sim.latency import (
    LatencyProfile,
    format_latency_profile,
    profile_selection_latency,
)
from repro.workloads import SwitchCaseSpec, VirtualDispatchSpec


class TestLatencyProfile:
    def _profile(self):
        return LatencyProfile(
            trace_name="t",
            similarities_per_cycle=5,
            cycles_histogram={1: 60, 2: 30, 4: 10},
        )

    def test_fraction_within(self):
        profile = self._profile()
        assert profile.fraction_within(1) == pytest.approx(0.6)
        assert profile.fraction_within(2) == pytest.approx(0.9)
        assert profile.fraction_within(4) == pytest.approx(1.0)

    def test_mean_cycles(self):
        profile = self._profile()
        assert profile.mean_cycles() == pytest.approx(
            (60 * 1 + 30 * 2 + 10 * 4) / 100
        )

    def test_merge_pools_histograms(self):
        a = self._profile()
        b = LatencyProfile("u", 5, {1: 40, 3: 10})
        a.merge(b)
        assert a.cycles_histogram[1] == 100
        assert a.cycles_histogram[3] == 10

    def test_merge_rejects_mismatched_throughput(self):
        with pytest.raises(ValueError):
            self._profile().merge(LatencyProfile("u", 3, {1: 1}))

    def test_empty_profile(self):
        profile = LatencyProfile("t", 5, {})
        assert profile.fraction_within(1) == 0.0
        assert profile.mean_cycles() == 0.0


class TestProfileSelectionLatency:
    def test_monomorphic_workload_is_single_cycle(self):
        trace = VirtualDispatchSpec(
            name="mono", seed=91, num_records=4000, num_types=1,
        ).generate()
        profile = profile_selection_latency(BLBP(), trace)
        assert profile.fraction_within(1) == pytest.approx(1.0)

    def test_megamorphic_workload_needs_more_cycles(self):
        trace = SwitchCaseSpec(
            name="mega", seed=92, num_records=6000, num_cases=24,
            determinism=0.9,
        ).generate()
        profile = profile_selection_latency(BLBP(), trace)
        assert profile.fraction_within(1) < 0.9
        # 24 candidates at 5/cycle need up to ceil(24/5) = 5 cycles.
        assert max(profile.cycles_histogram) <= 5

    def test_throughput_scales_cycles(self):
        trace = SwitchCaseSpec(
            name="mega", seed=92, num_records=6000, num_cases=24,
            determinism=0.9,
        ).generate()
        slow = profile_selection_latency(BLBP(), trace, similarities_per_cycle=1)
        fast = profile_selection_latency(BLBP(), trace, similarities_per_cycle=8)
        assert slow.mean_cycles() > fast.mean_cycles()

    def test_bad_throughput_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            profile_selection_latency(BLBP(), tiny_trace,
                                      similarities_per_cycle=0)

    def test_format(self):
        profile = LatencyProfile("t", 5, {1: 10})
        rendered = format_latency_profile(profile)
        assert "similarities/cycle" in rendered
