"""Checkpointed simulation: equivalence, atomicity, and tolerance.

The contract under test: a simulation that checkpoints, dies, and
resumes produces results per-branch identical to one that never
stopped — and a checkpoint file is an optimization, never a source of
truth (missing/corrupt files restart the trace instead of failing).
"""

import json
import os

import pytest

from repro.core import BLBP
from repro.predictors import ITTAGE
from repro.sim.checkpoint import (
    DEFAULT_CHECKPOINT_INTERVAL,
    SimulationCheckpoint,
    discard_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.engine import simulate
from repro.workloads.suite import suite88_specs

_SCALE = 0.02  # 2000-record traces: fast, but several checkpoint spans


@pytest.fixture(scope="module")
def trace():
    return suite88_specs(_SCALE)[0].generate()


def _collect(predictor, trace, every=500):
    """Run with an in-memory checkpoint sink; return (result, snapshots)."""
    grabbed = []
    result = simulate(
        predictor, trace, checkpoint_every=every, on_checkpoint=grabbed.append
    )
    return result, grabbed


class TestCheckpointedRunEquivalence:
    def test_checkpointing_does_not_change_results(self, trace):
        plain = simulate(BLBP(), trace)
        checkpointed, grabbed = _collect(BLBP(), trace)
        assert grabbed, "expected mid-trace checkpoints"
        assert (
            checkpointed.indirect_mispredictions
            == plain.indirect_mispredictions
        )
        assert checkpointed.mpki() == pytest.approx(plain.mpki())

    def test_end_state_identical_with_and_without_checkpointing(self, trace):
        a, b = BLBP(), BLBP()
        simulate(a, trace)
        _collect(b, trace)
        assert a.state_hash() == b.state_hash()

    def test_resume_from_every_checkpoint_matches(self, trace):
        plain = simulate(BLBP(), trace)
        end_hash_predictor = BLBP()
        _, grabbed = _collect(end_hash_predictor, trace)
        for checkpoint in grabbed:
            fresh = BLBP()
            # Round-trip through JSON: resume must survive a process hop.
            revived = SimulationCheckpoint.from_state(
                json.loads(json.dumps(checkpoint.state_dict()))
            )
            resumed = simulate(fresh, trace, resume_from=revived)
            assert (
                resumed.indirect_mispredictions
                == plain.indirect_mispredictions
            ), f"diverged resuming from cursor {checkpoint.cursor}"
            assert fresh.state_hash() == end_hash_predictor.state_hash()

    def test_resume_preserves_warmup_accounting(self, trace):
        plain = simulate(BLBP(), trace, warmup_records=700)
        _, grabbed = _collect(BLBP(), trace)
        # Redo with warmup: grab a checkpoint from inside the warmup zone.
        grabbed = []
        simulate(
            BLBP(), trace, warmup_records=700,
            checkpoint_every=500, on_checkpoint=grabbed.append,
        )
        early = grabbed[0]
        assert early.skip > 0, "checkpoint should land inside warmup"
        resumed = simulate(BLBP(), trace, warmup_records=700, resume_from=early)
        assert resumed.indirect_branches == plain.indirect_branches
        assert (
            resumed.indirect_mispredictions == plain.indirect_mispredictions
        )

    def test_ittage_resume_matches(self, trace):
        plain = simulate(ITTAGE(), trace)
        _, grabbed = _collect(ITTAGE(), trace)
        revived = SimulationCheckpoint.from_state(grabbed[-1].state_dict())
        resumed = simulate(ITTAGE(), trace, resume_from=revived)
        assert (
            resumed.indirect_mispredictions == plain.indirect_mispredictions
        )


class TestResumeValidation:
    def test_wrong_trace_rejected(self, trace):
        _, grabbed = _collect(BLBP(), trace)
        other = suite88_specs(_SCALE)[1].generate()
        with pytest.raises(ValueError, match="trace"):
            simulate(BLBP(), other, resume_from=grabbed[0])

    def test_wrong_predictor_rejected(self, trace):
        _, grabbed = _collect(BLBP(), trace)
        with pytest.raises(ValueError, match="predictor"):
            simulate(ITTAGE(), trace, resume_from=grabbed[0])

    def test_negative_interval_rejected(self, trace):
        with pytest.raises(ValueError, match=">= 0"):
            simulate(BLBP(), trace, checkpoint_every=-1)

    def test_interval_without_sink_rejected(self, trace):
        with pytest.raises(ValueError, match="checkpoint_path"):
            simulate(BLBP(), trace, checkpoint_every=100)


class TestCheckpointFiles:
    def test_save_load_roundtrip(self, trace, tmp_path):
        _, grabbed = _collect(BLBP(), trace)
        path = tmp_path / "cell.ckpt.json"
        save_checkpoint(grabbed[0], path)
        loaded = load_checkpoint(path)
        assert loaded is not None
        assert loaded.checkpoint_hash() == grabbed[0].checkpoint_hash()

    def test_missing_file_loads_as_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.json") is None

    def test_corrupt_file_loads_as_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        assert load_checkpoint(path) is None

    def test_truncated_file_loads_as_none(self, trace, tmp_path):
        _, grabbed = _collect(BLBP(), trace)
        path = tmp_path / "cell.ckpt.json"
        save_checkpoint(grabbed[0], path)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        assert load_checkpoint(path) is None

    def test_save_leaves_no_temp_droppings(self, trace, tmp_path):
        _, grabbed = _collect(BLBP(), trace)
        path = tmp_path / "cell.ckpt.json"
        for checkpoint in grabbed:
            save_checkpoint(checkpoint, path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["cell.ckpt.json"]

    def test_discard_is_idempotent(self, tmp_path):
        path = tmp_path / "cell.ckpt.json"
        path.write_text("{}")
        discard_checkpoint(path)
        discard_checkpoint(path)  # second call: file already gone
        assert not path.exists()

    def test_engine_writes_and_file_resumes(self, trace, tmp_path):
        path = tmp_path / "cell.ckpt.json"
        plain = simulate(BLBP(), trace)
        simulate(BLBP(), trace, checkpoint_every=800, checkpoint_path=str(path))
        # The last mid-trace checkpoint stays on disk (the engine does
        # not delete it; the exec layer owns the lifecycle).
        loaded = load_checkpoint(path)
        assert loaded is not None and 0 < loaded.cursor < len(trace)
        resumed = simulate(BLBP(), trace, resume_from=loaded)
        assert (
            resumed.indirect_mispredictions == plain.indirect_mispredictions
        )


def test_default_interval_is_sane():
    assert DEFAULT_CHECKPOINT_INTERVAL >= 10_000
