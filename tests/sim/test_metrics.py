"""Unit tests for simulation metrics and campaign containers."""

import pytest

from repro.sim.metrics import CampaignResult, SimulationResult


def _result(trace, predictor, instructions, mispredictions, indirect=100):
    return SimulationResult(
        trace_name=trace,
        predictor_name=predictor,
        total_instructions=instructions,
        indirect_branches=indirect,
        indirect_mispredictions=mispredictions,
    )


class TestSimulationResult:
    def test_mpki(self):
        result = _result("t", "p", 1_000_000, 500)
        assert result.mpki() == pytest.approx(0.5)

    def test_mpki_empty_trace(self):
        assert _result("t", "p", 0, 0).mpki() == 0.0

    def test_misprediction_rate(self):
        result = _result("t", "p", 1000, 25, indirect=100)
        assert result.misprediction_rate() == pytest.approx(0.25)

    def test_return_mpki(self):
        result = SimulationResult(
            trace_name="t",
            predictor_name="p",
            total_instructions=10_000,
            indirect_branches=0,
            indirect_mispredictions=0,
            return_branches=50,
            return_mispredictions=5,
        )
        assert result.return_mpki() == pytest.approx(0.5)


class TestCampaignResult:
    def _campaign(self):
        campaign = CampaignResult()
        campaign.add(_result("a", "BLBP", 1000, 1))
        campaign.add(_result("a", "ITTAGE", 1000, 3))
        campaign.add(_result("b", "BLBP", 1000, 4))
        campaign.add(_result("b", "ITTAGE", 1000, 2))
        return campaign

    def test_predictors_and_traces(self):
        campaign = self._campaign()
        assert campaign.predictors() == ["BLBP", "ITTAGE"]
        assert campaign.traces() == ["a", "b"]

    def test_mean_mpki(self):
        campaign = self._campaign()
        assert campaign.mean_mpki("BLBP") == pytest.approx(2.5)

    def test_mean_of_unknown_predictor_raises(self):
        with pytest.raises(KeyError):
            self._campaign().mean_mpki("nope")

    def test_sorted_by(self):
        campaign = self._campaign()
        assert campaign.traces_sorted_by("BLBP") == ["a", "b"]
        assert campaign.traces_sorted_by("ITTAGE") == ["b", "a"]

    def test_series_follows_order(self):
        campaign = self._campaign()
        order = campaign.traces_sorted_by("BLBP")
        series = campaign.mpki_series("ITTAGE", order)
        assert series == [pytest.approx(3.0), pytest.approx(2.0)]
