"""Unit tests for the return-address stack."""

from repro.sim.ras import ReturnAddressStack


class TestReturnAddressStack:
    def test_lifo_order(self):
        ras = ReturnAddressStack()
        ras.push(0x1004)
        ras.push(0x2004)
        assert ras.predict() == 0x2004
        assert ras.pop() == 0x2004
        assert ras.predict() == 0x1004

    def test_empty_predicts_none(self):
        ras = ReturnAddressStack()
        assert ras.predict() is None
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(0x1)
        ras.push(0x2)
        ras.push(0x3)
        assert ras.overflows == 1
        assert ras.pop() == 0x3
        assert ras.pop() == 0x2
        assert ras.pop() is None

    def test_len(self):
        ras = ReturnAddressStack()
        assert len(ras) == 0
        ras.push(0x1)
        assert len(ras) == 1

    def test_perfect_on_balanced_nesting(self):
        ras = ReturnAddressStack(depth=32)
        calls = [0x1000, 0x2000, 0x3000]
        for pc in calls:
            ras.push(pc + 4)
        for pc in reversed(calls):
            assert ras.predict() == pc + 4
            ras.pop()

    def test_storage_budget(self):
        assert ReturnAddressStack(depth=32).storage_budget().total_bits() > 0
