"""Tests for front-end co-simulation and the consolidated BLBP front-end."""

import pytest

from repro.core.frontend import ConsolidatedBLBPFrontend
from repro.predictors import COTTAGE, BranchTargetBuffer, VPCPredictor
from repro.sim.frontend import FrontendResult, simulate_frontend


class TestSimulateFrontend:
    @pytest.mark.parametrize(
        "factory", [COTTAGE, VPCPredictor, ConsolidatedBLBPFrontend],
        ids=["COTTAGE", "VPC", "BLBP-frontend"],
    )
    def test_runs_and_accounts(self, factory, vdispatch_trace):
        result = simulate_frontend(factory(), vdispatch_trace)
        assert result.conditional_branches > 0
        assert 0.0 <= result.conditional_accuracy() <= 1.0
        assert result.total_mpki() >= result.indirect_mpki()

    def test_total_is_sum_of_parts(self, vdispatch_trace):
        result = simulate_frontend(COTTAGE(), vdispatch_trace)
        assert result.total_mpki() == pytest.approx(
            result.indirect_mpki()
            + result.conditional_mpki()
            + result.return_mpki()
        )

    def test_rejects_non_frontend(self, vdispatch_trace):
        with pytest.raises(TypeError):
            simulate_frontend(BranchTargetBuffer(), vdispatch_trace)

    def test_empty_trace_result(self):
        result = FrontendResult(
            trace_name="t", frontend_name="f", total_instructions=0,
            indirect_mispredictions=0, conditional_branches=0,
            conditional_mispredictions=0, return_mispredictions=0,
        )
        assert result.total_mpki() == 0.0
        assert result.conditional_accuracy() == 1.0


class TestConsolidatedBLBPFrontend:
    def test_conditional_side_learns(self, vdispatch_trace):
        result = simulate_frontend(
            ConsolidatedBLBPFrontend(), vdispatch_trace
        )
        assert result.conditional_accuracy() > 0.8

    def test_indirect_side_learns(self, vdispatch_trace):
        from repro.sim import simulate

        frontend = ConsolidatedBLBPFrontend()
        result = simulate_frontend(frontend, vdispatch_trace)
        btb = simulate(BranchTargetBuffer(), vdispatch_trace)
        assert result.indirect_mpki() < btb.mpki()

    def test_shared_config(self):
        frontend = ConsolidatedBLBPFrontend()
        assert frontend.indirect.config is frontend.config
        assert frontend.conditional.config is frontend.config

    def test_budget_has_both_sides(self):
        items = [
            item
            for item, _ in ConsolidatedBLBPFrontend().storage_budget().items
        ]
        assert any(item.startswith("targets:") for item in items)
        assert any(item.startswith("directions:") for item in items)
