"""Tests for the engine's event-ordering discipline.

The §4.2 simulation contract fixes a precise order of operations per
branch; predictors depend on it (e.g. BLBP must see predict before the
outcome enters any history).  A scripted predictor records the exact
call sequence and these tests pin it down.
"""

from typing import Optional

from repro.common.storage import StorageBudget
from repro.predictors.base import IndirectBranchPredictor
from repro.sim.engine import simulate
from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace


class _Scribe(IndirectBranchPredictor):
    name = "scribe"

    def __init__(self):
        self.log = []

    def predict_target(self, pc: int) -> Optional[int]:
        self.log.append(("predict", pc))
        return None

    def train(self, pc: int, target: int) -> None:
        self.log.append(("train", pc, target))

    def on_conditional(self, pc: int, taken: bool) -> None:
        self.log.append(("cond", pc, taken))

    def on_retired(self, pc: int, branch_type: int, target: int) -> None:
        self.log.append(("retired", pc, branch_type))

    def storage_budget(self) -> StorageBudget:
        return StorageBudget(self.name)


def _trace(records):
    return Trace.from_records("discipline", records)


class TestEventOrdering:
    def test_predict_precedes_train_precedes_retire(self):
        trace = _trace([
            BranchRecord(0x10, BranchType.INDIRECT_JUMP, True, 0x100, 0),
        ])
        scribe = _Scribe()
        simulate(scribe, trace)
        assert scribe.log == [
            ("predict", 0x10),
            ("train", 0x10, 0x100),
            ("retired", 0x10, int(BranchType.INDIRECT_JUMP)),
        ]

    def test_program_order_preserved(self):
        trace = _trace([
            BranchRecord(0x10, BranchType.CONDITIONAL, True, 0x20, 0),
            BranchRecord(0x20, BranchType.INDIRECT_CALL, True, 0x100, 0),
            BranchRecord(0x180, BranchType.RETURN, True, 0x24, 0),
            BranchRecord(0x24, BranchType.CONDITIONAL, False, 0x28, 0),
        ])
        scribe = _Scribe()
        simulate(scribe, trace)
        kinds = [entry[0] for entry in scribe.log]
        assert kinds == ["cond", "predict", "train", "retired", "retired",
                        "cond"]

    def test_conditionals_never_reach_indirect_hooks(self):
        trace = _trace([
            BranchRecord(0x10, BranchType.CONDITIONAL, True, 0x20, 0),
        ] * 5)
        scribe = _Scribe()
        simulate(scribe, trace)
        assert all(entry[0] == "cond" for entry in scribe.log)

    def test_direct_branches_only_retire(self):
        trace = _trace([
            BranchRecord(0x10, BranchType.DIRECT_JUMP, True, 0x20, 0),
            BranchRecord(0x20, BranchType.DIRECT_CALL, True, 0x100, 0),
        ])
        scribe = _Scribe()
        simulate(scribe, trace)
        assert [entry[0] for entry in scribe.log] == ["retired", "retired"]

    def test_returns_do_not_touch_indirect_predictor(self):
        trace = _trace([
            BranchRecord(0x10, BranchType.DIRECT_CALL, True, 0x100, 0),
            BranchRecord(0x180, BranchType.RETURN, True, 0x14, 0),
        ])
        scribe = _Scribe()
        result = simulate(scribe, trace)
        assert ("predict", 0x180) not in scribe.log
        assert result.indirect_branches == 0
        assert result.return_branches == 1
