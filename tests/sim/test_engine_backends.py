"""Backend dispatch: columnar fallback policy and ``columnar-strict``.

The engine's ``backend`` parameter has three values with distinct
contracts: ``"columnar"`` silently covers what the kernels support,
warns (``RuntimeWarning``) and falls back to scalar for unsupported
predictors, and falls back silently for engine features the kernels do
not model (checkpointing, resume, profiling counters — documented
engine behavior, not an anomaly worth a warning); ``"columnar-strict"``
never falls back, raising :class:`ColumnarUnsupportedError` with the
:func:`repro.sim.kernel.columnar_support` reason or the blocking
feature's name.  Either way the numbers are bit-identical to scalar.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.core import BLBP
from repro.predictors.ittage import ITTAGE
from repro.sim.counters import SimCounters
from repro.sim.engine import (
    BACKENDS,
    ColumnarUnsupportedError,
    simulate,
    simulate_many,
)
from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace


class TracingBLBP(BLBP):
    """A subclass the exact-type kernels must refuse."""


def _trace(seed: int = 0, count: int = 200) -> Trace:
    rng = random.Random(seed)
    pcs = [0x4000, 0x4008, 0x4040, 0x5000]
    targets = [0x10_0000, 0x10_0040, 0x11_0000]
    records = []
    for _ in range(count):
        if rng.random() < 0.4:
            records.append(
                BranchRecord(0x900, BranchType.CONDITIONAL,
                             rng.random() < 0.5, 0x910, inst_gap=1)
            )
        else:
            records.append(
                BranchRecord(rng.choice(pcs), BranchType.INDIRECT_JUMP,
                             True, rng.choice(targets), inst_gap=2)
            )
    return Trace.from_records(f"backend-{seed}", records)


_TRACE = _trace()


class TestStrictBackend:
    def test_unsupported_predictor_raises_with_reason(self):
        with pytest.raises(ColumnarUnsupportedError, match="subclasses BLBP"):
            simulate(TracingBLBP(), _TRACE, backend="columnar-strict")

    def test_checkpointing_blocker_raises(self):
        with pytest.raises(ColumnarUnsupportedError, match="checkpointing"):
            simulate(
                BLBP(), _TRACE, backend="columnar-strict",
                checkpoint_every=50, on_checkpoint=lambda snapshot: None,
            )

    def test_counters_blocker_raises(self):
        with pytest.raises(ColumnarUnsupportedError, match="counters"):
            simulate(
                BLBP(), _TRACE, backend="columnar-strict",
                counters=SimCounters(),
            )

    def test_supported_predictor_matches_scalar(self):
        strict_predictor = BLBP()
        scalar_predictor = BLBP()
        strict = simulate(strict_predictor, _TRACE,
                          backend="columnar-strict")
        scalar = simulate(scalar_predictor, _TRACE)
        assert strict == scalar
        assert strict_predictor.state_hash() == scalar_predictor.state_hash()

    def test_simulate_many_unsupported_raises(self):
        with pytest.raises(ColumnarUnsupportedError, match="subclasses"):
            simulate_many(
                [BLBP(), TracingBLBP()], _TRACE, backend="columnar-strict"
            )

    def test_simulate_many_checkpointing_raises(self, tmp_path):
        with pytest.raises(ColumnarUnsupportedError, match="checkpointing"):
            simulate_many(
                [BLBP()], _TRACE, backend="columnar-strict",
                checkpoint_every=50,
                checkpoint_paths=[str(tmp_path / "cell.ckpt")],
            )


class TestColumnarFallback:
    def test_unsupported_predictor_warns_and_matches_scalar(self):
        columnar_predictor = TracingBLBP()
        scalar_predictor = TracingBLBP()
        with pytest.warns(RuntimeWarning, match="falling back to scalar"):
            columnar = simulate(
                columnar_predictor, _TRACE, backend="columnar"
            )
        scalar = simulate(scalar_predictor, _TRACE)
        assert columnar == scalar
        assert (
            columnar_predictor.state_hash() == scalar_predictor.state_hash()
        )

    def test_feature_fallback_is_silent(self):
        """Checkpointing under ``backend="columnar"`` runs scalar (the
        kernels cannot snapshot mid-trace) without any warning — the
        fallback is documented behavior, not an anomaly."""
        grabbed = []
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = simulate(
                BLBP(), _TRACE, backend="columnar",
                checkpoint_every=64, on_checkpoint=grabbed.append,
            )
        assert grabbed, "checkpoints were not taken on the fallback path"
        assert result == simulate(BLBP(), _TRACE)

    def test_simulate_many_mixed_lanes_merge(self):
        """Supported lanes run columnar, the subclass runs through the
        fused scalar loop (with one aggregated warning); the merged
        results and final states are indistinguishable from all-scalar."""
        fused = [BLBP(), TracingBLBP(), ITTAGE()]
        solo = [BLBP(), TracingBLBP(), ITTAGE()]
        with pytest.warns(RuntimeWarning, match="fused scalar"):
            results = simulate_many(fused, _TRACE, backend="columnar")
        expected = [simulate(predictor, _TRACE) for predictor in solo]
        assert results == expected
        for slot, (lane, reference) in enumerate(zip(fused, solo)):
            assert lane.state_hash() == reference.state_hash(), (
                f"lane {slot}: final state diverges"
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            simulate(BLBP(), _TRACE, backend="simd")
        with pytest.raises(ValueError, match="unknown backend"):
            simulate_many([BLBP()], _TRACE, backend="simd")

    def test_backend_roster(self):
        assert BACKENDS == ("scalar", "columnar", "columnar-strict")
