"""Tests for SimPoint-style sampled simulation."""

import pytest

from repro.predictors import ITTAGE, BranchTargetBuffer
from repro.sim import simulate, simulate_sampled
from repro.trace.sampling import simpoint_plan


class TestSampledEstimate:
    def test_degenerate_plan_equals_full_mpki(self, vdispatch_trace):
        # One interval spanning the whole trace: the "sampled" run *is*
        # the full run and the estimate must match exactly.
        plan = simpoint_plan(vdispatch_trace, 10**6)
        full = simulate(BranchTargetBuffer(), vdispatch_trace)
        sampled = simulate_sampled(
            BranchTargetBuffer, vdispatch_trace, plan=plan
        )
        assert sampled.estimated_mpki == pytest.approx(full.mpki())
        assert sampled.replayed_records == len(vdispatch_trace)
        assert sampled.warm_checkpoint_hits == 0

    def test_estimate_tracks_full_mpki(self, vdispatch_trace):
        # BTB misprediction rate is stationary (no long learning
        # transient), which is the regime the SimPoint estimator
        # targets; see docs/ingestion.md for the accuracy caveats.
        full = simulate(BranchTargetBuffer(), vdispatch_trace)
        sampled = simulate_sampled(
            BranchTargetBuffer, vdispatch_trace,
            interval_records=1000, max_regions=4,
        )
        assert full.mpki() > 0
        relative_error = abs(
            sampled.estimated_mpki - full.mpki()
        ) / full.mpki()
        assert relative_error < 0.10

    def test_learning_predictor_estimates_steady_state(
        self, vdispatch_trace
    ):
        # A learning predictor's full-trace MPKI on a short trace is
        # dominated by its cold-start transient; the sampled estimate
        # reports the (lower) steady-state rate.  Both are small here —
        # the estimator stays within a tight absolute band even where
        # the relative error is meaningless.
        full = simulate(ITTAGE(), vdispatch_trace)
        sampled = simulate_sampled(
            ITTAGE, vdispatch_trace, interval_records=500, max_regions=4
        )
        assert sampled.estimated_mpki <= full.mpki()
        assert abs(sampled.estimated_mpki - full.mpki()) < 1.0

    def test_result_bookkeeping(self, vdispatch_trace):
        plan = simpoint_plan(vdispatch_trace, 500, max_regions=3)
        result = simulate_sampled(
            BranchTargetBuffer, vdispatch_trace, plan=plan
        )
        assert result.trace_name == vdispatch_trace.name
        assert result.predictor_name == BranchTargetBuffer().name
        assert result.full_records == len(vdispatch_trace)
        assert result.replayed_records == plan.replayed_records
        assert len(result.region_results) == len(plan.regions)
        assert len(result.region_mpki) == len(plan.regions)
        assert result.record_reduction == pytest.approx(
            len(vdispatch_trace) / plan.replayed_records
        )

    def test_estimate_is_weighted_region_combination(self, vdispatch_trace):
        plan = simpoint_plan(vdispatch_trace, 500, max_regions=3)
        result = simulate_sampled(
            BranchTargetBuffer, vdispatch_trace, plan=plan
        )
        combined = sum(
            region.weight * mpki
            for region, mpki in zip(plan.regions, result.region_mpki)
        )
        assert result.estimated_mpki == pytest.approx(combined)

    def test_deterministic(self, vdispatch_trace):
        first = simulate_sampled(
            ITTAGE, vdispatch_trace, interval_records=500, max_regions=3
        )
        second = simulate_sampled(
            ITTAGE, vdispatch_trace, interval_records=500, max_regions=3
        )
        assert first.estimated_mpki == second.estimated_mpki
        assert first.region_mpki == second.region_mpki

    def test_backends_agree(self, vdispatch_trace):
        scalar = simulate_sampled(
            ITTAGE, vdispatch_trace, interval_records=500, max_regions=3,
            backend="scalar",
        )
        columnar = simulate_sampled(
            ITTAGE, vdispatch_trace, interval_records=500, max_regions=3,
            backend="columnar",
        )
        assert scalar.estimated_mpki == columnar.estimated_mpki


class TestValidation:
    def test_plan_for_other_trace_rejected(
        self, vdispatch_trace, tiny_trace
    ):
        plan = simpoint_plan(tiny_trace, 4)
        with pytest.raises(ValueError, match="plan is for"):
            simulate_sampled(BranchTargetBuffer, vdispatch_trace, plan=plan)

    def test_non_plan_rejected(self, vdispatch_trace):
        with pytest.raises(TypeError, match="SamplingPlan"):
            simulate_sampled(
                BranchTargetBuffer, vdispatch_trace, plan="whole thing"
            )

    def test_unknown_backend_rejected(self, vdispatch_trace):
        with pytest.raises(ValueError, match="backend"):
            simulate_sampled(
                BranchTargetBuffer, vdispatch_trace, backend="quantum"
            )


class TestWarmupCheckpoints:
    def test_second_run_restores_warm_state(self, vdispatch_trace, tmp_path):
        kwargs = dict(
            interval_records=500, max_regions=3, warmup_intervals=1,
            checkpoint_dir=tmp_path,
        )
        cold = simulate_sampled(ITTAGE, vdispatch_trace, **kwargs)
        assert cold.warm_checkpoint_hits == 0
        warm = simulate_sampled(ITTAGE, vdispatch_trace, **kwargs)
        warmed_regions = sum(
            1 for r in simpoint_plan(
                vdispatch_trace, 500, max_regions=3
            ).regions if r.warmup
        )
        assert warm.warm_checkpoint_hits == warmed_regions
        # Resume is per-branch identical, so the estimate is too.
        assert warm.estimated_mpki == cold.estimated_mpki
        assert warm.region_mpki == cold.region_mpki

    def test_checkpoints_keyed_on_predictor_config(
        self, vdispatch_trace, tmp_path
    ):
        kwargs = dict(
            interval_records=500, max_regions=3, checkpoint_dir=tmp_path,
        )
        simulate_sampled(ITTAGE, vdispatch_trace, **kwargs)
        # A different predictor must not hit ITTAGE's warm checkpoints.
        other = simulate_sampled(BranchTargetBuffer, vdispatch_trace, **kwargs)
        assert other.warm_checkpoint_hits == 0

    def test_no_warmup_writes_no_checkpoints(self, vdispatch_trace, tmp_path):
        simulate_sampled(
            BranchTargetBuffer, vdispatch_trace, interval_records=500,
            max_regions=3, warmup_intervals=0, checkpoint_dir=tmp_path,
        )
        assert list(tmp_path.glob("*.ckpt.json")) == []
