"""Unit and integration tests for hot-path simulation counters."""

import pytest

from repro.core import BLBP
from repro.sim import SimCounters, aggregate_profiles, format_counters
from repro.sim.engine import simulate
from repro.sim.runner import run_campaign
from repro.workloads import SwitchCaseSpec


def _trace(records=1200, seed=7):
    return SwitchCaseSpec(
        name="counters-trace", seed=seed, num_records=records
    ).generate()


class TestSimCounters:
    def test_defaults_zero(self):
        counters = SimCounters()
        assert counters.predictions == 0
        assert counters.elapsed_seconds == 0.0
        assert counters.throughput() == 0.0

    def test_merge_adds_fieldwise(self):
        a = SimCounters(predictions=3, fold_updates=10, predict_seconds=0.5)
        b = SimCounters(predictions=4, trained_bits=2, predict_seconds=0.25)
        a.merge(b)
        assert a.predictions == 7
        assert a.fold_updates == 10
        assert a.trained_bits == 2
        assert a.predict_seconds == pytest.approx(0.75)

    def test_dict_round_trip(self):
        counters = SimCounters(
            predictions=5, ibtb_probes=9, records=100, elapsed_seconds=2.0
        )
        clone = SimCounters.from_dict(counters.as_dict())
        assert clone == counters

    def test_from_dict_ignores_unknown_keys(self):
        counters = SimCounters.from_dict({"predictions": 2, "bogus": 99})
        assert counters.predictions == 2

    def test_throughput(self):
        counters = SimCounters(records=500, elapsed_seconds=2.0)
        assert counters.throughput() == pytest.approx(250.0)

    def test_harvest_from_blbp(self):
        predictor = BLBP()
        predictor.on_conditional(0x500, True)
        predictor.predict_target(0x1000)
        predictor.train(0x1000, 0x40_0000)
        counters = SimCounters()
        counters.harvest(predictor)
        assert counters.predictions >= 1
        assert counters.ibtb_probes >= 1

    def test_harvest_without_hook_is_noop(self):
        class Bare:
            pass

        counters = SimCounters(predictions=1)
        counters.harvest(Bare())
        assert counters.predictions == 1

    def test_aggregate_profiles_skips_none(self):
        total = aggregate_profiles(
            [{"predictions": 2}, None, {"predictions": 3, "records": 10}]
        )
        assert total.predictions == 5
        assert total.records == 10

    def test_format_counters_mentions_every_number(self):
        text = format_counters(
            SimCounters(predictions=1234, records=10, elapsed_seconds=0.5)
        )
        assert "1,234" in text
        assert "records/s" in text


class TestEngineProfiling:
    def test_unprofiled_result_has_no_profile(self):
        result = simulate(BLBP(), _trace())
        assert result.profile is None

    def test_profiled_result_and_counters(self):
        counters = SimCounters()
        trace = _trace()
        result = simulate(BLBP(), trace, counters=counters)
        assert result.profile is not None
        assert counters.records == len(trace)
        assert counters.predictions == result.indirect_branches
        assert counters.conditionals == result.conditional_branches
        assert counters.fold_updates > 0
        assert counters.elapsed_seconds > 0.0
        assert counters.predict_seconds > 0.0
        assert counters.train_seconds > 0.0
        # The result's profile holds this cell's numbers exactly.
        assert result.profile == counters.as_dict()

    def test_counters_accumulate_across_runs(self):
        counters = SimCounters()
        trace = _trace()
        simulate(BLBP(), trace, counters=counters)
        simulate(BLBP(), trace, counters=counters)
        assert counters.records == 2 * len(trace)

    def test_profiling_does_not_change_results(self):
        trace = _trace()
        plain = simulate(BLBP(), trace)
        profiled = simulate(BLBP(), trace, counters=SimCounters())
        assert (
            profiled.indirect_mispredictions == plain.indirect_mispredictions
        )
        assert profiled.indirect_branches == plain.indirect_branches


class TestRunnerProfiling:
    def test_campaign_threads_counters_through_cells(self):
        counters = SimCounters()
        traces = [_trace(seed=1), _trace(seed=2)]
        traces[1].name = "counters-trace-2"
        campaign = run_campaign(
            traces, {"BLBP": BLBP}, counters=counters
        )
        total_records = sum(len(trace) for trace in traces)
        assert counters.records == total_records
        for per_trace in campaign.results.values():
            for result in per_trace.values():
                assert result.profile is not None
