"""Property tests for the columnar kernel's ordering barriers.

The chunked replay may only batch branches whose bank rows do not
collide; the traces hypothesis generates here are engineered to make
that hard — tiny PC pools produce same-PC back-to-back indirect
branches whose weight reads depend on the immediately preceding
branch's training, so any barrier placed too late (or a compiled-core
divergence from the scalar observe/train semantics) shows up as a
per-branch prediction mismatch within a few records.

Both replay paths run: the compiled core when a C compiler is
available, and the numpy chunked fallback (forced via
``REPRO_COLUMNAR_COMPILED=0``, which :func:`repro.sim.native.load`
checks per call).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BLBP
from repro.sim.kernel import simulate_columnar
from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace

_COND = int(BranchType.CONDITIONAL)
_INDIRECT = (int(BranchType.INDIRECT_JUMP), int(BranchType.INDIRECT_CALL))

#: Deliberately tiny pools: repeated PCs mean consecutive branches hit
#: the same weight rows, exercising the update barriers.
_PCS = [0x4000, 0x4000, 0x4040, 0x5000]
_TARGETS = [0x10_0000, 0x10_0040, 0x10_0080, 0x11_0000]


@st.composite
def dependent_traces(draw):
    """Traces dominated by same-PC back-to-back indirect branches."""
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["ind", "ind", "ind", "cond"]),
                st.integers(0, len(_PCS) - 1),
                st.integers(0, len(_TARGETS) - 1),
                st.booleans(),
            ),
            min_size=1,
            max_size=120,
        )
    )
    records = []
    for kind, pc_index, target_index, taken in events:
        if kind == "cond":
            records.append(
                BranchRecord(
                    0x900 + 8 * pc_index, BranchType.CONDITIONAL,
                    taken, 0x910, inst_gap=1,
                )
            )
        else:
            records.append(
                BranchRecord(
                    _PCS[pc_index], BranchType.INDIRECT_JUMP,
                    True, _TARGETS[target_index], inst_gap=2,
                )
            )
    return Trace.from_records("hyp-dependent", records)


def _scalar_per_branch(trace):
    """Per-branch predictions from driving BLBP exactly as the engine
    does, plus the predictor for final-state comparison."""
    predictor = BLBP()
    predictions = []
    for pc, branch_type, taken, target in zip(
        trace.pcs.tolist(),
        trace.types.tolist(),
        trace.takens.tolist(),
        trace.targets.tolist(),
    ):
        if branch_type == _COND:
            predictor.on_conditional(pc, taken)
        elif branch_type in _INDIRECT:
            predictions.append(predictor.predict_target(pc))
            predictor.train(pc, target)
    return predictions, predictor


def _assert_lockstep(trace, force_numpy: bool) -> None:
    scalar_predictions, scalar_predictor = _scalar_per_branch(trace)
    columnar_predictor = BLBP()
    sink = {}
    saved = os.environ.get("REPRO_COLUMNAR_COMPILED")
    try:
        if force_numpy:
            os.environ["REPRO_COLUMNAR_COMPILED"] = "0"
        simulate_columnar(
            columnar_predictor, trace, prediction_sink=sink
        )
    finally:
        if force_numpy:
            if saved is None:
                os.environ.pop("REPRO_COLUMNAR_COMPILED", None)
            else:
                os.environ["REPRO_COLUMNAR_COMPILED"] = saved
    assert len(scalar_predictions) == len(sink["predictions"])
    for position, (scalar, valid, predicted) in enumerate(
        zip(
            scalar_predictions,
            sink["valid"].tolist(),
            sink["predictions"].tolist(),
        )
    ):
        columnar = predicted if valid else None
        assert scalar == columnar, (
            f"indirect #{position}: scalar {scalar!r} vs "
            f"columnar {columnar!r}"
        )
    assert scalar_predictor.state_hash() == columnar_predictor.state_hash()


class TestOrderingBarriers:
    @settings(max_examples=60, deadline=None)
    @given(trace=dependent_traces())
    def test_lockstep_on_dependent_traces(self, trace):
        _assert_lockstep(trace, force_numpy=False)

    @settings(max_examples=60, deadline=None)
    @given(trace=dependent_traces())
    def test_lockstep_on_dependent_traces_numpy_replay(self, trace):
        _assert_lockstep(trace, force_numpy=True)


class TestDerivedEdgeCases:
    """The degenerate shapes ``derived.py`` must hand the kernel."""

    @pytest.mark.parametrize("force_numpy", [False, True])
    def test_empty_conditional_stream(self, force_numpy):
        """Only indirect branches: the conditional bitstream is empty,
        so fold tables and ghist write-back run on zero outcomes."""
        records = [
            BranchRecord(
                _PCS[i % len(_PCS)], BranchType.INDIRECT_JUMP, True,
                _TARGETS[i % len(_TARGETS)], inst_gap=1,
            )
            for i in range(40)
        ]
        _assert_lockstep(
            Trace.from_records("no-conds", records), force_numpy
        )

    @pytest.mark.parametrize("force_numpy", [False, True])
    def test_single_indirect_branch(self, force_numpy):
        trace = Trace.from_records(
            "one-indirect",
            [BranchRecord(0x4000, BranchType.INDIRECT_CALL, True,
                          0x10_0000, inst_gap=1)],
        )
        _assert_lockstep(trace, force_numpy)

    @pytest.mark.parametrize("force_numpy", [False, True])
    def test_no_indirect_branches(self, force_numpy):
        """Only conditionals: branch_count == 0, the replay is skipped
        entirely but history state must still advance identically."""
        records = [
            BranchRecord(0x900, BranchType.CONDITIONAL, bool(i % 3),
                         0x910, inst_gap=1)
            for i in range(50)
        ]
        _assert_lockstep(
            Trace.from_records("no-indirects", records), force_numpy
        )
