"""Tests for bootstrap statistics over campaign results."""

import pytest

from repro.sim.metrics import CampaignResult, SimulationResult
from repro.sim.statistics import (
    bootstrap_mean,
    geometric_mean,
    paired_improvement,
)


def _campaign(pairs):
    campaign = CampaignResult()
    for index, (base, improved) in enumerate(pairs):
        for name, misses in (("base", base), ("new", improved)):
            campaign.add(
                SimulationResult(
                    trace_name=f"t{index}",
                    predictor_name=name,
                    total_instructions=1_000_000,
                    indirect_branches=10_000,
                    indirect_mispredictions=misses,
                )
            )
    return campaign


class TestBootstrapMean:
    def test_interval_contains_mean(self):
        interval = bootstrap_mean([1.0, 2.0, 3.0, 4.0, 5.0])
        assert interval.low <= interval.mean <= interval.high
        assert interval.contains(3.0)

    def test_deterministic_given_seed(self):
        a = bootstrap_mean([1.0, 5.0, 2.0], seed=7)
        b = bootstrap_mean([1.0, 5.0, 2.0], seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_tight_for_constant_data(self):
        interval = bootstrap_mean([2.0] * 10)
        assert interval.low == pytest.approx(2.0)
        assert interval.high == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.5)


class TestPairedImprovement:
    def test_clear_improvement_resolved(self):
        # new is consistently 20% better.
        campaign = _campaign([(1000, 800), (2000, 1600), (500, 400),
                              (1500, 1200), (800, 640)])
        interval = paired_improvement(campaign, "base", "new")
        assert interval.mean == pytest.approx(20.0)
        assert interval.low > 15.0

    def test_no_improvement_straddles_zero(self):
        campaign = _campaign([(1000, 1100), (1000, 900), (1000, 1050),
                              (1000, 950), (1000, 1000)])
        interval = paired_improvement(campaign, "base", "new")
        assert interval.low < 0.0 < interval.high

    def test_zero_baseline_rejected(self):
        campaign = _campaign([(0, 0)])
        with pytest.raises(ValueError):
            paired_improvement(campaign, "base", "new")


class TestGeometricMean:
    def test_matches_analytic(self):
        assert geometric_mean([1.0, 4.0], epsilon=0.0) == pytest.approx(2.0)

    def test_handles_zeros(self):
        assert geometric_mean([0.0, 0.0]) == pytest.approx(0.0, abs=1e-6)

    def test_rejects_very_negative(self):
        with pytest.raises(ValueError):
            geometric_mean([-1.0])
