"""Tests for the post-hoc analysis tools."""

import pytest

from repro.core import BLBP
from repro.predictors import BranchTargetBuffer, ITTAGE
from repro.sim.analysis import (
    format_branch_reports,
    format_learning_curve,
    learning_curve,
    per_branch_breakdown,
    steady_state_mpki,
)
from repro.workloads import VirtualDispatchSpec


@pytest.fixture(scope="module")
def trace():
    return VirtualDispatchSpec(
        name="analysis", seed=41, num_records=12000, num_types=4,
        determinism=0.96, filler_conditionals=10,
    ).generate()


class TestLearningCurve:
    def test_windows_cover_trace(self, trace):
        curve = learning_curve(ITTAGE(), trace, window=100)
        indirect = int(trace.indirect_mask().sum())
        assert len(curve.rates) == -(-indirect // 100)

    def test_rates_are_probabilities(self, trace):
        curve = learning_curve(BLBP(), trace, window=100)
        assert all(0.0 <= rate <= 1.0 for rate in curve.rates)

    def test_learner_improves_over_trace(self, trace):
        curve = learning_curve(ITTAGE(), trace, window=100)
        assert curve.rates[0] > curve.converged_rate()

    def test_warmup_detection(self, trace):
        curve = learning_curve(ITTAGE(), trace, window=100)
        warmup = curve.warmup_windows()
        assert 0 <= warmup <= len(curve.rates)

    def test_bad_window_rejected(self, trace):
        with pytest.raises(ValueError):
            learning_curve(ITTAGE(), trace, window=0)

    def test_format(self, trace):
        curve = learning_curve(ITTAGE(), trace, window=200)
        rendered = format_learning_curve(curve)
        assert "ITTAGE" in rendered


class TestPerBranchBreakdown:
    def test_counts_consistent(self, trace):
        reports = per_branch_breakdown(BranchTargetBuffer(), trace)
        total_execs = sum(report.executions for report in reports)
        assert total_execs == int(trace.indirect_mask().sum())

    def test_sorted_by_misses(self, trace):
        reports = per_branch_breakdown(BranchTargetBuffer(), trace)
        misses = [report.mispredictions for report in reports]
        assert misses == sorted(misses, reverse=True)

    def test_top_limits(self, trace):
        reports = per_branch_breakdown(BranchTargetBuffer(), trace, top=2)
        assert len(reports) == 2

    def test_polymorphic_branches_carry_btb_misses(self, trace):
        reports = per_branch_breakdown(BranchTargetBuffer(), trace)
        worst = reports[0]
        assert worst.distinct_targets > 1
        assert worst.miss_rate > 0.3

    def test_format(self, trace):
        rendered = format_branch_reports(
            per_branch_breakdown(BranchTargetBuffer(), trace, top=3)
        )
        assert "execs" in rendered


class TestSteadyState:
    def test_steady_state_not_worse(self, trace):
        whole, steady = steady_state_mpki(ITTAGE, trace)
        assert steady <= whole * 1.05

    def test_bad_fraction_rejected(self, trace):
        with pytest.raises(ValueError):
            steady_state_mpki(ITTAGE, trace, warmup_fraction=1.0)
