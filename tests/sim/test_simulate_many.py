"""Equivalence tests for the fused multi-predictor loop.

``simulate_many`` promises results and final predictor state
bit-identical to per-predictor ``simulate`` calls — across every
registry predictor, with and without a derived plane, on the fast
indirect-only path and the general path, and while checkpointing.
"""

from __future__ import annotations

import pytest

from repro.registry import INDIRECT_PREDICTORS, make_indirect
from repro.sim import simulate, simulate_many
from repro.sim.checkpoint import load_checkpoint
from repro.trace.derived import compute_derived
from repro.trace.stream import Trace, concatenate


def _result_key(result):
    return (
        result.trace_name,
        result.total_instructions,
        result.indirect_branches,
        result.indirect_mispredictions,
        result.return_branches,
        result.return_mispredictions,
        result.conditional_branches,
        tuple(sorted(result.mispredictions_by_pc.items())),
    )


@pytest.fixture(scope="module")
def mixed_trace():
    from repro.workloads import CallReturnSpec, VirtualDispatchSpec

    callret = CallReturnSpec(
        name="cr-many", seed=10, num_records=3000, filler_conditionals=6
    ).generate()
    vdispatch = VirtualDispatchSpec(
        name="vd-many", seed=7, num_records=3000, num_types=4, num_sites=2,
        determinism=0.95, filler_conditionals=6,
    ).generate()
    return concatenate("mixed", [callret, vdispatch])


NAMES = sorted(INDIRECT_PREDICTORS)


class TestSoloEquivalence:
    @pytest.mark.parametrize("name", NAMES)
    def test_matches_simulate_per_predictor(self, name, mixed_trace):
        solo_predictor = make_indirect(name)
        solo = simulate(
            solo_predictor, mixed_trace, warmup_records=200,
            collect_per_pc=True,
        )
        fused_predictor = make_indirect(name)
        [fused] = simulate_many(
            [fused_predictor], mixed_trace, warmup_records=200,
            collect_per_pc=True,
        )
        assert _result_key(fused) == _result_key(solo)
        assert fused_predictor.state_hash() == solo_predictor.state_hash()

    def test_all_predictors_in_one_pass(self, mixed_trace):
        solos = {
            name: simulate(make_indirect(name), mixed_trace)
            for name in NAMES
        }
        predictors = [make_indirect(name) for name in NAMES]
        fused = simulate_many(predictors, mixed_trace)
        for name, result in zip(NAMES, fused):
            assert _result_key(result) == _result_key(solos[name]), name

    def test_derived_plane_matches_live_ras(self, mixed_trace):
        derived = compute_derived(mixed_trace, 32)
        live = simulate_many(
            [make_indirect(name) for name in NAMES], mixed_trace
        )
        planar = simulate_many(
            [make_indirect(name) for name in NAMES], mixed_trace,
            derived=derived,
        )
        for left, right in zip(live, planar):
            assert _result_key(left) == _result_key(right)

    def test_fast_path_matches_general_path(self, mixed_trace):
        # BTB and 2bit-BTB override neither hook, so a pure group takes
        # the indirect-only fast path; mixing in ITTAGE (which consumes
        # conditional outcomes) forces the general path.  Fast-path
        # members must be unaffected by their companions.
        derived = compute_derived(mixed_trace, 32)
        fast = simulate_many(
            [make_indirect("BTB"), make_indirect("2bit-BTB")],
            mixed_trace, derived=derived, warmup_records=100,
        )
        general = simulate_many(
            [make_indirect("BTB"), make_indirect("2bit-BTB"),
             make_indirect("ITTAGE")],
            mixed_trace, derived=derived, warmup_records=100,
        )
        for left, right in zip(fast, general):
            assert _result_key(left) == _result_key(right)

    def test_empty_predictor_list(self, mixed_trace):
        assert simulate_many([], mixed_trace) == []

    def test_empty_trace(self):
        empty = Trace.from_records("empty", [])
        [result] = simulate_many([make_indirect("BTB")], empty)
        assert result.indirect_branches == 0
        assert result.indirect_mispredictions == 0


class TestCheckpoints:
    def test_fused_checkpoints_resume_via_simulate(self, mixed_trace, tmp_path):
        names = ["BTB", "ITTAGE"]
        paths = [str(tmp_path / f"{name}.ckpt") for name in names]
        fused_predictors = [make_indirect(name) for name in names]
        fused = simulate_many(
            fused_predictors, mixed_trace,
            checkpoint_every=500, checkpoint_paths=paths,
        )
        for name, path, fused_result in zip(names, paths, fused):
            snapshot = load_checkpoint(path)
            assert snapshot is not None
            resumed_predictor = make_indirect(name)
            resumed = simulate(
                resumed_predictor, mixed_trace, resume_from=snapshot
            )
            assert _result_key(resumed) == _result_key(fused_result)

    def test_checkpointing_does_not_change_results(self, mixed_trace, tmp_path):
        baseline = simulate(make_indirect("VPC"), mixed_trace)
        [checked] = simulate_many(
            [make_indirect("VPC")], mixed_trace,
            checkpoint_every=300,
            checkpoint_paths=[str(tmp_path / "vpc.ckpt")],
        )
        assert _result_key(checked) == _result_key(baseline)


class TestValidation:
    def test_mismatched_derived_rejected(self, mixed_trace, tiny_trace):
        wrong = compute_derived(tiny_trace, 32)
        with pytest.raises(ValueError):
            simulate_many([make_indirect("BTB")], mixed_trace, derived=wrong)

    def test_wrong_depth_derived_rejected(self, mixed_trace):
        shallow = compute_derived(mixed_trace, 4)
        with pytest.raises(ValueError):
            simulate_many(
                [make_indirect("BTB")], mixed_trace,
                ras_depth=32, derived=shallow,
            )

    def test_checkpoint_paths_length_checked(self, mixed_trace, tmp_path):
        with pytest.raises(ValueError):
            simulate_many(
                [make_indirect("BTB"), make_indirect("VPC")], mixed_trace,
                checkpoint_every=100,
                checkpoint_paths=[str(tmp_path / "only-one.ckpt")],
            )

    def test_checkpoint_every_needs_paths(self, mixed_trace):
        with pytest.raises(ValueError):
            simulate_many(
                [make_indirect("BTB")], mixed_trace, checkpoint_every=100
            )
