"""Tests for the campaign runner."""

from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.two_bit_btb import TwoBitBTB
from repro.sim.runner import run_campaign


class TestRunCampaign:
    def test_all_cells_filled(self, tiny_trace, vdispatch_trace):
        campaign = run_campaign(
            [tiny_trace, vdispatch_trace],
            {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB},
        )
        assert set(campaign.traces()) == {"tiny", "vd-test"}
        assert set(campaign.predictors()) == {"BTB", "2bit"}
        for trace in campaign.traces():
            for predictor in campaign.predictors():
                assert campaign.mpki_of(trace, predictor) >= 0

    def test_factory_name_overrides_predictor_name(self, tiny_trace):
        campaign = run_campaign([tiny_trace], {"custom": BranchTargetBuffer})
        assert campaign.predictors() == ["custom"]

    def test_fresh_predictor_per_trace(self, tiny_trace):
        instances = []

        def factory():
            instance = BranchTargetBuffer()
            instances.append(instance)
            return instance

        run_campaign([tiny_trace, tiny_trace], {"BTB": factory})
        assert len(instances) == 2
        assert instances[0] is not instances[1]

    def test_progress_callback_invoked(self, tiny_trace):
        seen = []
        run_campaign(
            [tiny_trace],
            {"BTB": BranchTargetBuffer},
            progress=lambda trace, name, mpki: seen.append((trace, name, mpki)),
        )
        assert seen and seen[0][0] == "tiny" and seen[0][1] == "BTB"
