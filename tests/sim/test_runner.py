"""Tests for the campaign runner."""

from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.two_bit_btb import TwoBitBTB
from repro.sim.runner import run_campaign


class TestRunCampaign:
    def test_all_cells_filled(self, tiny_trace, vdispatch_trace):
        campaign = run_campaign(
            [tiny_trace, vdispatch_trace],
            {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB},
        )
        assert set(campaign.traces()) == {"tiny", "vd-test"}
        assert set(campaign.predictors()) == {"BTB", "2bit"}
        for trace in campaign.traces():
            for predictor in campaign.predictors():
                assert campaign.mpki_of(trace, predictor) >= 0

    def test_factory_name_overrides_predictor_name(self, tiny_trace):
        campaign = run_campaign([tiny_trace], {"custom": BranchTargetBuffer})
        assert campaign.predictors() == ["custom"]

    def test_fresh_predictor_per_trace(self, tiny_trace):
        instances = []

        def factory():
            instance = BranchTargetBuffer()
            instances.append(instance)
            return instance

        run_campaign([tiny_trace, tiny_trace], {"BTB": factory})
        assert len(instances) == 2
        assert instances[0] is not instances[1]

    def test_progress_callback_invoked(self, tiny_trace):
        seen = []
        run_campaign(
            [tiny_trace],
            {"BTB": BranchTargetBuffer},
            progress=lambda trace, name, mpki: seen.append((trace, name, mpki)),
        )
        assert seen and seen[0][0] == "tiny" and seen[0][1] == "BTB"


class TestProgressProtocol:
    """The extended 5-argument progress form and its legacy fallback."""

    def test_extended_callback_gets_index_and_total(self, tiny_trace,
                                                    vdispatch_trace):
        seen = []

        def progress(trace, name, mpki, index, total):
            seen.append((trace, name, index, total))

        run_campaign(
            [tiny_trace, vdispatch_trace],
            {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB},
            progress=progress,
        )
        assert [cell[2] for cell in seen] == [0, 1, 2, 3]
        assert all(cell[3] == 4 for cell in seen)
        assert seen[0][:2] == ("tiny", "BTB")
        assert seen[-1][:2] == ("vd-test", "2bit")

    def test_var_positional_callback_treated_as_extended(self, tiny_trace):
        seen = []
        run_campaign(
            [tiny_trace],
            {"BTB": BranchTargetBuffer},
            progress=lambda *args: seen.append(args),
        )
        assert len(seen) == 1 and len(seen[0]) == 5
        assert seen[0][3:] == (0, 1)

    def test_arity_detection(self):
        from repro.sim.runner import progress_arity

        assert progress_arity(lambda t, n, m: None) == 3
        assert progress_arity(lambda t, n, m, i, total: None) == 5
        assert progress_arity(lambda *args: None) == 5
        assert progress_arity(print) == 5  # *args builtin
