"""Tests for the MPKI -> CPI performance model."""

import pytest

from repro.sim.metrics import SimulationResult
from repro.sim.performance import PipelineModel


def _result(instructions, indirect_misses, return_misses=0):
    return SimulationResult(
        trace_name="t",
        predictor_name="p",
        total_instructions=instructions,
        indirect_branches=1000,
        indirect_mispredictions=indirect_misses,
        return_branches=100,
        return_mispredictions=return_misses,
    )


class TestPipelineModel:
    def test_perfect_prediction_gives_base_cpi(self):
        model = PipelineModel(base_cpi=0.5)
        assert model.cpi(_result(1_000_000, 0)) == pytest.approx(0.5)

    def test_linear_in_misprediction_rate(self):
        """The §4.2 linearity: CPI grows linearly with MPKI."""
        model = PipelineModel(base_cpi=0.5, indirect_penalty=20.0)
        cpi_1 = model.cpi(_result(1_000_000, 1000))   # 1 MPKI
        cpi_2 = model.cpi(_result(1_000_000, 2000))   # 2 MPKI
        cpi_3 = model.cpi(_result(1_000_000, 3000))   # 3 MPKI
        assert cpi_2 - cpi_1 == pytest.approx(cpi_3 - cpi_2)
        assert cpi_2 - cpi_1 == pytest.approx(20.0 * 1e-3)

    def test_cpi_from_mpki_matches_result_path(self):
        model = PipelineModel()
        result = _result(1_000_000, 500)
        assert model.cpi_from_mpki(result.mpki()) == pytest.approx(
            model.cpi(result)
        )

    def test_return_penalty_counted(self):
        model = PipelineModel(return_penalty=30.0)
        with_returns = model.cpi(_result(1_000_000, 0, return_misses=1000))
        without = model.cpi(_result(1_000_000, 0))
        assert with_returns - without == pytest.approx(30.0 * 1e-3)

    def test_speedup_direction(self):
        model = PipelineModel()
        slow = _result(1_000_000, 5000)
        fast = _result(1_000_000, 500)
        assert model.speedup(slow, fast) > 1.0
        assert model.speedup(fast, slow) < 1.0

    def test_ipc_loss_bounds(self):
        model = PipelineModel()
        assert model.mpki_to_ipc_loss(0.0) == pytest.approx(0.0)
        assert 0.0 < model.mpki_to_ipc_loss(3.4) < 1.0

    def test_empty_trace(self):
        model = PipelineModel()
        assert model.cpi(_result(0, 0)) == model.base_cpi

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineModel(base_cpi=0.0)
        with pytest.raises(ValueError):
            PipelineModel(indirect_penalty=-1.0)
        with pytest.raises(ValueError):
            PipelineModel().cpi_from_mpki(-1.0)
