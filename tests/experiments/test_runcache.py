"""Tests for the memoized suite/campaign cache."""

import pytest

from repro.experiments.runcache import (
    clear_caches,
    get_campaign,
    get_suite_stats,
    get_suite_traces,
)
from repro.predictors import BranchTargetBuffer


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestSuiteCache:
    def test_same_object_on_repeat(self):
        first = get_suite_traces(scale=0.2)
        second = get_suite_traces(scale=0.2)
        assert first is second

    def test_different_scale_different_cache(self):
        small = get_suite_traces(scale=0.2)
        other = get_suite_traces(scale=0.25)
        assert small is not other

    def test_cbp4_suite_supported(self):
        traces = get_suite_traces(scale=0.2, suite="cbp4")
        assert len(traces) == 20

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            get_suite_traces(scale=0.2, suite="mystery")

    def test_stats_align_with_traces(self):
        traces = get_suite_traces(scale=0.2)
        stats = get_suite_stats(scale=0.2)
        assert len(stats) == len(traces)
        assert stats[0].name == traces[0].name


class TestCampaignCache:
    def test_campaign_cached_by_names(self):
        factories = {"BTB": BranchTargetBuffer}
        first = get_campaign(factories, scale=0.2)
        second = get_campaign(factories, scale=0.2)
        assert first is second

    def test_campaign_has_all_traces(self):
        campaign = get_campaign({"BTB": BranchTargetBuffer}, scale=0.2)
        assert len(campaign.traces()) == 88


class TestCampaignCacheFactoryIdentity:
    """Regression: cache keys must include factory identity, not just
    the predictor name — two configs under one name must not alias."""

    def test_different_factories_same_name_not_aliased(self):
        import functools

        from repro.predictors import BranchTargetBuffer as BTBClass

        small = functools.partial(BTBClass, num_entries=16)
        large = functools.partial(BTBClass, num_entries=32768)
        first = get_campaign({"BTB": small}, scale=0.2)
        second = get_campaign({"BTB": large}, scale=0.2)
        assert first is not second
        # The configurations genuinely differ, so at least one trace
        # must score differently; aliasing would make them all equal.
        diffs = [
            trace
            for trace in first.traces()
            if first.mpki_of(trace, "BTB") != second.mpki_of(trace, "BTB")
        ]
        assert diffs

    def test_distinct_closures_get_distinct_slots(self):
        first = get_campaign({"BTB": lambda: BranchTargetBuffer()}, scale=0.2)
        second = get_campaign({"BTB": lambda: BranchTargetBuffer()}, scale=0.2)
        assert first is not second

    def test_same_class_factory_still_hits_cache(self):
        first = get_campaign({"BTB": BranchTargetBuffer}, scale=0.2)
        second = get_campaign({"BTB": BranchTargetBuffer}, scale=0.2)
        assert first is second

    def test_repro_jobs_env_uses_parallel_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = get_campaign({"BTB": BranchTargetBuffer}, scale=0.2)
        clear_caches()
        monkeypatch.delenv("REPRO_JOBS")
        serial = get_campaign({"BTB": BranchTargetBuffer}, scale=0.2)
        assert parallel.traces() == serial.traces()
        for trace in serial.traces():
            assert parallel.results[trace]["BTB"] == serial.results[trace]["BTB"]
