"""Tests for Table 1 and the headline driver (cheap paths only)."""

from repro.experiments.tables import (
    PAPER_HEADLINE_MPKI,
    format_table1,
    table1,
)


class TestTable1:
    def test_sources_and_counts(self):
        rows = {source: count for source, count, _ in table1()}
        assert rows == {
            "SPEC CPU2000": 1,
            "SPEC CPU2006": 12,
            "SPEC CPU2017": 7,
            "CBP-5": 68,
        }

    def test_total_88(self):
        assert sum(count for _, count, _ in table1()) == 88

    def test_details_mention_benchmarks(self):
        details = {source: text for source, _, text in table1()}
        assert "252_eon" in details["SPEC CPU2000"]
        assert "perlbench" in details["SPEC CPU2006"]

    def test_format(self):
        rendered = format_table1()
        assert "Table 1" in rendered
        assert " 88" in rendered


class TestPaperConstants:
    def test_headline_ordering(self):
        # The paper's ordering the reproduction must reproduce.
        assert (
            PAPER_HEADLINE_MPKI["BLBP"]
            < PAPER_HEADLINE_MPKI["ITTAGE"]
            < PAPER_HEADLINE_MPKI["VPC"]
            < PAPER_HEADLINE_MPKI["BTB"]
        )
