"""Tests for the CSV figure exporter."""

import csv

import pytest

from repro.experiments.figure_export import (
    export_all,
    export_figure1,
    export_figure6,
    export_figure7,
    export_figure8,
    export_figure9,
    export_series,
)
from repro.sim.metrics import CampaignResult, SimulationResult
from repro.trace.record import BranchType
from repro.trace.stats import TraceStats


def _stats(name):
    return TraceStats(
        name=name,
        total_instructions=1_000_000,
        counts_by_type={bt: 1000 for bt in BranchType},
        targets_per_branch={0x1000: 2, 0x2000: 1},
        polymorphic_executions=500,
        indirect_executions=2000,
    )


def _campaign():
    campaign = CampaignResult()
    for trace in ("t1", "t2"):
        for name, misses in (("BTB", 100), ("VPC", 50), ("ITTAGE", 20),
                             ("BLBP", 15)):
            campaign.add(
                SimulationResult(
                    trace_name=trace,
                    predictor_name=name,
                    total_instructions=1_000_000,
                    indirect_branches=1000,
                    indirect_mispredictions=misses,
                )
            )
    return campaign


def _read(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestExports:
    def test_figure1_rows(self, tmp_path):
        path = export_figure1([_stats("a"), _stats("b")], tmp_path / "f1.csv")
        rows = _read(path)
        assert rows[0][0] == "benchmark"
        assert len(rows) == 3

    def test_figure6_sorted(self, tmp_path):
        path = export_figure6([_stats("a")], tmp_path / "f6.csv")
        rows = _read(path)
        assert rows[1][0] == "a"

    def test_figure7_64_rows(self, tmp_path):
        path = export_figure7([_stats("a")], tmp_path / "f7.csv")
        rows = _read(path)
        assert len(rows) == 65  # header + x = 1..64
        assert rows[1] == ["1", "100.0000"]

    def test_figure8_columns(self, tmp_path):
        path = export_figure8(_campaign(), tmp_path / "f8.csv")
        rows = _read(path)
        assert rows[0] == ["benchmark", "VPC_mpki", "ITTAGE_mpki", "BLBP_mpki"]
        assert len(rows) == 3

    def test_figure9_shares(self, tmp_path):
        path = export_figure9(_campaign(), tmp_path / "f9.csv")
        rows = _read(path)
        shares = [float(x) for x in rows[1][1:]]
        assert sum(shares) == pytest.approx(100.0, abs=0.01)

    def test_series_export(self, tmp_path):
        path = export_series(
            [("assoc=4", 1.09), ("assoc=64", 0.183)], tmp_path / "s.csv"
        )
        rows = _read(path)
        assert rows[1][0] == "assoc=4"

    def test_export_all_creates_five_files(self, tmp_path):
        paths = export_all([_stats("a")], _campaign(), tmp_path / "out")
        assert len(paths) == 5
        assert all(path.exists() for path in paths)

    def test_creates_parent_directories(self, tmp_path):
        path = export_series([("x", 1.0)], tmp_path / "deep" / "dir" / "s.csv")
        assert path.exists()
