"""Tests for the Fig. 10 ablation and Fig. 11 associativity drivers.

These use tiny trace subsets so the full drivers stay exercisable in the
unit-test budget; the real sweeps run in benchmarks/.
"""

import pytest

from repro.experiments.ablation import (
    OPTIMIZATIONS,
    ablation_configs,
    figure10,
    format_figure10,
)
from repro.experiments.associativity import (
    ASSOCIATIVITIES,
    associativity_config,
    figure11,
    format_figure11,
)
from repro.workloads import VirtualDispatchSpec


@pytest.fixture(scope="module")
def mini_traces():
    return [
        VirtualDispatchSpec(
            name=f"mini-{i}", seed=20 + i, num_records=2500, num_types=4,
            determinism=0.95, filler_conditionals=8,
        ).generate()
        for i in range(2)
    ]


class TestAblationConfigs:
    def test_twelve_configurations(self):
        assert len(ablation_configs()) == 12

    def test_all_off_has_no_optimizations(self):
        config = ablation_configs()["all optimizations off"]
        for _, field in OPTIMIZATIONS:
            assert not getattr(config, field)

    def test_only_one_on(self):
        configs = ablation_configs()
        for label, field in OPTIMIZATIONS:
            config = configs[f"only {label} on"]
            assert getattr(config, field)
            others = [f for _, f in OPTIMIZATIONS if f != field]
            assert not any(getattr(config, f) for f in others)

    def test_no_one_off(self):
        configs = ablation_configs()
        for label, field in OPTIMIZATIONS:
            config = configs[f"no {label}"]
            assert not getattr(config, field)
            others = [f for _, f in OPTIMIZATIONS if f != field]
            assert all(getattr(config, f) for f in others)

    def test_all_on(self):
        config = ablation_configs()["all optimizations on"]
        for _, field in OPTIMIZATIONS:
            assert getattr(config, field)


class TestFigure10:
    def test_runs_and_reports_all_configs(self, mini_traces):
        results = figure10(traces=mini_traces)
        assert len(results) == 12
        labels = [label for label, _ in results]
        assert labels[0] == "all optimizations off"
        assert labels[-1] == "all optimizations on"

    def test_format(self, mini_traces):
        rendered = format_figure10(figure10(traces=mini_traces))
        assert "Figure 10" in rendered
        assert "adaptive threshold" in rendered


class TestAssociativityConfig:
    def test_entries_conserved(self):
        for ways in ASSOCIATIVITIES:
            config = associativity_config(ways)
            assert config.ibtb_ways * config.ibtb_sets == 4096

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            associativity_config(3)


class TestFigure11:
    def test_runs_all_points(self, mini_traces):
        results = figure11(traces=mini_traces)
        labels = [label for label, _ in results]
        assert labels == [f"assoc={w}" for w in ASSOCIATIVITIES] + ["ITTAGE"]
        assert all(mpki >= 0 for _, mpki in results)

    def test_format(self, mini_traces):
        rendered = format_figure11(figure11(traces=mini_traces))
        assert "Figure 11" in rendered
