"""Tests for the §3.6 interval hill-climbing tuner."""

import numpy as np
import pytest

import json

from repro.core.config import BLBPConfig, GEHL_INTERVALS
from repro.experiments.tuning import (
    export_tuning_result,
    format_tuning_result,
    hill_climb_intervals,
    mutate_interval,
    tuning_result_to_json,
)
from repro.workloads import VirtualDispatchSpec


@pytest.fixture(scope="module")
def tuning_traces():
    return [
        VirtualDispatchSpec(
            name="tune", seed=61, num_records=2500, num_types=4,
            determinism=0.95, filler_conditionals=8,
        ).generate()
    ]


class TestMutateInterval:
    def test_intervals_stay_well_formed(self):
        rng = np.random.default_rng(0)
        intervals = GEHL_INTERVALS
        for _ in range(300):
            intervals = mutate_interval(intervals, rng, max_position=630)
            for start, end in intervals:
                assert 0 <= start < end <= 630

    def test_exactly_one_interval_changes(self):
        rng = np.random.default_rng(1)
        mutated = mutate_interval(GEHL_INTERVALS, rng, max_position=630)
        differences = sum(
            1 for a, b in zip(GEHL_INTERVALS, mutated) if a != b
        )
        assert differences <= 1


class TestHillClimb:
    def test_never_worse_than_start(self, tuning_traces):
        result = hill_climb_intervals(tuning_traces, iterations=6, seed=2)
        assert result.best_mpki <= result.initial_mpki

    def test_history_recorded(self, tuning_traces):
        result = hill_climb_intervals(tuning_traces, iterations=5, seed=3)
        assert len(result.history) == 5
        accepted = [entry for entry in result.history if entry[2]]
        assert result.accepted_steps == len(accepted)

    def test_deterministic_given_seed(self, tuning_traces):
        a = hill_climb_intervals(tuning_traces, iterations=4, seed=4)
        b = hill_climb_intervals(tuning_traces, iterations=4, seed=4)
        assert a.best_intervals == b.best_intervals
        assert a.best_mpki == b.best_mpki

    def test_zero_iterations(self, tuning_traces):
        result = hill_climb_intervals(tuning_traces, iterations=0)
        assert result.best_intervals == result.initial_intervals

    def test_validation(self):
        with pytest.raises(ValueError):
            hill_climb_intervals([], iterations=1)

    def test_format(self, tuning_traces):
        result = hill_climb_intervals(tuning_traces, iterations=2, seed=5)
        rendered = format_tuning_result(result)
        assert "hill-climbing" in rendered
        assert "improvement" in rendered

    def test_seed_and_timings_recorded(self, tuning_traces):
        result = hill_climb_intervals(tuning_traces, iterations=4, seed=17)
        assert result.seed == 17
        assert len(result.iteration_seconds) == len(result.history) == 4
        assert all(elapsed > 0 for elapsed in result.iteration_seconds)

    def test_parallel_walk_equals_serial(self, tuning_traces):
        serial = hill_climb_intervals(tuning_traces, iterations=4, seed=6,
                                      jobs=1)
        parallel = hill_climb_intervals(tuning_traces, iterations=4,
                                        seed=6, jobs=2)
        assert serial.best_intervals == parallel.best_intervals
        assert serial.best_mpki == parallel.best_mpki
        assert serial.history == parallel.history


class TestExport:
    def test_json_round_trip(self, tuning_traces):
        result = hill_climb_intervals(tuning_traces, iterations=3, seed=7)
        payload = tuning_result_to_json(result)
        assert payload["seed"] == 7
        assert payload["iterations"] == 3
        assert len(payload["history"]) == 3
        assert len(payload["iteration_seconds"]) == 3
        assert payload["best_mpki"] == result.best_mpki
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_export_writes_json_and_csv(self, tuning_traces, tmp_path):
        result = hill_climb_intervals(tuning_traces, iterations=3, seed=8)
        paths = export_tuning_result(result, tmp_path / "results")
        names = {path.name for path in paths}
        assert names == {"tuning.json", "tuning_history.csv"}
        payload = json.loads((tmp_path / "results" / "tuning.json").read_text())
        assert payload["seed"] == 8
        csv_lines = (
            (tmp_path / "results" / "tuning_history.csv")
            .read_text().strip().splitlines()
        )
        assert csv_lines[0] == "iteration,candidate_mpki"
        assert len(csv_lines) == 4
