"""Tests for the §3.6 interval hill-climbing tuner."""

import numpy as np
import pytest

from repro.core.config import BLBPConfig, GEHL_INTERVALS
from repro.experiments.tuning import (
    format_tuning_result,
    hill_climb_intervals,
    mutate_interval,
)
from repro.workloads import VirtualDispatchSpec


@pytest.fixture(scope="module")
def tuning_traces():
    return [
        VirtualDispatchSpec(
            name="tune", seed=61, num_records=2500, num_types=4,
            determinism=0.95, filler_conditionals=8,
        ).generate()
    ]


class TestMutateInterval:
    def test_intervals_stay_well_formed(self):
        rng = np.random.default_rng(0)
        intervals = GEHL_INTERVALS
        for _ in range(300):
            intervals = mutate_interval(intervals, rng, max_position=630)
            for start, end in intervals:
                assert 0 <= start < end <= 630

    def test_exactly_one_interval_changes(self):
        rng = np.random.default_rng(1)
        mutated = mutate_interval(GEHL_INTERVALS, rng, max_position=630)
        differences = sum(
            1 for a, b in zip(GEHL_INTERVALS, mutated) if a != b
        )
        assert differences <= 1


class TestHillClimb:
    def test_never_worse_than_start(self, tuning_traces):
        result = hill_climb_intervals(tuning_traces, iterations=6, seed=2)
        assert result.best_mpki <= result.initial_mpki

    def test_history_recorded(self, tuning_traces):
        result = hill_climb_intervals(tuning_traces, iterations=5, seed=3)
        assert len(result.history) == 5
        accepted = [entry for entry in result.history if entry[2]]
        assert result.accepted_steps == len(accepted)

    def test_deterministic_given_seed(self, tuning_traces):
        a = hill_climb_intervals(tuning_traces, iterations=4, seed=4)
        b = hill_climb_intervals(tuning_traces, iterations=4, seed=4)
        assert a.best_intervals == b.best_intervals
        assert a.best_mpki == b.best_mpki

    def test_zero_iterations(self, tuning_traces):
        result = hill_climb_intervals(tuning_traces, iterations=0)
        assert result.best_intervals == result.initial_intervals

    def test_validation(self):
        with pytest.raises(ValueError):
            hill_climb_intervals([], iterations=1)

    def test_format(self, tuning_traces):
        result = hill_climb_intervals(tuning_traces, iterations=2, seed=5)
        rendered = format_tuning_result(result)
        assert "hill-climbing" in rendered
        assert "improvement" in rendered
