"""Tests for the design-space sweep framework."""

import pytest

from repro.core.config import BLBPConfig
from repro.experiments.sweeps import (
    format_sweep,
    run_sweep,
    table_rows_sweep,
    target_bits_sweep,
    weight_bits_sweep,
)
from repro.workloads import VirtualDispatchSpec


@pytest.fixture(scope="module")
def mini_traces():
    return [
        VirtualDispatchSpec(
            name="sweep", seed=71, num_records=2500, num_types=4,
            determinism=0.95, filler_conditionals=8,
        ).generate()
    ]


class TestSweepDefinitions:
    def test_weight_bits_points_valid_configs(self):
        base = BLBPConfig()
        for label, transform in weight_bits_sweep():
            config = transform(base)  # must not raise validation
            assert f"weights={config.weight_bits}b" == label
            assert len(config.transfer_magnitudes) == config.weight_magnitude + 1

    def test_target_bits_points(self):
        base = BLBPConfig()
        labels = [t(base).num_target_bits for _, t in target_bits_sweep()]
        assert labels == [4, 8, 12, 16]

    def test_table_rows_points(self):
        base = BLBPConfig()
        rows = [t(base).table_rows for _, t in table_rows_sweep((64, 128))]
        assert rows == [64, 128]


class TestRunSweep:
    def test_all_points_reported(self, mini_traces):
        results = run_sweep(
            table_rows_sweep((64, 256)), traces=mini_traces
        )
        assert set(results) == {"rows=64", "rows=256"}
        assert all(mpki >= 0 for mpki in results.values())

    def test_format(self, mini_traces):
        results = run_sweep(table_rows_sweep((64,)), traces=mini_traces)
        rendered = format_sweep("capacity", results)
        assert "capacity" in rendered and "rows=64" in rendered
