"""Tests for the design-space sweep framework."""

import math

import pytest

from repro.core.config import BLBPConfig
from repro.experiments.sweeps import (
    format_sweep,
    run_sweep,
    table_rows_sweep,
    target_bits_sweep,
    weight_bits_sweep,
)
from repro.workloads import VirtualDispatchSpec


@pytest.fixture(scope="module")
def mini_traces():
    return [
        VirtualDispatchSpec(
            name="sweep", seed=71, num_records=2500, num_types=4,
            determinism=0.95, filler_conditionals=8,
        ).generate()
    ]


class TestSweepDefinitions:
    def test_weight_bits_points_valid_configs(self):
        base = BLBPConfig()
        for label, transform in weight_bits_sweep():
            config = transform(base)  # must not raise validation
            assert f"weights={config.weight_bits}b" == label
            assert len(config.transfer_magnitudes) == config.weight_magnitude + 1

    def test_target_bits_points(self):
        base = BLBPConfig()
        labels = [t(base).num_target_bits for _, t in target_bits_sweep()]
        assert labels == [4, 8, 12, 16]

    def test_table_rows_points(self):
        base = BLBPConfig()
        rows = [t(base).table_rows for _, t in table_rows_sweep((64, 128))]
        assert rows == [64, 128]

    def test_each_point_mutates_only_its_axis(self):
        base = BLBPConfig()
        axes = {
            "weight_bits": weight_bits_sweep((3, 5)),
            "num_target_bits": target_bits_sweep((4, 8)),
            "table_rows": table_rows_sweep((64, 256)),
        }
        # Fields a sweep is allowed to change alongside its axis.
        allowed = {"weight_bits": {"weight_bits", "transfer_magnitudes"}}
        for axis, points in axes.items():
            for _, transform in points:
                config = transform(base)
                changed = {
                    name
                    for name in (
                        "weight_bits", "num_target_bits", "table_rows",
                        "intervals", "global_history_bits",
                        "transfer_magnitudes", "use_intervals",
                    )
                    if getattr(config, name) != getattr(base, name)
                }
                assert changed <= allowed.get(axis, {axis}), (axis, changed)

    def test_axis_values_are_monotonic(self):
        base = BLBPConfig()
        for points, attribute in (
            (weight_bits_sweep(), "weight_bits"),
            (target_bits_sweep(), "num_target_bits"),
            (table_rows_sweep(), "table_rows"),
        ):
            values = [getattr(t(base), attribute) for _, t in points]
            assert values == sorted(values)
            assert len(set(values)) == len(values)


class TestRunSweep:
    def test_all_points_reported(self, mini_traces):
        results = run_sweep(
            table_rows_sweep((64, 256)), traces=mini_traces
        )
        assert set(results) == {"rows=64", "rows=256"}
        assert all(mpki >= 0 for mpki in results.values())

    def test_format(self, mini_traces):
        results = run_sweep(table_rows_sweep((64,)), traces=mini_traces)
        rendered = format_sweep("capacity", results)
        assert "capacity" in rendered and "rows=64" in rendered

    @pytest.mark.parametrize(
        "points,labels",
        [
            (weight_bits_sweep((3, 4)), ["weights=3b", "weights=4b"]),
            (target_bits_sweep((4, 12)), ["K=4", "K=12"]),
            (table_rows_sweep((64, 256)), ["rows=64", "rows=256"]),
        ],
        ids=["weight-bits", "target-bits", "table-rows"],
    )
    def test_each_grid_smokes(self, mini_traces, points, labels):
        results = run_sweep(points, traces=mini_traces)
        assert list(results) == labels
        assert all(math.isfinite(mpki) for mpki in results.values())

    def test_parallel_sweep_equals_serial(self, mini_traces):
        points = table_rows_sweep((64, 256))
        serial = run_sweep(points, traces=mini_traces, jobs=1)
        parallel = run_sweep(points, traces=mini_traces, jobs=2)
        assert serial == parallel
