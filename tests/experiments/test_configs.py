"""Tests for the Table 2 configuration driver."""

from repro.experiments.configs import (
    PAPER_BUDGETS_KB,
    format_budget_details,
    format_table2,
    predictor_factories,
    table2,
)


class TestPredictorFactories:
    def test_four_predictors(self):
        assert set(predictor_factories()) == {"BTB", "VPC", "ITTAGE", "BLBP"}

    def test_factories_produce_fresh_instances(self):
        factories = predictor_factories()
        assert factories["BLBP"]() is not factories["BLBP"]()


class TestTable2:
    def test_rows_cover_all_predictors(self):
        names = [row[0] for row in table2()]
        assert names == ["BTB", "VPC", "ITTAGE", "BLBP"]

    def test_paper_budgets_quoted(self):
        for name, _, paper_kb, _ in table2():
            assert paper_kb == PAPER_BUDGETS_KB[name]

    def test_measured_budgets_positive(self):
        for _, _, _, measured_kb in table2():
            assert measured_kb > 0

    def test_blbp_measured_near_paper(self):
        rows = {row[0]: row for row in table2()}
        _, _, paper_kb, measured_kb = rows["BLBP"]
        assert abs(measured_kb - paper_kb) / paper_kb < 0.15

    def test_ittage_measured_near_paper(self):
        rows = {row[0]: row for row in table2()}
        _, _, paper_kb, measured_kb = rows["ITTAGE"]
        assert abs(measured_kb - paper_kb) / paper_kb < 0.3

    def test_format_contains_all(self):
        rendered = format_table2()
        for name in ("BTB", "VPC", "ITTAGE", "BLBP"):
            assert name in rendered

    def test_details_render(self):
        rendered = format_budget_details()
        assert "weights" in rendered
        assert "IBTB" in rendered
