"""Tests for the figure drivers (on synthetic stats/campaigns)."""

import pytest

from repro.experiments.figures import (
    figure1,
    figure6,
    figure7,
    figure8,
    figure9,
    format_figure1,
    format_figure6,
    format_figure7,
    format_figure8,
    format_figure9,
)
from repro.sim.metrics import CampaignResult, SimulationResult
from repro.trace.record import BranchType
from repro.trace.stats import TraceStats


def _stats(name, indirect_pk=2.0, poly=0.5, targets=None):
    total = 1_000_000
    indirect = int(indirect_pk * total / 1000)
    return TraceStats(
        name=name,
        total_instructions=total,
        counts_by_type={
            BranchType.CONDITIONAL: 150_000,
            BranchType.DIRECT_JUMP: 5_000,
            BranchType.DIRECT_CALL: 10_000,
            BranchType.INDIRECT_JUMP: indirect // 2,
            BranchType.INDIRECT_CALL: indirect - indirect // 2,
            BranchType.RETURN: 10_000,
        },
        targets_per_branch=targets or {0x1000: 1, 0x2000: 3},
        polymorphic_executions=int(poly * indirect),
        indirect_executions=indirect,
    )


def _campaign():
    campaign = CampaignResult()
    data = {
        "t1": {"BTB": 100, "VPC": 30, "ITTAGE": 10, "BLBP": 9},
        "t2": {"BTB": 300, "VPC": 90, "ITTAGE": 40, "BLBP": 45},
        "t3": {"BTB": 50, "VPC": 10, "ITTAGE": 2, "BLBP": 2},
    }
    for trace, per in data.items():
        for name, misses in per.items():
            campaign.add(
                SimulationResult(
                    trace_name=trace,
                    predictor_name=name,
                    total_instructions=1_000_000,
                    indirect_branches=1000,
                    indirect_mispredictions=misses,
                )
            )
    return campaign


class TestFigure1:
    def test_sorted_by_indirect(self):
        stats = [_stats("low", 1.0), _stats("high", 8.0), _stats("mid", 3.0)]
        rows = figure1(stats)
        assert [row["name"] for row in rows] == ["low", "mid", "high"]

    def test_categories_present(self):
        rows = figure1([_stats("x")])
        assert set(rows[0]) == {"name", "conditional", "direct", "return", "indirect"}

    def test_format(self):
        rendered = format_figure1([_stats("x", 2.0)])
        assert "Figure 1" in rendered and "x" in rendered


class TestFigure6:
    def test_ascending_order(self):
        stats = [_stats("a", poly=0.9), _stats("b", poly=0.1)]
        series = figure6(stats)
        assert series[0][0] == "b"
        assert series[0][1] <= series[1][1]

    def test_format(self):
        assert "%" in format_figure6([_stats("a", poly=0.5)])


class TestFigure7:
    def test_ccdf_starts_at_100(self):
        series = figure7([_stats("a")])
        assert series[0] == 100.0

    def test_monotone(self):
        series = figure7([_stats("a", targets={1: 1, 2: 5, 3: 30})])
        assert all(a >= b for a, b in zip(series, series[1:]))

    def test_format_mentions_threshold(self):
        rendered = format_figure7([_stats("a")])
        assert "50%" in rendered


class TestFigure8:
    def test_sorted_by_blbp(self):
        series = figure8(_campaign())
        blbp = series["BLBP"]
        assert blbp == sorted(blbp)

    def test_btb_omitted(self):
        series = figure8(_campaign())
        assert "BTB" not in series

    def test_format(self):
        rendered = format_figure8(_campaign())
        assert "ITTAGE" in rendered


class TestFigure9:
    def test_shares_sum_to_100(self):
        shares = figure9(_campaign())
        for i in range(len(shares["benchmarks"])):
            total = sum(shares[name][i] for name in ("BTB", "VPC", "ITTAGE", "BLBP"))
            assert total == pytest.approx(100.0)

    def test_btb_has_largest_share(self):
        shares = figure9(_campaign())
        for i in range(len(shares["benchmarks"])):
            assert shares["BTB"][i] == max(
                shares[name][i] for name in ("BTB", "VPC", "ITTAGE", "BLBP")
            )

    def test_format(self):
        assert "100%" in format_figure9(_campaign())
