"""Tests for per-category campaign breakdowns."""

import pytest

from repro.experiments.categories import (
    category_means,
    category_of,
    format_category_means,
)
from repro.sim.metrics import CampaignResult, SimulationResult


def _campaign(names):
    campaign = CampaignResult()
    for index, name in enumerate(names):
        for predictor, misses in (("BTB", 100 + index), ("BLBP", 10 + index)):
            campaign.add(
                SimulationResult(
                    trace_name=name,
                    predictor_name=predictor,
                    total_instructions=1_000_000,
                    indirect_branches=1000,
                    indirect_mispredictions=misses,
                )
            )
    return campaign


class TestCategoryOf:
    def test_known_traces(self):
        assert category_of("SHORT-MOBILE-1") == "mobile-short"
        assert category_of("spec2000.252_eon", by="source") == "SPEC CPU2000"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            category_of("NOT-A-TRACE")


class TestCategoryMeans:
    def test_groups_by_category(self):
        campaign = _campaign(
            ["SHORT-MOBILE-1", "SHORT-MOBILE-2", "SHORT-SERVER-1"]
        )
        means = category_means(campaign)
        assert set(means) == {"mobile-short", "server-short"}
        assert means["mobile-short"]["BLBP"] == pytest.approx(0.0105)

    def test_groups_by_source(self):
        campaign = _campaign(["spec2000.252_eon", "SHORT-MOBILE-1"])
        means = category_means(campaign, by="source")
        assert set(means) == {"SPEC CPU2000", "CBP-5"}

    def test_non_suite_traces_ignored(self):
        campaign = _campaign(["SHORT-MOBILE-1", "my-custom-trace"])
        means = category_means(campaign)
        assert set(means) == {"mobile-short"}

    def test_format(self):
        campaign = _campaign(["SHORT-MOBILE-1"])
        rendered = format_category_means(category_means(campaign))
        assert "mobile-short" in rendered
        assert "BLBP" in rendered
