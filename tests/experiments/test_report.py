"""Test for the one-shot markdown report generator (tiny scale)."""

from repro.experiments.report import generate_report


class TestGenerateReport:
    def test_report_end_to_end(self, tmp_path):
        path = generate_report(
            tmp_path / "report.md", scale=0.15, stride=44, sweep_stride=88
        )
        assert path.exists()
        text = path.read_text()
        for heading in (
            "# BLBP reproduction report",
            "## Headline",
            "## Per-group means",
            "## Optimization ablation",
            "## IBTB associativity",
            "## Figure data",
        ):
            assert heading in text
        # CSV figure data lands next to the report.
        for name in ("figure1.csv", "figure8.csv"):
            assert (tmp_path / name).exists()
        # The confidence interval is rendered.
        assert "% confidence" in text
