"""Tests for the validate and CSV paths of the CLI."""

from repro.cli import main


class TestValidateCommand:
    def test_validate_suite_sample(self, capsys):
        assert main(["validate", "--stride", "44", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "MI" in out

    def test_validate_trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "t.csv")
        main(["generate", "SHORT-MOBILE-2", "--out", path, "--scale", "0.3"])
        capsys.readouterr()
        assert main(["validate", "--traces", path]) == 0

    def test_validate_flags_bad_trace(self, tmp_path, capsys):
        # A hand-written contract violation: indirect-only trace.
        path = tmp_path / "bad.csv"
        lines = ["# name: bad"]
        for i in range(300):
            lines.append(f"0x50,indirect_jump,1,{hex(0x100 + (i % 3) * 0x44)},5")
        path.write_text("\n".join(lines) + "\n")
        assert main(["validate", "--traces", str(path)]) == 1
        out = capsys.readouterr().out
        assert "PROBLEMS" in out


class TestCsvGenerate:
    def test_csv_extension_writes_text_format(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        assert main(["generate", "SHORT-SERVER-3", "--out", str(path),
                     "--scale", "0.2"]) == 0
        first_line = path.read_text().splitlines()[0]
        assert first_line.startswith("# name:")

    def test_simulate_accepts_csv(self, tmp_path, capsys):
        path = str(tmp_path / "trace.csv")
        main(["generate", "SHORT-SERVER-3", "--out", path, "--scale", "0.2"])
        capsys.readouterr()
        assert main(["simulate", "--predictors", "BTB",
                     "--traces", path]) == 0
        assert "MEAN" in capsys.readouterr().out


class TestRegistryCommand:
    def test_lists_every_registered_predictor(self, capsys):
        from repro.registry import conditional_names, indirect_names

        assert main(["registry"]) == 0
        out = capsys.readouterr().out
        for name in indirect_names() + conditional_names():
            assert name in out
        # The footer ties the listing to the serve session configs.
        assert "repro serve" in out

    def test_json_rows_carry_fingerprints(self, capsys):
        import json as json_module

        from repro.registry import config_fingerprint

        assert main(["registry", "--json"]) == 0
        rows = json_module.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows if row["kind"] == "indirect"}
        assert by_name["BLBP"]["fingerprint"] == config_fingerprint("BLBP")
        assert by_name["BLBP"]["class"] == "BLBP"
        # Fingerprints separate configs that behave differently from a
        # cold start.
        assert by_name["BTB"]["fingerprint"] != by_name["2bit-BTB"]["fingerprint"]
