"""Tests for the validate and CSV paths of the CLI."""

from repro.cli import main


class TestValidateCommand:
    def test_validate_suite_sample(self, capsys):
        assert main(["validate", "--stride", "44", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "MI" in out

    def test_validate_trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "t.csv")
        main(["generate", "SHORT-MOBILE-2", "--out", path, "--scale", "0.3"])
        capsys.readouterr()
        assert main(["validate", "--traces", path]) == 0

    def test_validate_flags_bad_trace(self, tmp_path, capsys):
        # A hand-written contract violation: indirect-only trace.
        path = tmp_path / "bad.csv"
        lines = ["# name: bad"]
        for i in range(300):
            lines.append(f"0x50,indirect_jump,1,{hex(0x100 + (i % 3) * 0x44)},5")
        path.write_text("\n".join(lines) + "\n")
        assert main(["validate", "--traces", str(path)]) == 1
        out = capsys.readouterr().out
        assert "PROBLEMS" in out


class TestCsvGenerate:
    def test_csv_extension_writes_text_format(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        assert main(["generate", "SHORT-SERVER-3", "--out", str(path),
                     "--scale", "0.2"]) == 0
        first_line = path.read_text().splitlines()[0]
        assert first_line.startswith("# name:")

    def test_simulate_accepts_csv(self, tmp_path, capsys):
        path = str(tmp_path / "trace.csv")
        main(["generate", "SHORT-SERVER-3", "--out", path, "--scale", "0.2"])
        capsys.readouterr()
        assert main(["simulate", "--predictors", "BTB",
                     "--traces", path]) == 0
        assert "MEAN" in capsys.readouterr().out


class TestRegistryCommand:
    def test_lists_every_registered_predictor(self, capsys):
        from repro.registry import conditional_names, indirect_names

        assert main(["registry"]) == 0
        out = capsys.readouterr().out
        for name in indirect_names() + conditional_names():
            assert name in out
        # The footer ties the listing to the serve session configs.
        assert "repro serve" in out

    def test_json_rows_carry_fingerprints(self, capsys):
        import json as json_module

        from repro.registry import config_fingerprint

        assert main(["registry", "--json"]) == 0
        rows = json_module.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows if row["kind"] == "indirect"}
        assert by_name["BLBP"]["fingerprint"] == config_fingerprint("BLBP")
        assert by_name["BLBP"]["class"] == "BLBP"
        # Fingerprints separate configs that behave differently from a
        # cold start.
        assert by_name["BTB"]["fingerprint"] != by_name["2bit-BTB"]["fingerprint"]


class TestImportCommand:
    FIXTURE = "tests/fixtures/ingest/mini.champsim.txt"

    def test_import_writes_rptrace2(self, tmp_path, capsys):
        out = str(tmp_path / "mini.trace")
        assert main(["import", self.FIXTURE, "--out", out]) == 0
        text = capsys.readouterr().out
        assert "champsim-mini" in text and "80 records" in text
        from repro.trace.stream import read_trace

        assert len(read_trace(out)) == 80

    def test_reimport_skips_identical_spill(self, tmp_path, capsys):
        out = str(tmp_path / "mini.trace")
        assert main(["import", self.FIXTURE, "--out", out]) == 0
        assert main(["import", self.FIXTURE, "--out", out]) == 0
        assert "unchanged" in capsys.readouterr().out

    def test_rename_on_import(self, tmp_path, capsys):
        out = str(tmp_path / "mini.trace")
        assert main(["import", self.FIXTURE, "--out", out,
                     "--name", "renamed"]) == 0
        from repro.trace.stream import read_trace

        assert read_trace(out).name == "renamed"

    def test_missing_input_fails_cleanly(self, tmp_path, capsys):
        assert main(["import", str(tmp_path / "nope"), "--out",
                     str(tmp_path / "o.trace")]) == 1
        assert "import error" in capsys.readouterr().err


class TestTraceInfoCommand:
    def test_info_on_ingested_formats(self, capsys):
        assert main(["trace", "info",
                     "tests/fixtures/ingest/mini.champsim.txt",
                     "tests/fixtures/ingest/mini.gem5.txt"]) == 0
        out = capsys.readouterr().out
        assert "champsim-mini" in out and "gem5-mini" in out
        assert "content hash" in out
        assert "distinct indirect PCs" in out

    def test_info_error_sets_exit_code(self, tmp_path, capsys):
        missing = str(tmp_path / "absent.trace")
        assert main(["trace", "info", missing]) == 1
        assert "error" in capsys.readouterr().err


class TestSimulateExternalAndSampled:
    def test_simulate_champsim_file_directly(self, capsys):
        assert main(["simulate", "--traces",
                     "tests/fixtures/ingest/mini.champsim.txt",
                     "--predictors", "BTB"]) == 0
        assert "champsim-mini" in capsys.readouterr().out

    def test_sample_flag_prints_estimates(self, tmp_path, capsys):
        path = str(tmp_path / "t.trace")
        assert main(["generate", "SHORT-SERVER-1", "--out", path,
                     "--scale", "0.3"]) == 0
        assert main(["simulate", "--traces", path, "--predictors", "BTB",
                     "--sample", "2", "--sample-interval", "500"]) == 0
        out = capsys.readouterr().out
        assert "est MPKI" in out
        assert "reduction" in out

    def test_sample_checkpoint_dir(self, tmp_path, capsys):
        path = str(tmp_path / "t.trace")
        assert main(["generate", "SHORT-SERVER-1", "--out", path,
                     "--scale", "0.3"]) == 0
        capsys.readouterr()  # drop the generate output
        ckpt = tmp_path / "warm"
        argv = ["simulate", "--traces", path, "--predictors", "BTB",
                "--sample", "2", "--sample-interval", "500",
                "--sample-checkpoints", str(ckpt)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert list(ckpt.glob("*.ckpt.json"))
        assert main(argv) == 0
        assert capsys.readouterr().out == first  # warm run, same numbers
