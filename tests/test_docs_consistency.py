"""Documentation consistency checks.

DESIGN.md and the READMEs reference modules, benches, and examples by
path; these tests keep those references from rotting as the code moves.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _text(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignDoc:
    def test_referenced_modules_exist(self):
        text = _text("DESIGN.md")
        for dotted in set(re.findall(r"`(repro(?:\.\w+)+)`", text)):
            parts = dotted.split(".")
            candidates = [
                ROOT / "src" / Path(*parts) / "__init__.py",
                ROOT / "src" / Path(*parts[:-1]) / f"{parts[-1]}.py",
                # references like repro.experiments.figures.figure1 name
                # a function inside a module
                ROOT / "src" / Path(*parts[:-2]) / f"{parts[-2]}.py",
            ]
            assert any(c.exists() for c in candidates), dotted

    def test_referenced_benches_exist(self):
        text = _text("DESIGN.md")
        for bench in set(re.findall(r"benchmarks/(bench_\w+\.py)", text)):
            assert (ROOT / "benchmarks" / bench).exists(), bench

    def test_experiment_index_covers_all_paper_artifacts(self):
        text = _text("DESIGN.md")
        for artifact in ("Table 1", "Table 2", "Fig. 1", "Fig. 6", "Fig. 7",
                         "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11"):
            assert artifact in text, artifact


class TestReadme:
    def test_referenced_examples_exist(self):
        text = _text("README.md")
        for example in set(re.findall(r"examples/(\w+\.py)", text)):
            assert (ROOT / "examples" / example).exists(), example

    def test_mentions_all_deliverable_docs(self):
        text = _text("README.md")
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert name in text


class TestExperimentsDoc:
    def test_mentions_every_bench(self):
        text = _text("EXPERIMENTS.md")
        benches = sorted(
            path.name for path in (ROOT / "benchmarks").glob("bench_*.py")
        )
        for bench in benches:
            assert bench in text, f"{bench} missing from EXPERIMENTS.md"


class TestBenchmarksReadme:
    def test_table_lists_every_bench(self):
        text = _text("benchmarks/README.md")
        benches = sorted(
            path.name for path in (ROOT / "benchmarks").glob("bench_*.py")
        )
        for bench in benches:
            assert bench in text, f"{bench} missing from benchmarks/README.md"
