"""Tests for the derived plane, including the RAS differential property.

The derived plane re-implements the return-address-stack contract
without importing ``repro.sim`` (layering), so these tests pin the two
implementations together: precomputed RAS outcomes must equal a live
:class:`ReturnAddressStack` replay over arbitrary generated traces —
including deep recursion and call/return workloads, where overflow and
underflow actually happen.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.ras import ReturnAddressStack
from repro.trace.derived import (
    compute_derived,
    derived_path_for,
    load_or_compute_derived,
    read_derived,
    write_derived,
)
from repro.trace.plane import trace_content_hash, write_trace_v2
from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace
from repro.workloads import (
    CallReturnSpec,
    RecursiveSpec,
    generate_callret,
    generate_recursive,
)

_CALL_TYPES = (BranchType.DIRECT_CALL, BranchType.INDIRECT_CALL)


def _live_ras_outcomes(trace: Trace, depth: int):
    """Replay the real ReturnAddressStack exactly as the engine does."""
    predictions = []
    correct = []
    ras = ReturnAddressStack(depth)
    for record in trace.records():
        if record.branch_type is BranchType.RETURN:
            prediction = ras.predict()
            ras.pop()
            predictions.append(prediction)
            correct.append(prediction == record.target)
        elif record.branch_type in _CALL_TYPES:
            ras.push(record.pc + 4)
    return predictions, correct


def _assert_ras_equivalent(trace: Trace, depth: int) -> None:
    plane = compute_derived(trace, depth)
    live_preds, live_ok = _live_ras_outcomes(trace, depth)
    assert plane.return_predictions() == live_preds
    assert [bool(flag) for flag in plane.return_ok] == live_ok
    assert len(plane.return_idx) == len(live_preds)


def _recompute_after_barrier(barrier, spill_path: str) -> None:
    """Worker for the two-process cache-write collision test."""
    from repro.trace.stream import read_trace

    trace = read_trace(spill_path)
    barrier.wait()
    load_or_compute_derived(trace, spill_path, 32)


@st.composite
def branch_records(draw):
    branch_type = draw(st.sampled_from(list(BranchType)))
    # Only conditionals may be not-taken; BranchRecord enforces this.
    taken = draw(st.booleans()) if branch_type.is_conditional else True
    return BranchRecord(
        pc=draw(st.integers(min_value=0, max_value=(1 << 32) - 1)),
        branch_type=branch_type,
        taken=taken,
        target=draw(st.integers(min_value=0, max_value=(1 << 32) - 1)),
        inst_gap=draw(st.integers(min_value=0, max_value=20)),
    )


class TestRasDifferential:
    @given(
        records=st.lists(branch_records(), max_size=120),
        depth=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_live_ras_on_arbitrary_traces(self, records, depth):
        trace = Trace.from_records("hyp", records)
        _assert_ras_equivalent(trace, depth)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           depth=st.sampled_from([1, 2, 8, 32]))
    @settings(max_examples=12, deadline=None)
    def test_matches_live_ras_on_recursive_workloads(self, seed, depth):
        # Deep recursion overflows a shallow RAS: the drop-oldest rule
        # and underflow predictions both get exercised for real.
        trace = generate_recursive(
            RecursiveSpec(name="rec", seed=seed, num_records=1500, max_depth=16)
        )
        _assert_ras_equivalent(trace, depth)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           depth=st.sampled_from([1, 4, 32]))
    @settings(max_examples=12, deadline=None)
    def test_matches_live_ras_on_callret_workloads(self, seed, depth):
        trace = generate_callret(
            CallReturnSpec(name="cr", seed=seed, num_records=1500)
        )
        _assert_ras_equivalent(trace, depth)


class TestDerivedStructure:
    def test_indirect_arrays(self, tiny_trace):
        plane = compute_derived(tiny_trace, 32)
        mask = tiny_trace.indirect_mask()
        assert np.array_equal(plane.indirect_idx, np.flatnonzero(mask))
        assert np.array_equal(plane.indirect_pcs, tiny_trace.pcs[mask])
        assert np.array_equal(plane.indirect_targets, tiny_trace.targets[mask])

    def test_conditional_bitstream(self, vdispatch_trace):
        plane = compute_derived(vdispatch_trace, 32)
        expected = vdispatch_trace.takens[vdispatch_trace.types == 0]
        assert plane.conditionals == len(expected)
        assert np.array_equal(plane.conditional_outcomes(), expected)

    def test_pc_groups_partition_indirects(self, switchcase_trace):
        plane = compute_derived(switchcase_trace, 32)
        groups = plane.pc_groups()
        ordinals = np.sort(np.concatenate(list(groups.values())))
        assert np.array_equal(ordinals, np.arange(len(plane.indirect_idx)))
        for pc, members in groups.items():
            assert all(int(plane.indirect_pcs[m]) == pc for m in members)

    def test_empty_trace(self):
        plane = compute_derived(Trace.from_records("empty", []), 32)
        assert plane.records == 0
        assert plane.conditionals == 0
        assert len(plane.indirect_idx) == 0
        assert plane.pc_groups() == {}

    def test_bad_ras_depth_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            compute_derived(tiny_trace, 0)


class TestDiskCache:
    def test_round_trip(self, callret_trace, tmp_path):
        plane = compute_derived(callret_trace, 32)
        path = tmp_path / "t.plane"
        write_derived(plane, path)
        loaded = read_derived(path)
        assert loaded.trace_name == plane.trace_name
        assert loaded.ras_depth == 32
        assert loaded.content_hash == plane.content_hash
        assert loaded.conditionals == plane.conditionals
        for column in (
            "indirect_idx", "indirect_pcs", "indirect_targets", "cond_idx",
            "cond_bits", "return_idx", "return_preds", "return_pred_valid",
            "return_ok", "pc_unique", "pc_offsets", "pc_order",
        ):
            assert np.array_equal(getattr(loaded, column), getattr(plane, column))

    def test_load_or_compute_writes_then_reuses(self, callret_trace, tmp_path):
        spill = tmp_path / "t.trace"
        write_trace_v2(callret_trace, spill)
        cache_path = derived_path_for(spill, 32)
        assert not cache_path.exists()
        first = load_or_compute_derived(callret_trace, spill, 32)
        assert cache_path.exists()
        stamp = cache_path.stat().st_mtime_ns
        second = load_or_compute_derived(callret_trace, spill, 32)
        assert cache_path.stat().st_mtime_ns == stamp  # no rewrite
        assert np.array_equal(first.return_preds, second.return_preds)

    def test_depths_cached_separately(self, callret_trace, tmp_path):
        spill = tmp_path / "t.trace"
        write_trace_v2(callret_trace, spill)
        load_or_compute_derived(callret_trace, spill, 2)
        load_or_compute_derived(callret_trace, spill, 32)
        assert derived_path_for(spill, 2).exists()
        assert derived_path_for(spill, 32).exists()
        assert derived_path_for(spill, 2) != derived_path_for(spill, 32)

    def test_stale_cache_recomputed(self, callret_trace, tiny_trace, tmp_path):
        spill = tmp_path / "t.trace"
        write_trace_v2(callret_trace, spill)
        cache_path = derived_path_for(spill, 32)
        # Plant a plane for a different trace under the same cache name.
        write_derived(compute_derived(tiny_trace, 32), cache_path)
        plane = load_or_compute_derived(callret_trace, spill, 32)
        assert plane.trace_name == callret_trace.name
        assert plane.content_hash == trace_content_hash(callret_trace)

    def test_write_does_not_claim_fixed_tmp_name(
        self, callret_trace, tmp_path
    ):
        """Staging must use a unique sibling, not ``<name>.tmp``.

        With a fixed staging name, two writers racing on the same cache
        path truncate each other's partial file and one publishes a torn
        plane.  A foreign ``.tmp`` file standing in for the other
        writer's staging file must survive the write untouched.
        """
        path = tmp_path / "t.plane"
        decoy = tmp_path / "t.plane.tmp"
        decoy.write_bytes(b"another writer's staging bytes")
        write_derived(compute_derived(callret_trace, 32), path)
        assert decoy.read_bytes() == b"another writer's staging bytes"
        assert read_derived(path).trace_name == callret_trace.name

    def test_concurrent_recompute_publishes_valid_plane(
        self, callret_trace, tmp_path
    ):
        """Two processes recomputing the same plane never tear the file."""
        import multiprocessing

        spill = tmp_path / "t.trace"
        write_trace_v2(callret_trace, spill)
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        workers = [
            context.Process(
                target=_recompute_after_barrier, args=(barrier, str(spill))
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        plane = read_derived(derived_path_for(spill, 32))
        assert plane.trace_name == callret_trace.name
        assert plane.content_hash == trace_content_hash(callret_trace)

    def test_damaged_cache_recomputed(self, callret_trace, tmp_path):
        spill = tmp_path / "t.trace"
        write_trace_v2(callret_trace, spill)
        cache_path = derived_path_for(spill, 32)
        cache_path.write_bytes(b"garbage, not a derived plane")
        plane = load_or_compute_derived(callret_trace, spill, 32)
        assert plane.trace_name == callret_trace.name
        # And the damaged file was replaced with a good one.
        assert read_derived(cache_path).trace_name == callret_trace.name
