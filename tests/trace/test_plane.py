"""Tests for the RPTRACE2 zero-copy spill format and the TraceCache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.plane import (
    TraceCache,
    attach_trace,
    read_header_v2,
    spilled_hash,
    trace_content_hash,
    write_trace_v2,
)
from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace, read_trace, write_trace, write_trace_v1


def _columns_equal(left: Trace, right: Trace) -> bool:
    return all(
        np.array_equal(getattr(left, column), getattr(right, column))
        for column in ("pcs", "types", "takens", "targets", "gaps")
    )


class TestRoundTrip:
    def test_v2_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace_v2(tiny_trace, path)
        loaded = attach_trace(path)
        assert loaded.name == tiny_trace.name
        assert _columns_equal(tiny_trace, loaded)

    def test_write_trace_defaults_to_v2(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(tiny_trace, path)
        assert path.read_bytes()[:8] == b"RPTRACE2"
        assert _columns_equal(tiny_trace, read_trace(path))

    def test_read_trace_still_reads_v1(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace_v1(tiny_trace, path)
        assert path.read_bytes()[:8] == b"RPTRACE1"
        assert _columns_equal(tiny_trace, read_trace(path))

    def test_attach_is_memmap_backed(self, callret_trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace_v2(callret_trace, path)
        loaded = attach_trace(path)
        for column in (loaded.pcs, loaded.types, loaded.targets, loaded.gaps):
            backing = column if column.base is None else column.base
            assert isinstance(backing, np.memmap)
        assert loaded.takens.dtype == bool

    def test_empty_trace(self, tmp_path):
        empty = Trace.from_records("empty", [])
        path = tmp_path / "e.trace"
        write_trace_v2(empty, path)
        loaded = attach_trace(path)
        assert len(loaded) == 0 and loaded.name == "empty"

    def test_non_ascii_name(self, tmp_path):
        record = BranchRecord(0x10, BranchType.DIRECT_JUMP, True, 0x20, 1)
        trace = Trace.from_records("trače-ü", [record])
        path = tmp_path / "u.trace"
        write_trace_v2(trace, path)
        assert attach_trace(path).name == "trače-ü"

    def test_column_offsets_are_aligned(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace_v2(tiny_trace, path)
        header = read_header_v2(path)
        for entry in header["columns"]:
            assert entry["offset"] % 64 == 0

    def test_not_a_trace_file_raises(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"definitely not a trace")
        with pytest.raises(ValueError):
            attach_trace(path)
        with pytest.raises(ValueError):
            read_trace(path)


class TestContentHash:
    def test_hash_matches_header(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        returned = write_trace_v2(tiny_trace, path)
        assert returned == trace_content_hash(tiny_trace)
        assert spilled_hash(path) == returned

    def test_hash_changes_with_contents(self, tiny_trace):
        other = Trace(
            name=tiny_trace.name,
            pcs=tiny_trace.pcs,
            types=tiny_trace.types,
            takens=tiny_trace.takens,
            targets=tiny_trace.targets + np.uint64(4),
            gaps=tiny_trace.gaps,
        )
        assert trace_content_hash(other) != trace_content_hash(tiny_trace)

    def test_hash_changes_with_name(self, tiny_trace):
        renamed = Trace(
            name="other",
            pcs=tiny_trace.pcs,
            types=tiny_trace.types,
            takens=tiny_trace.takens,
            targets=tiny_trace.targets,
            gaps=tiny_trace.gaps,
        )
        assert trace_content_hash(renamed) != trace_content_hash(tiny_trace)

    def test_spilled_hash_none_for_v1_or_missing(self, tiny_trace, tmp_path):
        v1 = tmp_path / "v1.trace"
        write_trace_v1(tiny_trace, v1)
        assert spilled_hash(v1) is None
        assert spilled_hash(tmp_path / "missing.trace") is None


class TestTraceCache:
    def test_hit_returns_same_object(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace_v2(tiny_trace, path)
        cache = TraceCache(capacity=2)
        first = cache.get(path)
        second = cache.get(path)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_rewrite_invalidates(self, tiny_trace, callret_trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace_v2(tiny_trace, path)
        cache = TraceCache(capacity=2)
        cache.get(path)
        write_trace_v2(callret_trace, path)
        reloaded = cache.get(path)
        assert reloaded.name == callret_trace.name
        assert cache.misses == 2
        assert len(cache) == 1  # stale generation evicted, not retained

    def test_lru_eviction(self, tiny_trace, tmp_path):
        paths = []
        for i in range(3):
            path = tmp_path / f"{i}.trace"
            write_trace_v2(tiny_trace, path)
            paths.append(path)
        cache = TraceCache(capacity=2)
        for path in paths:
            cache.get(path)
        assert len(cache) == 2
        cache.get(paths[0])  # evicted -> miss again
        assert cache.misses == 4

    def test_same_tick_same_size_rewrite_invalidates(
        self, tiny_trace, tmp_path
    ):
        """A rewrite the stat key cannot see must still miss.

        Same record count and name give an identical file size, and the
        mtime is pinned back to the original's, simulating a coarse-
        granularity filesystem where a rewrite lands within one tick.
        Only the header content-hash check can catch this.
        """
        import os

        path = tmp_path / "t.trace"
        write_trace_v2(tiny_trace, path)
        stat = os.stat(path)
        cache = TraceCache(capacity=2)
        cache.get(path)
        shifted = Trace(
            name=tiny_trace.name,
            pcs=tiny_trace.pcs,
            types=tiny_trace.types,
            takens=tiny_trace.takens,
            targets=tiny_trace.targets + np.uint64(4),
            gaps=tiny_trace.gaps,
        )
        write_trace_v2(shifted, path)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        after = os.stat(path)
        assert (after.st_size, after.st_mtime_ns) == (
            stat.st_size, stat.st_mtime_ns,
        )  # the stat key really is blind to this rewrite
        reloaded = cache.get(path)
        assert np.array_equal(reloaded.targets, shifted.targets)
        assert cache.misses == 2
        assert len(cache) == 1

    def test_reads_v1_spills_too(self, tiny_trace, tmp_path):
        path = tmp_path / "v1.trace"
        write_trace_v1(tiny_trace, path)
        cache = TraceCache(capacity=2)
        assert _columns_equal(tiny_trace, cache.get(path))

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceCache(capacity=0)
