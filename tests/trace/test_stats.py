"""Unit tests for repro.trace.stats (Figures 1/6/7 inputs)."""

import pytest

from repro.trace.record import BranchRecord, BranchType
from repro.trace.stats import aggregate_target_ccdf, compute_stats
from repro.trace.stream import Trace


def _indirect(pc, target, gap=9):
    return BranchRecord(pc, BranchType.INDIRECT_JUMP, True, target, gap)


def _make_trace(records):
    return Trace.from_records("stats-test", records)


class TestComputeStats:
    def test_counts_by_type(self, tiny_trace):
        stats = compute_stats(tiny_trace)
        assert stats.counts_by_type[BranchType.CONDITIONAL] == 2
        assert stats.counts_by_type[BranchType.INDIRECT_CALL] == 1
        assert stats.indirect_executions == 2

    def test_per_kilo(self):
        # 1 indirect branch, 999 instructions of gap -> 1000 total.
        trace = _make_trace([_indirect(0x100, 0x200, gap=999)])
        stats = compute_stats(trace)
        assert stats.per_kilo(BranchType.INDIRECT_JUMP) == pytest.approx(1.0)

    def test_monomorphic_branch_not_polymorphic(self):
        trace = _make_trace([_indirect(0x100, 0x200)] * 5)
        stats = compute_stats(trace)
        assert stats.polymorphic_fraction() == 0.0
        assert stats.targets_per_branch[0x100] == 1

    def test_polymorphic_branch_counts_all_executions(self):
        records = [_indirect(0x100, 0x200), _indirect(0x100, 0x300)] * 3
        stats = compute_stats(_make_trace(records))
        # All 6 executions come from a branch that ends with 2 targets.
        assert stats.polymorphic_fraction() == 1.0
        assert stats.targets_per_branch[0x100] == 2

    def test_mixed_population(self):
        records = (
            [_indirect(0x100, 0x200)] * 6             # monomorphic
            + [_indirect(0x900, 0x200), _indirect(0x900, 0x300)]  # poly
        )
        stats = compute_stats(_make_trace(records))
        assert stats.polymorphic_fraction() == pytest.approx(2 / 8)

    def test_ccdf_monotone_non_increasing(self):
        records = [
            _indirect(0x100, 0x200),
            _indirect(0x100, 0x300),
            _indirect(0x100, 0x400),
            _indirect(0x500, 0x200),
        ]
        stats = compute_stats(_make_trace(records))
        ccdf = stats.target_count_ccdf()
        assert ccdf[0] == 100.0
        for a, b in zip(ccdf, ccdf[1:]):
            assert a >= b

    def test_ccdf_values(self):
        records = [
            _indirect(0x100, 0x200),
            _indirect(0x100, 0x300),
            _indirect(0x500, 0x200),
        ]
        stats = compute_stats(_make_trace(records))
        ccdf = stats.target_count_ccdf()
        assert ccdf[0] == 100.0   # both branches have >= 1 target
        assert ccdf[1] == 50.0    # one of two has >= 2

    def test_empty_indirect_population(self):
        trace = _make_trace(
            [BranchRecord(0x10, BranchType.CONDITIONAL, True, 0x20, 3)]
        )
        stats = compute_stats(trace)
        assert stats.polymorphic_fraction() == 0.0
        assert stats.target_count_ccdf() == [0.0] * 64


class TestAggregateCCDF:
    def test_pools_across_traces(self):
        trace_a = _make_trace([_indirect(0x100, 0x200)])
        trace_b = _make_trace(
            [_indirect(0x100, 0x200), _indirect(0x100, 0x300)]
        )
        stats = [compute_stats(trace_a), compute_stats(trace_b)]
        ccdf = aggregate_target_ccdf(stats)
        assert ccdf[0] == 100.0
        assert ccdf[1] == 50.0  # one of the two static branches has >= 2

    def test_empty(self):
        assert aggregate_target_ccdf([]) == [0.0] * 64
