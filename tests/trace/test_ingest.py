"""Tests for the external-trace ingestion adapters."""

from pathlib import Path

import numpy as np
import pytest

from repro.trace.ingest import (
    IngestError,
    detect_format,
    load_any_trace,
    read_champsim_trace,
    read_gem5_trace,
    write_champsim_trace,
    write_gem5_trace,
)
from repro.trace.record import BranchType
from repro.trace.stream import write_trace
from repro.trace.textio import write_text_trace

FIXTURES = Path(__file__).parent.parent / "fixtures" / "ingest"
CHAMPSIM_FIXTURE = FIXTURES / "mini.champsim.txt"
GEM5_FIXTURE = FIXTURES / "mini.gem5.txt"


def _assert_traces_equal(left, right):
    assert left.name == right.name
    np.testing.assert_array_equal(left.pcs, right.pcs)
    np.testing.assert_array_equal(left.types, right.types)
    np.testing.assert_array_equal(left.takens, right.takens)
    np.testing.assert_array_equal(left.targets, right.targets)
    np.testing.assert_array_equal(left.gaps, right.gaps)


class TestChampsimFixture:
    def test_parses(self):
        trace = read_champsim_trace(CHAMPSIM_FIXTURE)
        assert trace.name == "champsim-mini"
        assert len(trace) == 80
        # The fixture exercises every branch class.
        for branch_type in BranchType:
            assert trace.count_of(branch_type) > 0

    def test_bare_and_prefixed_hex_agree(self):
        trace = read_champsim_trace(CHAMPSIM_FIXTURE)
        # Line 1 writes the loop pc bare ("400100"), line 2 the dispatch
        # pc 0x-prefixed ("0x400200"); both must land as hex.
        assert trace[0].pc == 0x400100
        assert trace[1].pc == 0x400200

    def test_explicit_name_wins(self):
        trace = read_champsim_trace(CHAMPSIM_FIXTURE, name="renamed")
        assert trace.name == "renamed"

    def test_round_trip(self, tmp_path):
        trace = read_champsim_trace(CHAMPSIM_FIXTURE)
        out = tmp_path / "again.champsim.txt"
        write_champsim_trace(trace, out)
        _assert_traces_equal(read_champsim_trace(out), trace)


class TestChampsimParsing:
    def _load(self, tmp_path, text, **kwargs):
        path = tmp_path / "t.champsim.txt"
        path.write_text(text)
        return read_champsim_trace(path, **kwargs)

    def test_taken_spellings(self, tmp_path):
        trace = self._load(
            tmp_path,
            "100 200 T BRANCH_CONDITIONAL\n"
            "100 200 N BRANCH_CONDITIONAL\n"
            "100 200 1 BRANCH_CONDITIONAL\n"
            "100 200 0 BRANCH_CONDITIONAL\n",
        )
        assert trace.takens.tolist() == [True, False, True, False]

    def test_gap_optional(self, tmp_path):
        trace = self._load(
            tmp_path,
            "100 200 1 BRANCH_CONDITIONAL\n100 200 1 BRANCH_CONDITIONAL 7\n",
        )
        assert trace.gaps.tolist() == [0, 7]

    def test_branch_indirect_maps_to_indirect_jump(self, tmp_path):
        trace = self._load(tmp_path, "100 200 1 BRANCH_INDIRECT\n")
        assert trace[0].branch_type is BranchType.INDIRECT_JUMP

    def test_prefixless_and_case_insensitive_types(self, tmp_path):
        trace = self._load(
            tmp_path,
            "100 200 1 indirect_call\n100 200 1 branch_return\n",
        )
        assert trace[0].branch_type is BranchType.INDIRECT_CALL
        assert trace[1].branch_type is BranchType.RETURN

    def test_unknown_class_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="line 1.*branch class"):
            self._load(tmp_path, "100 200 1 BRANCH_MAGIC\n")

    def test_bad_field_count_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="4 or 5 fields"):
            self._load(tmp_path, "100 200 1\n")

    def test_not_taken_unconditional_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="must be taken"):
            self._load(tmp_path, "100 200 0 BRANCH_RETURN\n")

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="no branch records"):
            self._load(tmp_path, "# only a comment\n")


class TestGem5Fixture:
    def test_parses_and_skips_noise(self):
        trace = read_gem5_trace(GEM5_FIXTURE)
        assert trace.name == "gem5-mini"
        # 48 branch records; fetch-noise and stats-banner lines skipped.
        assert len(trace) == 48
        for branch_type in BranchType:
            assert trace.count_of(branch_type) > 0

    def test_icount_deltas_become_gaps(self):
        trace = read_gem5_trace(GEM5_FIXTURE)
        # The fixture writes icount deltas of 3 + (i + j) % 5; each gap
        # is delta - 1 (the delta includes the branch itself).
        assert trace[1].inst_gap == (3 + 1) - 1

    def test_round_trip(self, tmp_path):
        trace = read_gem5_trace(GEM5_FIXTURE)
        out = tmp_path / "again.gem5.txt"
        write_gem5_trace(trace, out)
        _assert_traces_equal(read_gem5_trace(out), trace)


class TestGem5Parsing:
    def _load(self, tmp_path, text, **kwargs):
        path = tmp_path / "t.gem5.txt"
        path.write_text(text)
        return read_gem5_trace(path, **kwargs)

    def test_explicit_gap_wins_over_icount(self, tmp_path):
        trace = self._load(
            tmp_path,
            "5: cpu: pc=0x10 target=0x20 taken=1 type=CondCtrl gap=9\n",
        )
        assert trace[0].inst_gap == 9

    def test_missing_required_key_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="missing taken"):
            self._load(tmp_path, "5: cpu: pc=0x10 target=0x20 type=Cond\n")

    def test_unknown_flavor_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="control flavor"):
            self._load(
                tmp_path,
                "5: cpu: pc=0x10 target=0x20 taken=1 type=WarpCtrl\n",
            )

    def test_icount_backwards_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="icount went backwards"):
            self._load(
                tmp_path,
                "5: cpu: pc=0x10 target=0x20 taken=1 type=CondCtrl "
                "icount=50\n"
                "6: cpu: pc=0x10 target=0x20 taken=1 type=CondCtrl "
                "icount=40\n",
            )

    def test_shorthand_flavors(self, tmp_path):
        trace = self._load(
            tmp_path,
            "5: cpu: pc=0x10 target=0x20 taken=1 type=indirect\n"
            "6: cpu: pc=0x10 target=0x20 taken=1 type=call\n",
        )
        assert trace[0].branch_type is BranchType.INDIRECT_JUMP
        assert trace[1].branch_type is BranchType.DIRECT_CALL


class TestDetectFormat:
    def test_magic_wins(self, tmp_path, tiny_trace):
        path = tmp_path / "t.gem5.txt"  # misleading suffix
        write_trace(tiny_trace, path)
        assert detect_format(path) == "rptrace"

    def test_suffix_hints(self):
        assert detect_format(CHAMPSIM_FIXTURE) == "champsim"
        assert detect_format(GEM5_FIXTURE) == "gem5"

    def test_content_sniffing(self, tmp_path, tiny_trace):
        csv = tmp_path / "mystery1"
        write_text_trace(tiny_trace, csv)
        assert detect_format(csv) == "csv"
        champsim = tmp_path / "mystery2"
        write_champsim_trace(tiny_trace, champsim)
        assert detect_format(champsim) == "champsim"
        gem5 = tmp_path / "mystery3"
        gem5.write_text("5: cpu: pc=0x10 target=0x20 taken=1 type=Cond\n")
        assert detect_format(gem5) == "gem5"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty"
        path.write_text("# nothing\n")
        with pytest.raises(IngestError, match="empty file"):
            detect_format(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_text("one two three four five six seven\n")
        with pytest.raises(IngestError, match="unrecognized"):
            detect_format(path)


class TestLoadAnyTrace:
    def test_all_formats_yield_same_columns(self, tmp_path, tiny_trace):
        spill = tmp_path / "t.trace"
        write_trace(tiny_trace, spill)
        csv = tmp_path / "t.csv"
        write_text_trace(tiny_trace, csv)
        champsim = tmp_path / "t.champsim.txt"
        write_champsim_trace(tiny_trace, champsim)
        gem5 = tmp_path / "t.gem5.txt"
        write_gem5_trace(tiny_trace, gem5)
        for path in (spill, csv, champsim, gem5):
            _assert_traces_equal(load_any_trace(path), tiny_trace)

    def test_rename_on_load(self, tmp_path, tiny_trace):
        spill = tmp_path / "t.trace"
        write_trace(tiny_trace, spill)
        assert load_any_trace(spill, name="other").name == "other"

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="unknown trace format"):
            load_any_trace(CHAMPSIM_FIXTURE, format="elf")
