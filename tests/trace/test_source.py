"""Tests for the TraceSource provenance layer."""

import numpy as np
import pytest

from repro.trace.ingest import write_champsim_trace
from repro.trace.plane import read_header_v2, trace_content_hash
from repro.trace.source import (
    FileSource,
    MaterializedSource,
    SampledSource,
    SourceError,
    TraceSource,
    WorkloadSource,
    as_source,
)
from repro.trace.stream import Trace, read_trace, write_trace
from repro.workloads import VirtualDispatchSpec


class _CountingSpec:
    """A workload-spec double that counts generate() calls."""

    name = "counting"

    def __init__(self, trace: Trace) -> None:
        self._trace = trace
        self.calls = 0

    def generate(self) -> Trace:
        self.calls += 1
        return self._trace


def _renamed(trace: Trace, name: str) -> Trace:
    return Trace(
        name, trace.pcs, trace.types, trace.takens, trace.targets,
        trace.gaps,
    )


class TestAsSource:
    def test_source_passes_through(self, tiny_trace):
        source = MaterializedSource(tiny_trace)
        assert as_source(source) is source

    def test_trace_wraps(self, tiny_trace):
        source = as_source(tiny_trace)
        assert isinstance(source, MaterializedSource)
        assert source.trace() is tiny_trace

    def test_spec_wraps(self, tiny_trace):
        source = as_source(_CountingSpec(_renamed(tiny_trace, "counting")))
        assert isinstance(source, WorkloadSource)

    def test_suite_entry_wraps(self):
        from repro.workloads.suite import suite88_specs

        entry = suite88_specs(0.02)[0]
        source = as_source(entry)
        assert source.name == entry.name

    def test_garbage_rejected(self):
        with pytest.raises(SourceError, match="cannot interpret"):
            as_source(42)


class TestMaterializedSource:
    def test_identity(self, tiny_trace):
        source = MaterializedSource(tiny_trace)
        assert source.name == tiny_trace.name
        assert len(source) == len(tiny_trace)
        assert source.content_hash() == trace_content_hash(tiny_trace)

    def test_release_keeps_trace(self, tiny_trace):
        source = MaterializedSource(tiny_trace)
        source.release()
        assert source.trace() is tiny_trace


class TestWorkloadSource:
    def test_lazy_and_memoized(self, tiny_trace):
        spec = _CountingSpec(_renamed(tiny_trace, "counting"))
        source = WorkloadSource(spec)
        assert spec.calls == 0
        source.trace()
        source.trace()
        assert spec.calls == 1

    def test_release_regenerates(self, tiny_trace):
        spec = _CountingSpec(_renamed(tiny_trace, "counting"))
        source = WorkloadSource(spec)
        source.trace()
        source.release()
        source.trace()
        assert spec.calls == 2

    def test_name_without_generation(self, tiny_trace):
        spec = _CountingSpec(_renamed(tiny_trace, "counting"))
        source = WorkloadSource(spec)
        assert source.name == "counting"
        assert spec.calls == 0

    def test_name_mismatch_rejected(self, tiny_trace):
        spec = _CountingSpec(tiny_trace)  # generates a non-"counting" name
        with pytest.raises(SourceError, match="must match"):
            WorkloadSource(spec).trace()

    def test_non_spec_rejected(self):
        with pytest.raises(SourceError, match="not a workload spec"):
            WorkloadSource(object())

    def test_matches_eager_generation(self):
        spec = VirtualDispatchSpec(
            name="vd", num_records=500, num_types=4, num_sites=2, seed=11,
        )
        eager = spec.generate()
        lazy = WorkloadSource(spec).trace()
        assert trace_content_hash(lazy) == trace_content_hash(eager)


class TestFileSource:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SourceError, match="does not exist"):
            FileSource(tmp_path / "nope.trace")

    def test_rptrace2_header_answers_identity_lazily(
        self, tiny_trace, tmp_path
    ):
        path = tmp_path / "t.trace"
        write_trace(tiny_trace, path)
        source = FileSource(path)
        # Name, length, and hash all come from the header...
        assert source.name == tiny_trace.name
        assert len(source) == len(tiny_trace)
        assert source.content_hash() == trace_content_hash(tiny_trace)
        # ... without having materialized the columns.
        assert source._trace is None

    def test_rename_invalidates_header_hash(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(tiny_trace, path)
        source = FileSource(path, name="other")
        header_hash = read_header_v2(path)["content_hash"]
        assert source.content_hash() != header_hash
        assert source.content_hash() == trace_content_hash(
            _renamed(tiny_trace, "other")
        )

    def test_ingested_format(self, tiny_trace, tmp_path):
        path = tmp_path / "t.champsim.txt"
        write_champsim_trace(tiny_trace, path)
        source = FileSource(path)
        np.testing.assert_array_equal(source.trace().pcs, tiny_trace.pcs)


class TestSpill:
    def test_spill_writes_then_skips(self, tiny_trace, tmp_path):
        source = MaterializedSource(tiny_trace)
        path = tmp_path / "t.trace"
        assert source.spill(path) is True
        stamp = path.stat().st_mtime_ns
        assert source.spill(path) is False
        assert path.stat().st_mtime_ns == stamp

    def test_spill_bytes_match_direct_write(self, tiny_trace, tmp_path):
        from repro.exec.plan import spill_trace

        direct = tmp_path / "direct.trace"
        spill_trace(tiny_trace, direct)
        via_source = tmp_path / "source.trace"
        MaterializedSource(tiny_trace).spill(via_source)
        assert direct.read_bytes() == via_source.read_bytes()

    def test_stale_spill_rewritten(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(_renamed(tiny_trace, "old"), path)
        assert MaterializedSource(tiny_trace).spill(path) is True
        assert read_trace(path).name == tiny_trace.name


class TestSampledSource:
    def test_name_encodes_parameters(self, vdispatch_trace):
        source = SampledSource(
            vdispatch_trace, interval_records=500, regions=3
        )
        assert source.name == f"{vdispatch_trace.name}~s3x500"

    def test_materializes_measured_windows(self, vdispatch_trace):
        source = SampledSource(
            vdispatch_trace, interval_records=500, regions=3
        )
        plan = source.plan()
        sampled = source.trace()
        assert len(sampled) == plan.measured_records
        # The first sampled record is the first region's start record.
        first = plan.regions[0]
        assert sampled[0].pc == vdispatch_trace[first.start].pc

    def test_wraps_any_source(self, vdispatch_trace):
        nested = SampledSource(
            MaterializedSource(vdispatch_trace), interval_records=500
        )
        assert isinstance(nested.base, TraceSource)
        assert len(nested) > 0

    def test_validation(self, vdispatch_trace):
        with pytest.raises(SourceError, match="interval_records"):
            SampledSource(vdispatch_trace, interval_records=0)
        with pytest.raises(SourceError, match="regions"):
            SampledSource(vdispatch_trace, regions=0)
        with pytest.raises(SourceError, match="warmup_intervals"):
            SampledSource(vdispatch_trace, warmup_intervals=-1)
