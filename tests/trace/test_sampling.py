"""Tests for simpoint-style trace sampling."""

import numpy as np
import pytest

from repro.trace.record import BranchType
from repro.trace.sampling import (
    PC_PROFILE_BUCKETS,
    interval_features,
    kmedoids,
    representative_window,
    simpoint_plan,
    systematic_sample,
    window,
)
from repro.trace.stream import Trace


def _uniform_trace(records: int, name: str = "uniform") -> Trace:
    """Every record identical: one conditional, always taken, gap 3."""
    return Trace(
        name=name,
        pcs=np.full(records, 0x4000, dtype=np.uint64),
        types=np.zeros(records, dtype=np.uint8),
        takens=np.ones(records, dtype=bool),
        targets=np.full(records, 0x4010, dtype=np.uint64),
        gaps=np.full(records, 3, dtype=np.uint32),
    )


class TestWindow:
    def test_extracts_records(self, vdispatch_trace):
        cut = window(vdispatch_trace, 100, 50)
        assert len(cut) == 50
        assert cut[0] == vdispatch_trace[100]

    def test_clamps_at_end(self, vdispatch_trace):
        cut = window(vdispatch_trace, len(vdispatch_trace) - 10, 50)
        assert len(cut) == 10

    def test_names_carry_bounds(self, vdispatch_trace):
        cut = window(vdispatch_trace, 5, 10)
        assert "[5:15]" in cut.name

    def test_validation(self, vdispatch_trace):
        with pytest.raises(ValueError):
            window(vdispatch_trace, -1, 10)
        with pytest.raises(ValueError):
            window(vdispatch_trace, 0, 0)
        with pytest.raises(ValueError):
            window(vdispatch_trace, 10**9, 10)


class TestSystematicSample:
    def test_length(self, vdispatch_trace):
        sampled = systematic_sample(vdispatch_trace, 100, 5)
        assert len(sampled) == 500

    def test_covers_span(self, vdispatch_trace):
        sampled = systematic_sample(vdispatch_trace, 50, 4)
        # Last sampled pc must come from deep in the trace.
        stride = len(vdispatch_trace) // 4
        assert sampled[150].pc == vdispatch_trace[3 * stride].pc

    def test_oversized_request_returns_whole_trace(self, vdispatch_trace):
        sampled = systematic_sample(vdispatch_trace, len(vdispatch_trace), 2)
        assert sampled is vdispatch_trace

    def test_validation(self, vdispatch_trace):
        with pytest.raises(ValueError):
            systematic_sample(vdispatch_trace, 0, 5)


class TestRepresentativeWindow:
    def test_window_size(self, vdispatch_trace):
        chosen = representative_window(vdispatch_trace, 200)
        assert len(chosen) == 200

    def test_mix_close_to_whole(self, vdispatch_trace):
        chosen = representative_window(vdispatch_trace, 500)
        whole_share = vdispatch_trace.count_of(BranchType.CONDITIONAL) / len(
            vdispatch_trace
        )
        window_share = chosen.count_of(BranchType.CONDITIONAL) / len(chosen)
        assert abs(whole_share - window_share) < 0.1

    def test_small_trace_returned_whole(self, tiny_trace):
        assert representative_window(tiny_trace, 100) is tiny_trace

    def test_uniform_trace_picks_first_window(self):
        # Every window's mix matches the whole, so the scan's strict
        # improvement test keeps the first candidate.
        trace = _uniform_trace(300)
        chosen = representative_window(trace, 100)
        assert "[0:100]" in chosen.name

    def test_window_size_one(self, vdispatch_trace):
        assert len(representative_window(vdispatch_trace, 1)) == 1

    def test_bad_window_size_rejected(self, vdispatch_trace):
        with pytest.raises(ValueError, match="window_records"):
            representative_window(vdispatch_trace, 0)


class TestSystematicSampleEdges:
    def test_zero_length_tail_not_produced(self):
        # 10 windows of 9 over 100 records: the last window starts at
        # record 90 and must contain 9 records, not run off the end.
        trace = _uniform_trace(100)
        sampled = systematic_sample(trace, 9, 10)
        assert len(sampled) == 90

    def test_short_tail_window_clamped(self):
        # stride 33, final window starts at 99 with only 6 records left.
        trace = _uniform_trace(105)
        sampled = systematic_sample(trace, 10, 3)
        assert len(sampled) == 10 + 10 + 10

    def test_window_exactly_at_end(self):
        trace = _uniform_trace(100)
        sampled = systematic_sample(trace, 25, 3)
        assert len(sampled) == 75


class TestIntervalFeatures:
    def test_shape_and_tail(self, vdispatch_trace):
        features = interval_features(vdispatch_trace, 1500)
        # 4000 records / 1500 -> 3 intervals (tail of 1000).
        assert features.shape == (3, 6 + 1 + PC_PROFILE_BUCKETS)

    def test_rows_are_fractions(self, vdispatch_trace):
        features = interval_features(vdispatch_trace, 1000)
        assert float(features.min()) >= 0.0
        assert float(features.max()) <= 1.0
        # Type shares and the PC profile each sum to 1 per interval.
        np.testing.assert_allclose(features[:, :6].sum(axis=1), 1.0)
        np.testing.assert_allclose(features[:, 7:].sum(axis=1), 1.0)

    def test_uniform_trace_identical_rows(self):
        features = interval_features(_uniform_trace(400), 100)
        for row in features[1:]:
            np.testing.assert_array_equal(row, features[0])

    def test_validation(self, vdispatch_trace):
        with pytest.raises(ValueError, match="interval_records"):
            interval_features(vdispatch_trace, 0)


class TestKMedoids:
    def test_separated_clusters_found(self):
        features = np.array(
            [[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]]
        )
        medoids, assignment = kmedoids(features, 2)
        assert len(medoids) == 2
        assert assignment[0] == assignment[1]
        assert assignment[2] == assignment[3]
        assert assignment[0] != assignment[2]

    def test_deterministic(self, vdispatch_trace):
        features = interval_features(vdispatch_trace, 500)
        first = kmedoids(features, 3)
        second = kmedoids(features, 3)
        assert first[0] == second[0]
        np.testing.assert_array_equal(first[1], second[1])

    def test_k_capped_by_distinct_points(self):
        features = np.zeros((5, 2))
        medoids, assignment = kmedoids(features, 3)
        assert len(medoids) == 1
        assert set(assignment.tolist()) == {0}

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one point"):
            kmedoids(np.zeros((0, 2)), 1)
        with pytest.raises(ValueError, match="k must be"):
            kmedoids(np.zeros((3, 2)), 0)
        with pytest.raises(ValueError, match="weights shape"):
            kmedoids(np.zeros((3, 2)), 1, weights=np.ones(2))


class TestSimpointPlan:
    def test_weights_sum_to_one(self, vdispatch_trace):
        plan = simpoint_plan(vdispatch_trace, 500, max_regions=4)
        assert abs(sum(r.weight for r in plan.regions) - 1.0) < 1e-9

    def test_regions_sorted_and_in_bounds(self, vdispatch_trace):
        plan = simpoint_plan(vdispatch_trace, 500, max_regions=4)
        starts = [r.start for r in plan.regions]
        assert starts == sorted(starts)
        for region in plan.regions:
            assert 0 <= region.start - region.warmup
            assert region.start + region.length <= len(vdispatch_trace)

    def test_warmup_clamped_at_head(self, vdispatch_trace):
        plan = simpoint_plan(
            vdispatch_trace, 500, max_regions=8, warmup_intervals=3
        )
        for region in plan.regions:
            assert region.warmup <= region.start
            assert region.warmup <= 3 * 500

    def test_degenerate_single_interval(self, tiny_trace):
        plan = simpoint_plan(tiny_trace, 10_000)
        assert plan.num_intervals == 1
        (region,) = plan.regions
        assert region.start == 0
        assert region.length == len(tiny_trace)
        assert region.warmup == 0
        assert region.weight == 1.0

    def test_uniform_trace_collapses_to_one_region(self):
        plan = simpoint_plan(_uniform_trace(1000), 100, max_regions=4)
        assert len(plan.regions) == 1
        assert plan.regions[0].weight == 1.0

    def test_replayed_vs_measured_records(self, vdispatch_trace):
        plan = simpoint_plan(vdispatch_trace, 500, max_regions=3)
        assert plan.measured_records == sum(r.length for r in plan.regions)
        assert plan.replayed_records == plan.measured_records + sum(
            r.warmup for r in plan.regions
        )

    def test_deterministic(self, vdispatch_trace):
        assert simpoint_plan(vdispatch_trace, 500) == simpoint_plan(
            vdispatch_trace, 500
        )

    def test_validation(self, vdispatch_trace):
        with pytest.raises(ValueError, match="warmup_intervals"):
            simpoint_plan(vdispatch_trace, 500, warmup_intervals=-1)
        with pytest.raises(ValueError, match="max_regions"):
            simpoint_plan(vdispatch_trace, 500, max_regions=0)
