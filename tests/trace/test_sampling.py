"""Tests for simpoint-style trace sampling."""

import pytest

from repro.trace.record import BranchType
from repro.trace.sampling import (
    representative_window,
    systematic_sample,
    window,
)


class TestWindow:
    def test_extracts_records(self, vdispatch_trace):
        cut = window(vdispatch_trace, 100, 50)
        assert len(cut) == 50
        assert cut[0] == vdispatch_trace[100]

    def test_clamps_at_end(self, vdispatch_trace):
        cut = window(vdispatch_trace, len(vdispatch_trace) - 10, 50)
        assert len(cut) == 10

    def test_names_carry_bounds(self, vdispatch_trace):
        cut = window(vdispatch_trace, 5, 10)
        assert "[5:15]" in cut.name

    def test_validation(self, vdispatch_trace):
        with pytest.raises(ValueError):
            window(vdispatch_trace, -1, 10)
        with pytest.raises(ValueError):
            window(vdispatch_trace, 0, 0)
        with pytest.raises(ValueError):
            window(vdispatch_trace, 10**9, 10)


class TestSystematicSample:
    def test_length(self, vdispatch_trace):
        sampled = systematic_sample(vdispatch_trace, 100, 5)
        assert len(sampled) == 500

    def test_covers_span(self, vdispatch_trace):
        sampled = systematic_sample(vdispatch_trace, 50, 4)
        # Last sampled pc must come from deep in the trace.
        stride = len(vdispatch_trace) // 4
        assert sampled[150].pc == vdispatch_trace[3 * stride].pc

    def test_oversized_request_returns_whole_trace(self, vdispatch_trace):
        sampled = systematic_sample(vdispatch_trace, len(vdispatch_trace), 2)
        assert sampled is vdispatch_trace

    def test_validation(self, vdispatch_trace):
        with pytest.raises(ValueError):
            systematic_sample(vdispatch_trace, 0, 5)


class TestRepresentativeWindow:
    def test_window_size(self, vdispatch_trace):
        chosen = representative_window(vdispatch_trace, 200)
        assert len(chosen) == 200

    def test_mix_close_to_whole(self, vdispatch_trace):
        chosen = representative_window(vdispatch_trace, 500)
        whole_share = vdispatch_trace.count_of(BranchType.CONDITIONAL) / len(
            vdispatch_trace
        )
        window_share = chosen.count_of(BranchType.CONDITIONAL) / len(chosen)
        assert abs(whole_share - window_share) < 0.1

    def test_small_trace_returned_whole(self, tiny_trace):
        assert representative_window(tiny_trace, 100) is tiny_trace
