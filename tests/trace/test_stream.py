"""Unit tests for repro.trace.stream (Trace container and binary I/O)."""

import numpy as np
import pytest

from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace, concatenate, read_trace, write_trace


class TestTrace:
    def test_from_records_round_trip(self, tiny_trace):
        records = list(tiny_trace.records())
        rebuilt = Trace.from_records("tiny2", records)
        assert len(rebuilt) == len(tiny_trace)
        for original, copy in zip(tiny_trace.records(), rebuilt.records()):
            assert original == copy

    def test_total_instructions(self, tiny_trace):
        gaps = sum(record.inst_gap for record in tiny_trace.records())
        assert tiny_trace.total_instructions() == gaps + len(tiny_trace)

    def test_count_of(self, tiny_trace):
        assert tiny_trace.count_of(BranchType.CONDITIONAL) == 2
        assert tiny_trace.count_of(BranchType.RETURN) == 2
        assert tiny_trace.count_of(BranchType.INDIRECT_CALL) == 1

    def test_indirect_mask(self, tiny_trace):
        mask = tiny_trace.indirect_mask()
        assert int(mask.sum()) == 2
        types = tiny_trace.types[mask]
        assert set(types.tolist()) <= {
            int(BranchType.INDIRECT_JUMP),
            int(BranchType.INDIRECT_CALL),
        }

    def test_getitem(self, tiny_trace):
        record = tiny_trace[0]
        assert isinstance(record, BranchRecord)
        assert record.pc == 0x1000

    def test_head(self, tiny_trace):
        head = tiny_trace.head(3)
        assert len(head) == 3
        assert head[0] == tiny_trace[0]

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                "bad",
                pcs=np.zeros(3, dtype=np.uint64),
                types=np.zeros(2, dtype=np.uint8),
                takens=np.zeros(3, dtype=bool),
                targets=np.zeros(3, dtype=np.uint64),
                gaps=np.zeros(3, dtype=np.uint32),
            )

    def test_repr_mentions_name(self, tiny_trace):
        assert "tiny" in repr(tiny_trace)


class TestBinaryIO:
    def test_write_read_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.bin"
        write_trace(tiny_trace, path)
        loaded = read_trace(path)
        assert loaded.name == tiny_trace.name
        assert len(loaded) == len(tiny_trace)
        np.testing.assert_array_equal(loaded.pcs, tiny_trace.pcs)
        np.testing.assert_array_equal(loaded.types, tiny_trace.types)
        np.testing.assert_array_equal(loaded.takens, tiny_trace.takens)
        np.testing.assert_array_equal(loaded.targets, tiny_trace.targets)
        np.testing.assert_array_equal(loaded.gaps, tiny_trace.gaps)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(ValueError):
            read_trace(path)


class TestBinaryIOEdgeCases:
    """Round-trips the exec spill path depends on (see repro.exec.plan)."""

    @staticmethod
    def _round_trip(trace, tmp_path):
        path = tmp_path / "edge.trace"
        write_trace(trace, path)
        return read_trace(path)

    def test_empty_trace(self, tmp_path):
        empty = Trace.from_records("empty", [])
        loaded = self._round_trip(empty, tmp_path)
        assert loaded.name == "empty"
        assert len(loaded) == 0
        assert loaded.total_instructions() == 0
        assert loaded.pcs.dtype == np.uint64

    def test_single_record_trace(self, tmp_path):
        one = Trace.from_records(
            "one",
            [BranchRecord(0x40, BranchType.INDIRECT_JUMP, True, 0x80,
                          inst_gap=5)],
        )
        loaded = self._round_trip(one, tmp_path)
        assert len(loaded) == 1
        assert loaded[0] == one[0]
        assert loaded.total_instructions() == 6

    def test_non_ascii_name(self, tiny_trace, tmp_path):
        renamed = Trace(
            "métier-δ-跟踪",
            tiny_trace.pcs,
            tiny_trace.types,
            tiny_trace.takens,
            tiny_trace.targets,
            tiny_trace.gaps,
        )
        loaded = self._round_trip(renamed, tmp_path)
        assert loaded.name == "métier-δ-跟踪"
        np.testing.assert_array_equal(loaded.pcs, tiny_trace.pcs)


class TestConcatenate:
    def test_concatenate_lengths(self, tiny_trace):
        merged = concatenate("merged", [tiny_trace, tiny_trace])
        assert len(merged) == 2 * len(tiny_trace)
        assert merged.name == "merged"
        assert (
            merged.total_instructions() == 2 * tiny_trace.total_instructions()
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate("empty", [])
