"""Tests for the CSV trace interchange format."""

import numpy as np
import pytest

from repro.trace.textio import read_text_trace, write_text_trace


class TestRoundTrip:
    def test_write_read_preserves_everything(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_text_trace(tiny_trace, path)
        loaded = read_text_trace(path)
        assert loaded.name == tiny_trace.name
        np.testing.assert_array_equal(loaded.pcs, tiny_trace.pcs)
        np.testing.assert_array_equal(loaded.types, tiny_trace.types)
        np.testing.assert_array_equal(loaded.takens, tiny_trace.takens)
        np.testing.assert_array_equal(loaded.targets, tiny_trace.targets)
        np.testing.assert_array_equal(loaded.gaps, tiny_trace.gaps)


class TestParsing:
    def _load(self, tmp_path, text, **kwargs):
        path = tmp_path / "t.csv"
        path.write_text(text)
        return read_text_trace(path, **kwargs)

    def test_named_types_and_hex(self, tmp_path):
        trace = self._load(
            tmp_path,
            "0x1000,conditional,0,0x1004,3\n"
            "0x1010,indirect_jump,1,0x2000,0\n",
        )
        assert len(trace) == 2
        assert trace[1].target == 0x2000

    def test_numeric_types(self, tmp_path):
        trace = self._load(tmp_path, "0x10,0,1,0x20,0\n0x30,3,1,0x40,2\n")
        assert trace[1].branch_type.name == "INDIRECT_JUMP"

    def test_comments_and_blanks_ignored(self, tmp_path):
        trace = self._load(
            tmp_path,
            "# a comment\n\n0x10,conditional,1,0x20,0\n",
        )
        assert len(trace) == 1

    def test_name_header(self, tmp_path):
        trace = self._load(tmp_path, "# name: my-trace\n0x10,0,1,0x20,0\n")
        assert trace.name == "my-trace"

    def test_explicit_name_wins(self, tmp_path):
        trace = self._load(
            tmp_path, "# name: ignored\n0x10,0,1,0x20,0\n", name="given"
        )
        assert trace.name == "given"

    def test_bad_field_count_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="5 fields"):
            self._load(tmp_path, "0x10,0,1,0x20\n")

    def test_bad_type_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="branch type"):
            self._load(tmp_path, "0x10,magic,1,0x20,0\n")

    def test_bad_taken_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="taken"):
            self._load(tmp_path, "0x10,0,yes,0x20,0\n")

    def test_not_taken_unconditional_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="must be\\s+taken"):
            self._load(tmp_path, "0x10,indirect_jump,0,0x20,0\n")

    def test_empty_file_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no records"):
            self._load(tmp_path, "# nothing here\n")

    def test_line_numbers_in_errors(self, tmp_path):
        with pytest.raises(ValueError, match="line 3"):
            self._load(tmp_path, "# c\n0x10,0,1,0x20,0\nbroken,line\n")


class TestBareHex:
    """Bare (non-``0x``) hex pc/target values are documented as supported.

    Regression: ``ff`` used to raise (``int(token, 0)`` rejects bare
    hex) and ``10`` silently parsed as decimal ten instead of sixteen.
    """

    def _load(self, tmp_path, text):
        path = tmp_path / "t.csv"
        path.write_text(text)
        return read_text_trace(path)

    def test_bare_hex_letters(self, tmp_path):
        trace = self._load(tmp_path, "ff,conditional,1,abc0,0\n")
        assert trace[0].pc == 0xFF
        assert trace[0].target == 0xABC0

    def test_bare_hex_digits_parse_base_16(self, tmp_path):
        trace = self._load(tmp_path, "10,conditional,1,20,0\n")
        assert trace[0].pc == 0x10
        assert trace[0].target == 0x20

    def test_mixed_spellings_agree(self, tmp_path):
        bare = self._load(tmp_path, "1f40,indirect_jump,1,2e00,0\n")
        prefixed = self._load(tmp_path, "0x1f40,indirect_jump,1,0x2e00,0\n")
        assert bare[0].pc == prefixed[0].pc == 0x1F40
        assert bare[0].target == prefixed[0].target == 0x2E00

    def test_gap_stays_decimal(self, tmp_path):
        trace = self._load(tmp_path, "ff,conditional,1,100,10\n")
        assert trace[0].inst_gap == 10

    def test_bad_pc_still_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="bad pc"):
            self._load(tmp_path, "xyz,conditional,1,100,0\n")

    def test_bad_gap_rejected_with_line(self, tmp_path):
        with pytest.raises(ValueError, match="line 1: bad gap"):
            self._load(tmp_path, "ff,conditional,1,100,0x10\n")
