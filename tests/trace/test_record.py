"""Unit tests for repro.trace.record."""

import pytest

from repro.trace.record import BranchRecord, BranchType


class TestBranchType:
    def test_indirect_classification(self):
        assert BranchType.INDIRECT_JUMP.is_indirect
        assert BranchType.INDIRECT_CALL.is_indirect
        assert not BranchType.CONDITIONAL.is_indirect
        assert not BranchType.RETURN.is_indirect
        assert not BranchType.DIRECT_JUMP.is_indirect

    def test_call_classification(self):
        assert BranchType.DIRECT_CALL.is_call
        assert BranchType.INDIRECT_CALL.is_call
        assert not BranchType.RETURN.is_call

    def test_conditional_classification(self):
        assert BranchType.CONDITIONAL.is_conditional
        assert not BranchType.INDIRECT_JUMP.is_conditional

    def test_int_round_trip(self):
        for branch_type in BranchType:
            assert BranchType(int(branch_type)) is branch_type


class TestBranchRecord:
    def test_valid_record(self):
        record = BranchRecord(0x1000, BranchType.CONDITIONAL, False, 0x1004, 5)
        assert record.pc == 0x1000
        assert record.inst_gap == 5

    def test_unconditional_must_be_taken(self):
        with pytest.raises(ValueError):
            BranchRecord(0x1000, BranchType.INDIRECT_JUMP, False, 0x2000)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            BranchRecord(0x1000, BranchType.CONDITIONAL, True, 0x2000, -1)

    def test_negative_pc_rejected(self):
        with pytest.raises(ValueError):
            BranchRecord(-1, BranchType.CONDITIONAL, True, 0x2000)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            BranchRecord(0x1000, BranchType.CONDITIONAL, True, -5)

    def test_frozen(self):
        record = BranchRecord(0x1000, BranchType.RETURN, True, 0x2000)
        with pytest.raises(AttributeError):
            record.pc = 0x2000
