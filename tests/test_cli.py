"""Tests for the command-line interface."""

import pytest

from repro.cli import PREDICTOR_REGISTRY, build_parser, main


class TestParser:
    def test_all_commands_present(self):
        parser = build_parser()
        for argv in (
            ["suite"],
            ["generate", "X", "--out", "y"],
            ["stats", "t"],
            ["simulate"],
            ["budgets"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_registry_covers_main_predictors(self):
        for name in ("BTB", "VPC", "ITTAGE", "BLBP", "SNIP", "COTTAGE"):
            assert name in PREDICTOR_REGISTRY


class TestCommands:
    def test_suite_lists_88(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "88 workloads" in out

    def test_generate_stats_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "trace.bin")
        assert main(["generate", "SHORT-SERVER-1", "--out", path,
                     "--scale", "0.3"]) == 0
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "SHORT-SERVER-1" in out
        assert "polymorphic share" in out

    def test_generate_unknown_name_fails(self, tmp_path):
        path = str(tmp_path / "x.bin")
        assert main(["generate", "NOPE", "--out", path]) == 1

    def test_simulate_on_file(self, tmp_path, capsys):
        path = str(tmp_path / "trace.bin")
        main(["generate", "SHORT-SERVER-2", "--out", path, "--scale", "0.2"])
        capsys.readouterr()
        assert main(["simulate", "--predictors", "BTB,ITTAGE",
                     "--traces", path]) == 0
        out = capsys.readouterr().out
        assert "MEAN" in out
        assert "ITTAGE" in out

    def test_simulate_unknown_predictor(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--predictors", "MAGIC"])

    def test_simulate_parallel_jobs(self, tmp_path, capsys):
        path = str(tmp_path / "trace.bin")
        main(["generate", "SHORT-SERVER-2", "--out", path, "--scale", "0.2"])
        capsys.readouterr()
        assert main(["simulate", "--predictors", "BTB,2bit-BTB",
                     "--traces", path, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "MEAN" in out

    def test_simulate_resume_skips_journaled_cells(self, tmp_path, capsys):
        path = str(tmp_path / "trace.bin")
        journal = str(tmp_path / "campaign.jsonl")
        main(["generate", "SHORT-SERVER-2", "--out", path, "--scale", "0.2"])
        capsys.readouterr()
        assert main(["simulate", "--predictors", "BTB", "--traces", path,
                     "--resume", journal]) == 0
        first = capsys.readouterr()
        assert main(["simulate", "--predictors", "BTB", "--traces", path,
                     "--resume", journal]) == 0
        second = capsys.readouterr()
        assert "(resumed)" in second.err
        assert first.out == second.out

    def test_budgets(self, capsys):
        assert main(["budgets"]) == 0
        out = capsys.readouterr().out
        assert "BLBP" in out and "paper KB" in out


class TestProfileFlag:
    def test_simulate_profile_prints_counters(self, tmp_path, capsys):
        path = str(tmp_path / "trace.bin")
        main(["generate", "SHORT-SERVER-2", "--out", path, "--scale", "0.2"])
        capsys.readouterr()
        assert main(["simulate", "--predictors", "BLBP", "--traces", path,
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile [BLBP]" in out
        assert "fold updates" in out
        assert "records/s" in out

    def test_simulate_profile_parallel_path(self, tmp_path, capsys):
        path = str(tmp_path / "trace.bin")
        main(["generate", "SHORT-SERVER-2", "--out", path, "--scale", "0.2"])
        capsys.readouterr()
        assert main(["simulate", "--predictors", "BTB", "--traces", path,
                     "--jobs", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile [BTB]" in out

    def test_simulate_without_profile_is_silent(self, tmp_path, capsys):
        path = str(tmp_path / "trace.bin")
        main(["generate", "SHORT-SERVER-2", "--out", path, "--scale", "0.2"])
        capsys.readouterr()
        assert main(["simulate", "--predictors", "BTB",
                     "--traces", path]) == 0
        assert "profile [" not in capsys.readouterr().out
