"""Unit tests for repro.workloads.mixed."""

import numpy as np
import pytest

from repro.workloads.mixed import MixedSpec, generate_mixed
from repro.workloads.switchcase import SwitchCaseSpec
from repro.workloads.vdispatch import VirtualDispatchSpec


def _components():
    return [
        (
            VirtualDispatchSpec(name="vd", seed=1, num_records=1000),
            2.0,
        ),
        (
            SwitchCaseSpec(name="sw", seed=2, num_records=1000),
            1.0,
        ),
    ]


class TestMixedSpec:
    def test_requires_components(self):
        with pytest.raises(ValueError):
            MixedSpec(name="m", seed=1, num_records=100, components=[])

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            MixedSpec(
                name="m",
                seed=1,
                num_records=100,
                components=[(_components()[0][0], 0.0)],
            )

    def test_length_close_to_requested(self):
        spec = MixedSpec(
            name="m", seed=3, num_records=6000, components=_components(),
            phase_records=1000,
        )
        trace = generate_mixed(spec)
        assert len(trace) <= 6000
        assert len(trace) >= 5000

    def test_deterministic(self):
        spec = MixedSpec(
            name="m", seed=3, num_records=4000, components=_components(),
            phase_records=800,
        )
        a = generate_mixed(spec)
        b = generate_mixed(spec)
        np.testing.assert_array_equal(a.pcs, b.pcs)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_components_relocated_to_disjoint_ranges(self):
        spec = MixedSpec(
            name="m", seed=4, num_records=6000, components=_components(),
            phase_records=1000,
        )
        trace = generate_mixed(spec)
        libraries = set((trace.pcs >> np.uint64(32)).tolist())
        assert len(libraries) == 2

    def test_phases_interleave(self):
        spec = MixedSpec(
            name="m", seed=5, num_records=8000, components=_components(),
            phase_records=500,
        )
        trace = generate_mixed(spec)
        libraries = (trace.pcs >> np.uint64(32)).astype(np.int64)
        transitions = int(np.count_nonzero(np.diff(libraries)))
        assert transitions >= 4
