"""Tests for the recursive tree-walk workload generator."""

import numpy as np
import pytest

from repro.trace.record import BranchType
from repro.trace.stats import compute_stats
from repro.workloads.recursive import RecursiveSpec


@pytest.fixture(scope="module")
def trace():
    return RecursiveSpec(name="rec", seed=51, num_records=8000).generate()


class TestRecursiveSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecursiveSpec(name="x", seed=1, num_records=10, num_kinds=0)
        with pytest.raises(ValueError):
            RecursiveSpec(name="x", seed=1, num_records=10, max_depth=0)
        with pytest.raises(ValueError):
            RecursiveSpec(name="x", seed=1, num_records=10, branching=0)


class TestGeneratedTrace:
    def test_deterministic(self):
        spec = RecursiveSpec(name="rec", seed=52, num_records=3000)
        a = spec.generate()
        b = spec.generate()
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_calls_and_returns_interleave_legally(self, trace):
        depth = 0
        min_depth = 0
        for record in trace.records():
            if record.branch_type.is_call:
                depth += 1
            elif record.branch_type is BranchType.RETURN:
                depth -= 1
                min_depth = min(min_depth, depth)
        assert min_depth >= 0

    def test_returns_are_ras_predictable_in_balanced_prefix(self, trace):
        """Until the end-of-trace cutoff, returns match the call stack."""
        stack = []
        violations = 0
        checked = 0
        for record in trace.records():
            if record.branch_type.is_call:
                stack.append(record.pc + 4)
            elif record.branch_type is BranchType.RETURN and stack:
                checked += 1
                if record.target != stack.pop():
                    violations += 1
        assert checked > 100
        assert violations == 0

    def test_single_dispatch_site_with_num_kinds_targets(self, trace):
        stats = compute_stats(trace)
        polymorphic = {
            pc: n for pc, n in stats.targets_per_branch.items() if n > 1
        }
        assert len(polymorphic) == 1
        (count,) = polymorphic.values()
        assert count <= 6

    def test_recursion_produces_nested_calls(self, trace):
        max_depth = 0
        depth = 0
        for record in trace.records():
            if record.branch_type.is_call:
                depth += 1
                max_depth = max(max_depth, depth)
            elif record.branch_type is BranchType.RETURN:
                depth -= 1
        assert max_depth >= 4
