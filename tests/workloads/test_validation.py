"""Tests for the workload-contract validator."""

import pytest

from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace
from repro.workloads import VirtualDispatchSpec
from repro.workloads.suite import cbp4_like_specs, suite88_specs
from repro.workloads.validation import format_report, validate_trace


class TestValidateGoodTraces:
    def test_vdispatch_passes(self, vdispatch_trace):
        report = validate_trace(vdispatch_trace)
        assert report.ok, report.problems

    def test_suite_sample_passes(self):
        for entry in suite88_specs(scale=1.0)[::11]:
            report = validate_trace(entry.generate())
            assert report.ok, (entry.name, report.problems)

    def test_cbp4_sample_passes(self):
        for entry in cbp4_like_specs(scale=1.0)[::5]:
            report = validate_trace(entry.generate())
            assert report.ok, (entry.name, report.problems)

    def test_signal_mi_positive_on_correlated_workload(self, vdispatch_trace):
        report = validate_trace(vdispatch_trace)
        assert report.signal_mutual_information > 0.1


class TestValidateCatchesViolations:
    def test_no_indirect_branches_flagged(self):
        records = [
            BranchRecord(0x10, BranchType.CONDITIONAL, bool(i % 2), 0x20, 3)
            for i in range(100)
        ]
        report = validate_trace(Trace.from_records("no-ind", records))
        assert not report.ok
        assert any("no indirect" in p for p in report.problems)

    def test_low_conditional_density_flagged(self):
        records = []
        for i in range(200):
            records.append(
                BranchRecord(0x10, BranchType.INDIRECT_JUMP, True,
                             0x100 + (i % 3) * 0x40, 5)
            )
        report = validate_trace(Trace.from_records("dense", records))
        assert any("conditionals per indirect" in p for p in report.problems)

    def test_return_underflow_flagged(self):
        records = [
            BranchRecord(0x10, BranchType.INDIRECT_JUMP, True, 0x100, 2),
            BranchRecord(0x20, BranchType.RETURN, True, 0x30, 1),
        ] * 5
        report = validate_trace(Trace.from_records("underflow", records))
        assert report.return_underflows > 0
        assert any("underflow" in p for p in report.problems)

    def test_wrong_return_target_flagged(self):
        records = []
        for _ in range(10):
            records.append(
                BranchRecord(0x10, BranchType.DIRECT_CALL, True, 0x100, 2)
            )
            records.append(
                BranchRecord(0x180, BranchType.RETURN, True, 0xBAD0, 1)
            )
        report = validate_trace(Trace.from_records("badret", records))
        assert report.return_mismatches == 10

    def test_iid_outcomes_flagged(self):
        import numpy as np

        rng = np.random.default_rng(0)
        records = []
        for i in range(3000):
            records.append(
                BranchRecord(0x10, BranchType.CONDITIONAL,
                             bool(rng.integers(2)), 0x20, 2)
            )
            if i % 8 == 0:
                records.append(
                    BranchRecord(0x50, BranchType.INDIRECT_JUMP, True,
                                 0x100 + int(rng.integers(4)) * 0x44, 2)
                )
        report = validate_trace(Trace.from_records("iid", records))
        assert any("IID" in p for p in report.problems)

    def test_aligned_targets_flagged(self):
        records = []
        for i in range(600):
            records.append(
                BranchRecord(0x10, BranchType.CONDITIONAL, bool(i % 2), 0x20, 2)
            )
            if i % 4 == 0:
                # Targets differ only at bit 16 — outside the predicted
                # low-order window.
                records.append(
                    BranchRecord(0x50, BranchType.INDIRECT_JUMP, True,
                                 0x100000 + (i // 4 % 2) * 0x10000, 2)
                )
        report = validate_trace(Trace.from_records("aligned", records))
        assert report.predicted_bit_diversity == 0.0
        assert any("uniform" in p for p in report.problems)


class TestFormatReport:
    def test_mentions_status_and_metrics(self, vdispatch_trace):
        rendered = format_report(validate_trace(vdispatch_trace))
        assert "OK" in rendered
        assert "MI" in rendered
