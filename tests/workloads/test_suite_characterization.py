"""Suite-level characterization invariants (the Fig. 1/6/7 shapes).

These lock in the suite's statistical contract at small scale: the
benchmark assertions depend on these shapes, so a change to a generator
that breaks them should fail here, in seconds, not after a multi-minute
bench run.
"""

import pytest

from repro.trace.record import BranchType
from repro.trace.stats import aggregate_target_ccdf, compute_stats
from repro.workloads.suite import suite88_specs


@pytest.fixture(scope="module")
def sample_stats():
    return [
        compute_stats(entry.generate())
        for entry in suite88_specs(scale=0.5)[::6]
    ]


class TestBranchMix:
    def test_conditionals_dominate(self, sample_stats):
        for stats in sample_stats:
            conditional = stats.per_kilo(BranchType.CONDITIONAL)
            indirect = stats.per_kilo(
                BranchType.INDIRECT_JUMP
            ) + stats.per_kilo(BranchType.INDIRECT_CALL)
            assert conditional > 5 * indirect, stats.name

    def test_every_trace_has_indirect_branches(self, sample_stats):
        for stats in sample_stats:
            assert stats.indirect_executions > 0, stats.name

    def test_indirect_density_in_band(self, sample_stats):
        """Traces are selected for indirect relevance: 2-40 per ki."""
        for stats in sample_stats:
            indirect = stats.per_kilo(
                BranchType.INDIRECT_JUMP
            ) + stats.per_kilo(BranchType.INDIRECT_CALL)
            assert 2.0 < indirect < 40.0, (stats.name, indirect)


class TestPolymorphismShapes:
    def test_polymorphic_share_spans_wide_range(self, sample_stats):
        shares = [stats.polymorphic_fraction() for stats in sample_stats]
        assert min(shares) < 0.75
        assert max(shares) > 0.9

    def test_ccdf_majority_at_most_five_targets(self, sample_stats):
        ccdf = aggregate_target_ccdf(sample_stats)
        assert ccdf[0] == 100.0
        assert ccdf[5] < 60.0      # most branches have few targets

    def test_ccdf_has_megamorphic_tail(self, sample_stats):
        ccdf = aggregate_target_ccdf(sample_stats)
        assert ccdf[20 - 1] > 0.5  # some branches exceed 20 targets
        assert ccdf[20 - 1] < 30.0

    def test_monomorphic_population_exists(self, sample_stats):
        mono = sum(
            sum(1 for n in stats.targets_per_branch.values() if n == 1)
            for stats in sample_stats
        )
        total = sum(len(stats.targets_per_branch) for stats in sample_stats)
        assert mono / total > 0.2


class TestDeterminismOfSuite:
    def test_stats_reproducible(self):
        entry = suite88_specs(scale=0.5)[40]
        first = compute_stats(entry.generate())
        second = compute_stats(entry.generate())
        assert first.counts_by_type == second.counts_by_type
        assert first.targets_per_branch == second.targets_per_branch
