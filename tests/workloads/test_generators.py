"""Tests for the four concrete workload generators.

Each generator is checked for: determinism in the seed, structural
invariants (call/return pairing, branch-type mix), and the statistical
properties the suite relies on (polymorphism degree, signal presence).
"""

import numpy as np
import pytest

from repro.trace.record import BranchType
from repro.trace.stats import compute_stats
from repro.workloads import (
    CallReturnSpec,
    InterpreterSpec,
    SwitchCaseSpec,
    VirtualDispatchSpec,
)


def _call_return_balance(trace):
    """Max depth mismatch between calls and returns along the trace."""
    depth = 0
    min_depth = 0
    for record in trace.records():
        if record.branch_type.is_call:
            depth += 1
        elif record.branch_type is BranchType.RETURN:
            depth -= 1
            min_depth = min(min_depth, depth)
    return depth, min_depth


class TestVirtualDispatch:
    def test_deterministic_in_seed(self):
        spec = VirtualDispatchSpec(name="x", seed=3, num_records=2000)
        trace_a = spec.generate()
        trace_b = spec.generate()
        np.testing.assert_array_equal(trace_a.pcs, trace_b.pcs)
        np.testing.assert_array_equal(trace_a.targets, trace_b.targets)

    def test_different_seeds_differ(self):
        a = VirtualDispatchSpec(name="x", seed=3, num_records=2000).generate()
        b = VirtualDispatchSpec(name="x", seed=4, num_records=2000).generate()
        assert not np.array_equal(a.targets, b.targets)

    def test_target_count_matches_num_types(self):
        spec = VirtualDispatchSpec(
            name="x", seed=5, num_records=6000, num_types=4, num_sites=2,
            determinism=0.9,
        )
        stats = compute_stats(spec.generate())
        polymorphic = [n for n in stats.targets_per_branch.values() if n > 1]
        assert polymorphic
        assert max(polymorphic) <= 4

    def test_returns_never_underflow(self):
        trace = VirtualDispatchSpec(name="x", seed=6, num_records=3000).generate()
        depth, min_depth = _call_return_balance(trace)
        assert min_depth >= 0
        assert 0 <= depth <= 2

    def test_shared_methods_share_targets(self):
        spec = VirtualDispatchSpec(
            name="x", seed=7, num_records=6000, num_sites=3, num_types=3,
            shared_methods=True,
        )
        trace = spec.generate()
        stats = compute_stats(trace)
        all_targets = set()
        polymorphic_sites = 0
        for pc, count in stats.targets_per_branch.items():
            if count > 1:
                polymorphic_sites += 1
        mask = trace.indirect_mask()
        all_targets = set(trace.targets[mask].tolist())
        # Shared vtable: at most num_types distinct polymorphic targets
        # (plus any monomorphic-site callees, disabled here).
        assert polymorphic_sites >= 2
        assert len(all_targets) <= 3

    def test_monomorphic_sites_are_monomorphic(self):
        spec = VirtualDispatchSpec(
            name="x", seed=8, num_records=6000, monomorphic_sites=4,
        )
        stats = compute_stats(spec.generate())
        mono = [n for n in stats.targets_per_branch.values() if n == 1]
        assert len(mono) >= 4

    def test_filler_raises_conditional_density(self):
        low = VirtualDispatchSpec(
            name="x", seed=9, num_records=4000, filler_conditionals=0
        ).generate()
        high = VirtualDispatchSpec(
            name="x", seed=9, num_records=4000, filler_conditionals=20
        ).generate()
        def ratio(trace):
            stats = compute_stats(trace)
            cond = stats.counts_by_type[BranchType.CONDITIONAL]
            ind = stats.indirect_executions
            return cond / max(1, ind)
        assert ratio(high) > ratio(low) + 10

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            VirtualDispatchSpec(name="x", seed=1, num_records=10, num_types=0)
        with pytest.raises(ValueError):
            VirtualDispatchSpec(name="x", seed=1, num_records=10, signal_noise=2.0)
        with pytest.raises(ValueError):
            VirtualDispatchSpec(name="x", seed=1, num_records=10, signal_lag=-1)


class TestSwitchCase:
    def test_single_static_dispatch_per_switch(self):
        spec = SwitchCaseSpec(
            name="x", seed=11, num_records=4000, num_cases=8, num_switches=2
        )
        stats = compute_stats(spec.generate())
        assert len(stats.targets_per_branch) == 2

    def test_dispatch_covers_cases(self):
        spec = SwitchCaseSpec(
            name="x", seed=12, num_records=8000, num_cases=8, num_switches=1,
            determinism=0.9,
        )
        stats = compute_stats(spec.generate())
        (count,) = stats.targets_per_branch.values()
        assert count == 8

    def test_handler_signal_bits_zero_suppresses_signal(self):
        spec = SwitchCaseSpec(
            name="x", seed=13, num_records=3000, num_cases=8,
            handler_signal_bits=0, filler_conditionals=0,
        )
        trace = spec.generate()
        stats = compute_stats(trace)
        baseline = SwitchCaseSpec(
            name="x", seed=13, num_records=3000, num_cases=8,
            handler_signal_bits=-1, filler_conditionals=0,
        )
        stats_with = compute_stats(baseline.generate())
        assert (
            stats.counts_by_type[BranchType.CONDITIONAL]
            < stats_with.counts_by_type[BranchType.CONDITIONAL]
        )

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SwitchCaseSpec(name="x", seed=1, num_records=10, num_cases=0)
        with pytest.raises(ValueError):
            SwitchCaseSpec(name="x", seed=1, num_records=10, handler_noise=-0.1)


class TestInterpreter:
    def test_dispatch_is_periodic_without_noise(self):
        spec = InterpreterSpec(
            name="x", seed=14, num_records=6000, num_opcodes=6,
            program_length=10, data_noise=0.0, restart_period=0,
        )
        trace = spec.generate()
        mask = trace.indirect_mask()
        targets = trace.targets[mask].tolist()
        period = 10
        for i in range(period, len(targets) - period):
            assert targets[i] == targets[i - period]

    def test_restart_changes_program(self):
        spec = InterpreterSpec(
            name="x", seed=15, num_records=8000, num_opcodes=12,
            program_length=16, restart_period=5,
        )
        trace = spec.generate()
        mask = trace.indirect_mask()
        targets = trace.targets[mask].tolist()
        first_program = targets[:16]
        later_program = targets[16 * 5 : 16 * 6]
        assert first_program != later_program

    def test_opcode_skew_concentrates_usage(self):
        skewed = InterpreterSpec(
            name="x", seed=16, num_records=6000, num_opcodes=24,
            program_length=200, opcode_skew=1.5,
        ).generate()
        flat = InterpreterSpec(
            name="x", seed=16, num_records=6000, num_opcodes=24,
            program_length=200, opcode_skew=0.0,
        ).generate()

        def top4_share(trace):
            mask = trace.indirect_mask()
            targets = trace.targets[mask]
            _, counts = np.unique(targets, return_counts=True)
            counts = np.sort(counts)[::-1]
            return counts[:4].sum() / counts.sum()

        assert top4_share(skewed) > top4_share(flat) + 0.15

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            InterpreterSpec(name="x", seed=1, num_records=10, num_opcodes=0)
        with pytest.raises(ValueError):
            InterpreterSpec(name="x", seed=1, num_records=10, program_length=0)


class TestCallReturn:
    def test_returns_balance_calls(self, callret_trace):
        depth, min_depth = _call_return_balance(callret_trace)
        assert min_depth >= 0

    def test_ras_friendly(self, callret_trace):
        """Every return must target the instruction after its call."""
        stack = []
        violations = 0
        for record in callret_trace.records():
            if record.branch_type.is_call:
                stack.append(record.pc + 4)
            elif record.branch_type is BranchType.RETURN:
                if stack:
                    expected = stack.pop()
                    if record.target != expected:
                        violations += 1
        assert violations == 0

    def test_mostly_low_polymorphism(self):
        spec = CallReturnSpec(
            name="x", seed=17, num_records=8000, num_sites=12,
            polymorphism_cap=3,
        )
        stats = compute_stats(spec.generate())
        assert max(stats.targets_per_branch.values()) <= 3

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CallReturnSpec(name="x", seed=1, num_records=10, num_callbacks=0)
        with pytest.raises(ValueError):
            CallReturnSpec(name="x", seed=1, num_records=10, polymorphism_cap=0)
