"""Unit tests for repro.workloads.base."""

import numpy as np
import pytest

from repro.trace.record import BranchType
from repro.workloads.base import (
    AddressAllocator,
    TraceBuilder,
    draw_gap,
)


class TestTraceBuilder:
    def test_build_produces_trace(self):
        builder = TraceBuilder("demo")
        builder.conditional(0x1000, True, 0x1010, gap=3)
        builder.indirect_call(0x1004, 0x2000, gap=1)
        builder.ret(0x2080, 0x1008)
        trace = builder.build()
        assert trace.name == "demo"
        assert len(trace) == 3
        assert trace[0].branch_type is BranchType.CONDITIONAL
        assert trace[1].branch_type is BranchType.INDIRECT_CALL
        assert trace[2].branch_type is BranchType.RETURN

    def test_len_tracks_appends(self):
        builder = TraceBuilder("demo")
        assert len(builder) == 0
        builder.direct_jump(0x1000, 0x2000)
        assert len(builder) == 1

    def test_all_helpers_set_taken_correctly(self):
        builder = TraceBuilder("demo")
        builder.conditional(0x1000, False, 0x1004)
        builder.direct_call(0x1010, 0x2000)
        builder.indirect_jump(0x1020, 0x3000)
        trace = builder.build()
        assert not trace[0].taken
        assert trace[1].taken
        assert trace[2].taken


class TestAddressAllocator:
    def test_functions_do_not_overlap(self):
        alloc = AddressAllocator(function_size=0x200)
        entries = [alloc.function() for _ in range(50)]
        regions = [entry // 0x200 for entry in entries]
        assert len(set(regions)) == 50

    def test_entries_are_aligned(self):
        alloc = AddressAllocator()
        for _ in range(20):
            assert alloc.function() % 4 == 0

    def test_entry_low_bits_vary(self):
        """Jittered entries must differ in low-order bits — BLBP predicts
        those bits, so a perfectly-aligned layout would be degenerate."""
        alloc = AddressAllocator()
        entries = [alloc.function() for _ in range(64)]
        low_bits = {entry & 0xFF for entry in entries}
        assert len(low_bits) > 8

    def test_sites_within_function(self):
        alloc = AddressAllocator(function_size=0x200)
        entry = alloc.function()
        sites = [alloc.site() for _ in range(10)]
        assert sites[0] == entry
        for site in sites:
            assert entry <= site < entry + 0x200

    def test_site_overflow_detected(self):
        alloc = AddressAllocator(function_size=0x40)
        alloc.function()
        with pytest.raises(RuntimeError):
            for _ in range(100):
                alloc.site()

    def test_misaligned_base_rejected(self):
        with pytest.raises(ValueError):
            AddressAllocator(base=0x1001)


class TestDrawGap:
    def test_zero_mean_gives_zero(self, rng):
        assert draw_gap(rng, 0) == 0

    def test_non_negative(self, rng):
        assert all(draw_gap(rng, 10.0) >= 0 for _ in range(200))

    def test_mean_roughly_matches(self, rng):
        samples = [draw_gap(rng, 12.0) for _ in range(5000)]
        assert 10.0 < np.mean(samples) < 14.5
