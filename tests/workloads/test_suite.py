"""Unit tests for repro.workloads.suite (Table 1 inventory)."""

import numpy as np
import pytest

from repro.trace.stats import compute_stats
from repro.workloads.suite import (
    build_cbp4_like_suite,
    cbp4_like_specs,
    env_scale,
    suite88_specs,
)


class TestSuite88Specs:
    def test_exactly_88_traces(self):
        assert len(suite88_specs(scale=1.0)) == 88

    def test_source_counts_match_table1(self):
        specs = suite88_specs(scale=1.0)
        counts = {}
        for entry in specs:
            counts[entry.source] = counts.get(entry.source, 0) + 1
        assert counts == {
            "SPEC CPU2000": 1,
            "SPEC CPU2006": 12,
            "SPEC CPU2017": 7,
            "CBP-5": 68,
        }

    def test_cbp5_split(self):
        specs = suite88_specs(scale=1.0)
        categories = {}
        for entry in specs:
            if entry.source == "CBP-5":
                categories[entry.category] = categories.get(entry.category, 0) + 1
        assert categories == {
            "mobile-short": 24,
            "mobile-long": 10,
            "server-short": 24,
            "server-long": 10,
        }

    def test_names_unique(self):
        names = [entry.name for entry in suite88_specs(scale=1.0)]
        assert len(set(names)) == 88

    def test_specs_deterministic_across_calls(self):
        first = suite88_specs(scale=1.0)
        second = suite88_specs(scale=1.0)
        for a, b in zip(first, second):
            assert a.spec == b.spec

    def test_scale_changes_length(self):
        small = suite88_specs(scale=1.0)[0]
        large = suite88_specs(scale=2.0)[0]
        assert large.spec.num_records == 2 * small.spec.num_records

    def test_generated_trace_is_deterministic(self):
        entry = suite88_specs(scale=1.0)[0]
        a = entry.generate()
        b = entry.generate()
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_long_traces_longer_than_short(self):
        specs = {e.name: e for e in suite88_specs(scale=1.0)}
        assert (
            specs["LONG-MOBILE-1"].spec.num_records
            > specs["SHORT-MOBILE-1"].spec.num_records
        )


class TestCBP4Suite:
    def test_twenty_traces(self):
        assert len(cbp4_like_specs(scale=1.0)) == 20

    def test_generates(self):
        traces = build_cbp4_like_suite(scale=0.3)
        assert len(traces) == 20
        assert all(len(trace) > 0 for trace in traces)

    def test_easier_than_main_suite(self):
        """CBP-4-like traces must be lighter on polymorphism."""
        cbp4 = cbp4_like_specs(scale=0.5)[0].generate()
        stats = compute_stats(cbp4)
        assert stats.polymorphic_fraction() <= 1.0  # sanity
        assert max(stats.targets_per_branch.values(), default=1) <= 4


class TestEnvScale:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale(2.5) == 2.5

    def test_presets(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert env_scale() == 1.0
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert env_scale() == 10.0

    def test_numeric(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "4.5")
        assert env_scale() == 4.5

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            env_scale()
