"""Unit tests for repro.workloads.markov."""

import numpy as np
import pytest

from repro.workloads.markov import (
    MarkovChain,
    clamped_self_loop,
    structured_transition_matrix,
)


class TestStructuredTransitionMatrix:
    def test_rows_sum_to_one(self, rng):
        matrix = structured_transition_matrix(8, rng, determinism=0.8)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_fully_deterministic_is_permutation(self, rng):
        matrix = structured_transition_matrix(
            6, rng, determinism=1.0, self_loop=0.0
        )
        # Each row must be a unit vector.
        assert np.allclose(matrix.max(axis=1), 1.0)

    def test_dominant_successors_form_single_cycle(self, rng):
        """No absorbing states: the dominant-successor graph is one cycle."""
        matrix = structured_transition_matrix(
            7, rng, determinism=1.0, self_loop=0.0
        )
        successor = matrix.argmax(axis=1)
        state = 0
        visited = set()
        for _ in range(7):
            visited.add(state)
            state = int(successor[state])
        assert visited == set(range(7))

    def test_single_state(self, rng):
        matrix = structured_transition_matrix(1, rng, determinism=0.9)
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] == pytest.approx(1.0)

    def test_determinism_out_of_range_rejected(self, rng):
        with pytest.raises(ValueError):
            structured_transition_matrix(4, rng, determinism=1.5)

    def test_incompatible_self_loop_rejected(self, rng):
        with pytest.raises(ValueError):
            structured_transition_matrix(4, rng, determinism=0.9, self_loop=0.5)


class TestClampedSelfLoop:
    def test_clamps_to_residual(self):
        assert clamped_self_loop(0.95, 0.3) == pytest.approx(0.05)

    def test_passes_when_compatible(self):
        assert clamped_self_loop(0.7, 0.2) == pytest.approx(0.2)

    def test_full_determinism_gives_zero(self):
        assert clamped_self_loop(1.0, 0.3) == 0.0


class TestMarkovChain:
    def test_deterministic_cycle_visits_all_states(self, rng):
        matrix = structured_transition_matrix(
            5, rng, determinism=1.0, self_loop=0.0
        )
        chain = MarkovChain(matrix, rng, initial_state=0)
        states = set(chain.walk(5).tolist())
        assert states == set(range(5))

    def test_stationary_coverage(self, rng):
        matrix = structured_transition_matrix(4, rng, determinism=0.7)
        chain = MarkovChain(matrix, rng)
        states = chain.walk(2000)
        # Every state should be visited in a long irreducible walk.
        assert set(states.tolist()) == set(range(4))

    def test_seeded_reproducibility(self):
        rng_a = np.random.default_rng(99)
        matrix = structured_transition_matrix(6, rng_a, determinism=0.8)
        chain_a = MarkovChain(matrix, np.random.default_rng(1), initial_state=0)
        chain_b = MarkovChain(matrix, np.random.default_rng(1), initial_state=0)
        assert chain_a.walk(50).tolist() == chain_b.walk(50).tolist()

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            MarkovChain(np.ones((2, 3)) / 3, rng)

    def test_non_stochastic_rejected(self, rng):
        with pytest.raises(ValueError):
            MarkovChain(np.ones((2, 2)), rng)

    def test_bad_initial_state_rejected(self, rng):
        matrix = np.eye(3)
        with pytest.raises(ValueError):
            MarkovChain(matrix, rng, initial_state=5)
