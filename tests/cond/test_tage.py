"""Unit tests for the TAGE conditional predictor."""

import numpy as np
import pytest

from repro.cond.tage import TAGE, TAGEConfig


class TestTAGEConfig:
    def test_defaults_valid(self):
        assert TAGEConfig().num_tagged == 7

    def test_mismatched_widths_rejected(self):
        with pytest.raises(ValueError):
            TAGEConfig(num_tagged=2, tag_bits=(8,))

    def test_unsorted_lengths_rejected(self):
        with pytest.raises(ValueError):
            TAGEConfig(
                num_tagged=2, tag_bits=(8, 8), history_lengths=(20, 10)
            )


class TestTAGE:
    def test_learns_bias(self):
        predictor = TAGE()
        for _ in range(30):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000)

    def test_learns_period_pattern(self):
        predictor = TAGE()
        hits = 0
        for i in range(2000):
            taken = (i % 5) == 0
            if predictor.predict(0x1000) == taken and i > 1000:
                hits += 1
            predictor.update(0x1000, taken)
        assert hits > 950

    def test_learns_cross_branch_correlation(self):
        predictor = TAGE()
        rng = np.random.default_rng(1)
        hits = 0
        trials = 2000
        for i in range(trials):
            signal = bool(rng.integers(2))
            predictor.update(0x2000, signal)
            if predictor.predict(0x3000) == signal and i > trials // 2:
                hits += 1
            predictor.update(0x3000, signal)
        assert hits > 0.9 * (trials // 2 - 1)

    def test_train_weights_keeps_history(self):
        predictor = TAGE()
        head_before = predictor._history_head
        predictor.train_weights(0x1000, True)
        assert predictor._history_head == head_before

    def test_update_advances_history(self):
        predictor = TAGE()
        head_before = predictor._history_head
        predictor.update(0x1000, True)
        assert predictor._history_head != head_before

    def test_u_reset_fires(self):
        predictor = TAGE(TAGEConfig(u_reset_period=64))
        rng = np.random.default_rng(2)
        for _ in range(200):
            predictor.update(0x1000, bool(rng.integers(2)))
        for table in predictor._tables:
            assert int(table.useful.max()) <= 3

    def test_deterministic(self):
        def run():
            predictor = TAGE()
            rng = np.random.default_rng(3)
            outcomes = []
            for _ in range(500):
                pc = 0x1000 + int(rng.integers(4)) * 0x40
                outcomes.append(predictor.predict(pc))
                predictor.update(pc, bool(rng.integers(2)))
            return outcomes

        assert run() == run()

    def test_storage_budget(self):
        budget = TAGE().storage_budget()
        assert budget.total_bits() > 0
        assert any("bimodal" in item for item, _ in budget.items)
