"""Cross-predictor sanity on a realistic conditional stream.

The suite's conditional branches are the signal carrier for every
indirect predictor; these tests pin down that each conditional
substrate actually exploits that structure, and that their relative
ordering is sane (perceptron-family >= gshare on signal-heavy streams).
"""

import pytest

from repro.cond import (
    BLBPConditional,
    GShare,
    HashedPerceptron,
    MultiperspectivePerceptron,
    TAGE,
)
from repro.sim.engine import simulate_conditional


@pytest.fixture(scope="module")
def stream():
    from repro.workloads import VirtualDispatchSpec

    return VirtualDispatchSpec(
        name="cond-stream", seed=7, num_records=4000, num_types=4,
        num_sites=2, determinism=0.95, filler_conditionals=6,
    ).generate()


class TestConditionalSubstrates:
    @pytest.mark.parametrize(
        "factory",
        [GShare, HashedPerceptron, MultiperspectivePerceptron, TAGE,
         BLBPConditional],
        ids=["gshare", "hashed-perceptron", "MPP", "TAGE", "BLBP-cond"],
    )
    def test_each_beats_static_prediction(self, factory, stream):
        """Static always-taken gets the loop branches but misses the
        signal branches ~half the time; any dynamic predictor must beat
        the static not-taken rate."""
        result = simulate_conditional(factory(), stream)
        taken_rate = float(stream.takens[stream.types == 0].mean())
        static_best = max(taken_rate, 1.0 - taken_rate)
        assert 1.0 - result.misprediction_rate() > static_best

    def test_history_predictors_beat_gshare_is_not_required_but_close(
        self, stream
    ):
        """On this structured stream every predictor should land within
        a modest band — a gross outlier indicates a broken substrate."""
        rates = {}
        for factory in (GShare, HashedPerceptron, TAGE, BLBPConditional):
            rates[factory.__name__] = simulate_conditional(
                factory(), stream
            ).misprediction_rate()
        best = min(rates.values())
        for name, rate in rates.items():
            assert rate < best + 0.25, (name, rates)
