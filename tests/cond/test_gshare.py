"""Unit tests for repro.cond.gshare."""

import numpy as np

from repro.cond.gshare import GShare


class TestGShare:
    def test_learns_biased_branch(self):
        predictor = GShare(index_bits=10, history_bits=8)
        for _ in range(50):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000)

    def test_learns_alternating_pattern(self):
        predictor = GShare(index_bits=12, history_bits=8)
        outcome = True
        for _ in range(400):
            predictor.update(0x1000, outcome)
            outcome = not outcome
        hits = 0
        for _ in range(100):
            if predictor.predict(0x1000) == outcome:
                hits += 1
            predictor.update(0x1000, outcome)
            outcome = not outcome
        assert hits >= 95

    def test_learns_history_correlation(self):
        """Branch B's outcome equals branch A's previous outcome."""
        rng = np.random.default_rng(0)
        predictor = GShare(index_bits=12, history_bits=8)
        hits = 0
        trials = 600
        for i in range(trials):
            a_outcome = bool(rng.integers(2))
            predictor.update(0x2000, a_outcome)
            predicted = predictor.predict(0x3000)
            if i > trials // 2 and predicted == a_outcome:
                hits += 1
            predictor.update(0x3000, a_outcome)
        assert hits > 0.9 * (trials // 2 - 1)

    def test_storage_budget(self):
        budget = GShare(index_bits=14, history_bits=14).storage_budget()
        assert budget.total_bits() == (1 << 14) * 2 + 14

    def test_initial_prediction_weakly_not_taken(self):
        assert not GShare().predict(0x1234)
