"""Unit tests for repro.cond.mpp (multiperspective perceptron)."""

import numpy as np
import pytest

from repro.cond.mpp import DEFAULT_FEATURES, MultiperspectivePerceptron


class TestMPP:
    def test_learns_bias(self):
        predictor = MultiperspectivePerceptron(index_bits=10)
        for _ in range(60):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000)

    def test_learns_local_pattern(self):
        """A period-2 per-branch pattern is a local-history specialty."""
        predictor = MultiperspectivePerceptron(index_bits=10)
        outcome = True
        for _ in range(600):
            predictor.update(0x7000, outcome)
            outcome = not outcome
        hits = 0
        for _ in range(100):
            if predictor.predict(0x7000) == outcome:
                hits += 1
            predictor.update(0x7000, outcome)
            outcome = not outcome
        assert hits >= 90

    def test_learns_global_correlation(self):
        predictor = MultiperspectivePerceptron(index_bits=12)
        rng = np.random.default_rng(5)
        hits = 0
        trials = 1000
        for i in range(trials):
            signal = bool(rng.integers(2))
            predictor.update(0x2000, signal)
            if predictor.predict(0x3000) == signal and i > trials // 2:
                hits += 1
            predictor.update(0x3000, signal)
        assert hits > 0.85 * (trials // 2 - 1)

    def test_train_weights_keeps_histories(self):
        predictor = MultiperspectivePerceptron()
        predictor.update(0x1000, True)
        ghist_before = predictor._ghist.value()
        predictor.train_weights(0x9999, True)
        assert predictor._ghist.value() == ghist_before

    def test_unknown_feature_kind_rejected(self):
        with pytest.raises(ValueError):
            MultiperspectivePerceptron(features=(("astrology", 7),))

    def test_empty_features_rejected(self):
        with pytest.raises(ValueError):
            MultiperspectivePerceptron(features=())

    def test_storage_budget_counts_each_feature(self):
        predictor = MultiperspectivePerceptron()
        budget = predictor.storage_budget()
        table_items = [
            item for item, _ in budget.items if item.startswith("weights")
        ]
        assert len(table_items) == len(DEFAULT_FEATURES)
