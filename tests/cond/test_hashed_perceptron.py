"""Unit tests for repro.cond.hashed_perceptron."""

import numpy as np
import pytest

from repro.cond.hashed_perceptron import (
    AdaptiveThreshold,
    DEFAULT_HISTORY_LENGTHS,
    HashedPerceptron,
)


class TestAdaptiveThreshold:
    def test_theta_rises_under_mispredictions(self):
        threshold = AdaptiveThreshold(initial_theta=10, counter_bits=4)
        for _ in range(100):
            threshold.observe(mispredicted=True, trained_on_correct=False)
        assert threshold.theta > 10

    def test_theta_falls_under_low_margin_training(self):
        threshold = AdaptiveThreshold(initial_theta=10, counter_bits=4)
        for _ in range(200):
            threshold.observe(mispredicted=False, trained_on_correct=True)
        assert threshold.theta < 10

    def test_theta_never_below_one(self):
        threshold = AdaptiveThreshold(initial_theta=1, counter_bits=3)
        for _ in range(500):
            threshold.observe(mispredicted=False, trained_on_correct=True)
        assert threshold.theta >= 1

    def test_neutral_events_leave_theta(self):
        threshold = AdaptiveThreshold(initial_theta=7)
        for _ in range(100):
            threshold.observe(mispredicted=False, trained_on_correct=False)
        assert threshold.theta == 7

    def test_bad_theta_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveThreshold(initial_theta=0)


class TestHashedPerceptron:
    def test_learns_bias(self):
        predictor = HashedPerceptron(index_bits=10)
        for _ in range(60):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000)

    def test_learns_short_history_pattern(self):
        predictor = HashedPerceptron(index_bits=12)
        rng = np.random.default_rng(1)
        hits = 0
        trials = 1000
        for i in range(trials):
            signal = bool(rng.integers(2))
            predictor.update(0x2000, signal)  # leaks the signal
            predicted = predictor.predict(0x3000)
            if i > trials // 2 and predicted == signal:
                hits += 1
            predictor.update(0x3000, signal)
        assert hits > 0.85 * (trials // 2 - 1)

    def test_train_weights_does_not_advance_history(self):
        predictor = HashedPerceptron(index_bits=10)
        before = predictor._history.value()
        predictor.train_weights(0x5000, True)
        assert predictor._history.value() == before

    def test_update_advances_history(self):
        predictor = HashedPerceptron(index_bits=10)
        before = predictor._history.value()
        predictor.update(0x5000, True)
        assert predictor._history.value() != before

    def test_weights_saturate(self):
        predictor = HashedPerceptron(index_bits=8, weight_bits=4)
        for _ in range(500):
            predictor.train_weights(0x1000, True)
        assert all(int(t.max()) <= 7 for t in predictor._tables)

    def test_storage_budget_scales_with_tables(self):
        small = HashedPerceptron(history_lengths=(0, 8), index_bits=10)
        large = HashedPerceptron(history_lengths=DEFAULT_HISTORY_LENGTHS,
                                 index_bits=10)
        assert (
            large.storage_budget().total_bits()
            > small.storage_budget().total_bits()
        )

    def test_empty_lengths_rejected(self):
        with pytest.raises(ValueError):
            HashedPerceptron(history_lengths=())
