"""Unit tests for BLBP-as-conditional-predictor (§6 future work)."""

import numpy as np
import pytest

from repro.cond.blbp_cond import BLBPConditional
from repro.core.config import BLBPConfig


class TestBLBPConditional:
    def test_learns_bias(self):
        predictor = BLBPConditional()
        for _ in range(60):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000)

    def test_learns_local_pattern(self):
        predictor = BLBPConditional()
        outcome = True
        for _ in range(600):
            predictor.update(0x1000, outcome)
            outcome = not outcome
        hits = 0
        for _ in range(100):
            if predictor.predict(0x1000) == outcome:
                hits += 1
            predictor.update(0x1000, outcome)
            outcome = not outcome
        assert hits >= 90

    def test_learns_global_correlation_with_filler(self):
        predictor = BLBPConditional()
        rng = np.random.default_rng(5)
        hits = 0
        trials = 1500
        for i in range(trials):
            signal = bool(rng.integers(2))
            predictor.update(0x2000, signal)
            for _ in range(12):
                predictor.update(0x600, True)  # predictable filler
            if predictor.predict(0x3000) == signal and i > trials // 2:
                hits += 1
            predictor.update(0x3000, signal)
        assert hits > 0.85 * (trials // 2 - 1)

    def test_train_weights_keeps_history(self):
        predictor = BLBPConditional()
        predictor.update(0x1000, True)
        ghist_before = predictor._ghist
        predictor.train_weights(0x9999, False)
        assert predictor._ghist == ghist_before

    def test_respects_config_toggles(self):
        config = BLBPConfig(
            use_transfer_function=False, use_adaptive_threshold=False
        )
        predictor = BLBPConditional(config)
        for _ in range(40):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000)
        assert predictor.threshold.theta(0) == config.initial_theta

    def test_storage_budget_small(self):
        # One lane instead of twelve: the weight state is K=12x smaller
        # than BLBP's.
        budget = BLBPConditional().storage_budget()
        weight_bits = dict(budget.items)["weights (8 single-lane arrays)"]
        assert weight_bits == 8 * 1024 * 4
