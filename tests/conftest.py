"""Shared fixtures: small deterministic traces and predictor factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace
from repro.workloads import (
    CallReturnSpec,
    InterpreterSpec,
    SwitchCaseSpec,
    VirtualDispatchSpec,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_trace() -> Trace:
    """A hand-written trace exercising every branch type."""
    records = [
        BranchRecord(0x1000, BranchType.CONDITIONAL, True, 0x1010, inst_gap=3),
        BranchRecord(0x1010, BranchType.DIRECT_CALL, True, 0x2000, inst_gap=1),
        BranchRecord(0x2040, BranchType.CONDITIONAL, False, 0x2044, inst_gap=2),
        BranchRecord(0x2080, BranchType.RETURN, True, 0x1014, inst_gap=0),
        BranchRecord(0x1020, BranchType.INDIRECT_CALL, True, 0x3000, inst_gap=4),
        BranchRecord(0x3080, BranchType.RETURN, True, 0x1024, inst_gap=1),
        BranchRecord(0x1030, BranchType.INDIRECT_JUMP, True, 0x4000, inst_gap=2),
        BranchRecord(0x4000, BranchType.DIRECT_JUMP, True, 0x1000, inst_gap=0),
    ]
    return Trace.from_records("tiny", records)


@pytest.fixture
def vdispatch_trace() -> Trace:
    return VirtualDispatchSpec(
        name="vd-test", seed=7, num_records=4000, num_types=4, num_sites=2,
        determinism=0.95, filler_conditionals=6,
    ).generate()


@pytest.fixture
def switchcase_trace() -> Trace:
    return SwitchCaseSpec(
        name="sw-test", seed=8, num_records=4000, num_cases=8,
        determinism=0.95, filler_conditionals=6,
    ).generate()


@pytest.fixture
def interpreter_trace() -> Trace:
    return InterpreterSpec(
        name="in-test", seed=9, num_records=4000, num_opcodes=12,
        program_length=20, filler_conditionals=4,
    ).generate()


@pytest.fixture
def callret_trace() -> Trace:
    return CallReturnSpec(
        name="cr-test", seed=10, num_records=4000, filler_conditionals=6,
    ).generate()
