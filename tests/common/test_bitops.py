"""Unit tests for repro.common.bitops."""

import pytest

from repro.common.bitops import (
    bit_of,
    bits_of,
    bits_to_int,
    mask,
    sign_magnitude_bits,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(12) == 0xFFF

    def test_wide(self):
        assert mask(64) == (1 << 64) - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitOf:
    def test_low_bits(self):
        assert bit_of(0b1010, 0) == 0
        assert bit_of(0b1010, 1) == 1
        assert bit_of(0b1010, 3) == 1

    def test_beyond_value(self):
        assert bit_of(0b1, 40) == 0

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            bit_of(1, -1)


class TestBitsOf:
    def test_lsb_first_order(self):
        assert bits_of(0b1101, 4) == [1, 0, 1, 1]

    def test_low_offset(self):
        # Bits 2..5 of 0b110100 are [1, 0, 1, 1].
        assert bits_of(0b110100, 4, low=2) == [1, 0, 1, 1]

    def test_zero_width(self):
        assert bits_of(0xFF, 0) == []

    def test_width_beyond_value_pads_zero(self):
        assert bits_of(0b1, 4) == [1, 0, 0, 0]

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            bits_of(1, -2)


class TestBitsToInt:
    def test_round_trip(self):
        for value in (0, 1, 0b1011, 0xABC):
            assert bits_to_int(bits_of(value, 12)) == value

    def test_round_trip_with_low(self):
        value = 0xA5C
        field = bits_of(value, 8, low=2)
        assert bits_to_int(field, low=2) == (value & (0xFF << 2))

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    def test_empty(self):
        assert bits_to_int([]) == 0


class TestSignMagnitude:
    def test_four_bit_weights_range_seven(self):
        # The paper's 4-bit sign/magnitude weights span [-7, +7].
        assert sign_magnitude_bits(4) == 7

    def test_other_widths(self):
        assert sign_magnitude_bits(2) == 1
        assert sign_magnitude_bits(6) == 31

    def test_one_bit_rejected(self):
        with pytest.raises(ValueError):
            sign_magnitude_bits(1)
