"""Unit tests for repro.common.history."""

import pytest

from repro.common.history import GlobalHistory, LocalHistoryTable, PathHistory


class TestGlobalHistory:
    def test_push_and_value(self):
        history = GlobalHistory(8)
        for outcome in (True, False, True):  # bit 0 holds the last push
            history.push(outcome)
        assert history.value() == 0b101

    def test_capacity_truncates(self):
        history = GlobalHistory(4)
        for _ in range(10):
            history.push(True)
        assert history.value() == 0b1111

    def test_interval_extraction(self):
        history = GlobalHistory(16)
        # Push 10010 (first push = oldest).
        for outcome in (True, False, False, True, False):
            history.push(outcome)
        # Positions: 0 = most recent (False), 4 = oldest (True).
        assert history.interval(0, 0) == 0
        assert history.interval(4, 4) == 1
        assert history.interval(0, 4) == 0b10010

    def test_interval_bounds_checked(self):
        history = GlobalHistory(8)
        with pytest.raises(ValueError):
            history.interval(0, 8)
        with pytest.raises(ValueError):
            history.interval(5, 3)

    def test_folded_interval_width(self):
        history = GlobalHistory(32)
        for outcome in [True, False] * 16:
            history.push(outcome)
        folded = history.folded_interval(0, 31, 8)
        assert 0 <= folded < 256

    def test_reset(self):
        history = GlobalHistory(8)
        history.push(True)
        history.reset()
        assert history.value() == 0

    def test_len(self):
        assert len(GlobalHistory(630)) == 630


class TestPathHistory:
    def test_folded_changes_with_path(self):
        path_a = PathHistory(8)
        path_b = PathHistory(8)
        for pc in (0x1000, 0x1010, 0x1020):
            path_a.push(pc)
        for pc in (0x1000, 0x1020, 0x1010):
            path_b.push(pc)
        assert path_a.folded(3, 10) != path_b.folded(3, 10)

    def test_depth_limits_memory(self):
        path = PathHistory(2)
        path.push(0x1000)
        path.push(0x2000)
        snapshot = path.folded(2, 10)
        path.push(0x1000)
        path.push(0x2000)
        path.push(0x1000)
        path.push(0x2000)
        assert path.folded(2, 10) == snapshot

    def test_reset(self):
        path = PathHistory(4)
        path.push(0x1234)
        path.reset()
        assert path.folded(4, 8) == 0

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            PathHistory(0)


class TestLocalHistoryTable:
    def test_per_pc_isolation_when_no_alias(self):
        table = LocalHistoryTable(256, 10)
        table.push(0x1000, 1)
        table.push(0x1000, 1)
        # A different PC (unlikely to alias in 256 entries) is unaffected
        # unless it hashes to the same row; check both directions.
        row_a = table.read(0x1000)
        assert row_a == 0b11

    def test_shift_direction_most_recent_is_bit0(self):
        table = LocalHistoryTable(16, 4)
        table.push(0x40, 1)
        table.push(0x40, 0)
        assert table.read(0x40) == 0b10

    def test_width_truncation(self):
        table = LocalHistoryTable(16, 3)
        for _ in range(5):
            table.push(0x40, 1)
        assert table.read(0x40) == 0b111

    def test_rejects_non_bit(self):
        table = LocalHistoryTable(16, 4)
        with pytest.raises(ValueError):
            table.push(0x40, 2)

    def test_storage_bits(self):
        # The paper's local history: 256 entries x 10 bits.
        assert LocalHistoryTable(256, 10).storage_bits() == 2560

    def test_reset(self):
        table = LocalHistoryTable(16, 4)
        table.push(0x40, 1)
        table.reset()
        assert table.read(0x40) == 0
