"""Unit tests for repro.common.replacement (LRU and RRIP)."""

import pytest

from repro.common.replacement import LRUPolicy, RRIPPolicy


class TestLRU:
    def test_untouched_ways_evicted_first(self):
        lru = LRUPolicy(4)
        lru.touch(0)
        lru.touch(1)
        assert lru.victim() == 2

    def test_least_recent_evicted_when_full(self):
        lru = LRUPolicy(3)
        for way in (0, 1, 2):
            lru.touch(way)
        assert lru.victim() == 0
        lru.touch(0)
        assert lru.victim() == 1

    def test_touch_promotes(self):
        lru = LRUPolicy(3)
        for way in (0, 1, 2):
            lru.touch(way)
        lru.touch(0)  # 1 becomes LRU
        lru.touch(1)  # 2 becomes LRU
        assert lru.victim() == 2

    def test_evict_forgets(self):
        lru = LRUPolicy(2)
        lru.touch(0)
        lru.touch(1)
        lru.evict(0)
        assert 0 not in lru.recency_order()

    def test_out_of_range_rejected(self):
        lru = LRUPolicy(2)
        with pytest.raises(ValueError):
            lru.touch(2)

    def test_storage_bits_per_entry(self):
        assert LRUPolicy.storage_bits_per_entry(64) == 6
        assert LRUPolicy.storage_bits_per_entry(2) == 1


class TestRRIP:
    def test_empty_ways_are_victims(self):
        rrip = RRIPPolicy(4, rrpv_bits=2)
        assert rrip.victim() == 0

    def test_hit_promotes_to_zero(self):
        rrip = RRIPPolicy(4)
        rrip.insert(0)
        rrip.touch(0)
        assert rrip.rrpv(0) == 0

    def test_insert_uses_long_interval(self):
        rrip = RRIPPolicy(4, rrpv_bits=2)
        rrip.insert(1)
        assert rrip.rrpv(1) == 2  # max-1 for 2-bit RRPV

    def test_victim_ages_set_until_max_found(self):
        rrip = RRIPPolicy(2, rrpv_bits=2)
        rrip.insert(0)
        rrip.touch(0)   # rrpv 0
        rrip.insert(1)  # rrpv 2
        assert rrip.victim() == 1
        # After eviction-fill of way 1 and promotion, victimize again:
        rrip.touch(1)
        victim = rrip.victim()  # both at 0 -> aging loop must terminate
        assert victim in (0, 1)

    def test_recently_touched_survives(self):
        rrip = RRIPPolicy(3)
        for way in range(3):
            rrip.insert(way)
        rrip.touch(1)
        assert rrip.victim() != 1

    def test_storage_bits(self):
        assert RRIPPolicy(64, rrpv_bits=2).storage_bits() == 128

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            RRIPPolicy(0)
        with pytest.raises(ValueError):
            RRIPPolicy(4, rrpv_bits=0)
