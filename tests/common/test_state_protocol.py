"""The snapshot/restore protocol on the common building blocks.

Every structure must (a) round-trip through real JSON — a snapshot that
only survives in-process is not a checkpoint — (b) hash identically
after restore, (c) keep behaving identically after restore, and (d)
reject snapshots from a differently-shaped twin instead of silently
loading them.
"""

import json

import numpy as np
import pytest

from repro.common.counters import SaturatingCounter, SignedSaturatingCounter
from repro.common.hashing import FoldedHistory
from repro.common.history import GlobalHistory, LocalHistoryTable, PathHistory
from repro.common.replacement import LRUPolicy, RRIPPolicy
from repro.common.state import (
    STATE_PROTOCOL_VERSION,
    StateError,
    canonical_json,
    check_state,
    decode_array,
    encode_array,
    hash_state,
)


def json_roundtrip(state):
    """Force the snapshot through the serialization a checkpoint uses."""
    return json.loads(canonical_json(state))


class TestEnvelope:
    def test_check_state_accepts_matching_envelope(self):
        state = {"v": STATE_PROTOCOL_VERSION, "kind": "Thing", "x": 1}
        assert check_state(state, "Thing") is state

    def test_check_state_rejects_wrong_kind(self):
        state = {"v": STATE_PROTOCOL_VERSION, "kind": "Other"}
        with pytest.raises(StateError, match="kind mismatch"):
            check_state(state, "Thing")

    def test_check_state_rejects_unknown_version(self):
        state = {"v": 999, "kind": "Thing"}
        with pytest.raises(StateError, match="version"):
            check_state(state, "Thing")

    def test_check_state_rejects_non_dict(self):
        with pytest.raises(StateError, match="state dict"):
            check_state([1, 2], "Thing")

    def test_canonical_json_rejects_numpy_scalars(self):
        with pytest.raises(StateError, match="JSON-ready"):
            canonical_json({"x": np.int64(3)})

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(StateError):
            canonical_json({"x": float("nan")})

    def test_hash_is_key_order_insensitive(self):
        assert hash_state({"a": 1, "b": 2}) == hash_state({"b": 2, "a": 1})


class TestArrayCodec:
    @pytest.mark.parametrize("dtype", ["int8", "int32", "int64", "uint64"])
    def test_roundtrip_preserves_dtype_shape_values(self, dtype):
        array = np.arange(24, dtype=dtype).reshape(4, 6)
        restored = decode_array(json_roundtrip({"a": encode_array(array)})["a"])
        assert restored.dtype == array.dtype
        assert restored.shape == array.shape
        assert np.array_equal(restored, array)

    def test_decoded_array_is_writable(self):
        restored = decode_array(encode_array(np.zeros(4, dtype=np.int8)))
        restored[0] = 1  # would raise on a frombuffer view
        assert restored[0] == 1

    def test_malformed_payload_raises_state_error(self):
        with pytest.raises(StateError):
            decode_array({"__ndarray__": "!!!", "dtype": "int8", "shape": [1]})


def _drive_fold(fold, bits):
    window = []
    for bit in bits:
        window.append(bit)
        outgoing = window.pop(0) if len(window) > fold.length else 0
        fold.update(bit, outgoing)


class TestCommonStructures:
    def test_folded_history_roundtrip_and_continuation(self):
        a = FoldedHistory(13, 5)
        _drive_fold(a, [1, 0, 1, 1, 0, 0, 1] * 4)
        b = FoldedHistory(13, 5)
        b.load_state(json_roundtrip(a.state_dict()))
        assert b.state_hash() == a.state_hash()
        _drive_fold(a, [0, 1, 1])
        _drive_fold(b, [0, 1, 1])
        assert b.fold == a.fold

    def test_folded_history_rejects_geometry_mismatch(self):
        with pytest.raises(StateError, match="geometry"):
            FoldedHistory(13, 6).load_state(FoldedHistory(13, 5).state_dict())

    def test_global_history_roundtrip(self):
        a = GlobalHistory(64)
        for i in range(100):
            a.push(i % 3 == 0)
        b = GlobalHistory(64)
        b.load_state(json_roundtrip(a.state_dict()))
        assert b.state_hash() == a.state_hash()
        a.push(True)
        b.push(True)
        assert b.value() == a.value()

    def test_global_history_rejects_out_of_range_bits(self):
        state = GlobalHistory(4).state_dict()
        state["bits"] = 1 << 10
        with pytest.raises(StateError):
            GlobalHistory(4).load_state(state)

    def test_path_history_roundtrip(self):
        a = PathHistory(16)
        for pc in range(0x1000, 0x1100, 4):
            a.push(pc)
        b = PathHistory(16)
        b.load_state(json_roundtrip(a.state_dict()))
        assert b.state_hash() == a.state_hash()
        assert b.folded(8, 7) == a.folded(8, 7)

    def test_local_history_table_roundtrip(self):
        a = LocalHistoryTable(32, 10)
        for pc in range(0x2000, 0x2400, 4):
            a.push(pc, (pc >> 3) & 1)
        b = LocalHistoryTable(32, 10)
        b.load_state(json_roundtrip(a.state_dict()))
        assert b.state_hash() == a.state_hash()
        assert b.read(0x2000) == a.read(0x2000)

    def test_lru_roundtrip_preserves_victim_choice(self):
        a = LRUPolicy(4)
        for way in (2, 0, 3, 0):
            a.touch(way)
        b = LRUPolicy(4)
        b.load_state(json_roundtrip(a.state_dict()))
        assert b.state_hash() == a.state_hash()
        assert b.victim() == a.victim()
        assert b.recency_order() == a.recency_order()

    def test_lru_rejects_duplicate_stack(self):
        state = LRUPolicy(4).state_dict()
        state["stack"] = [1, 1]
        with pytest.raises(StateError, match="malformed"):
            LRUPolicy(4).load_state(state)

    def test_rrip_roundtrip_preserves_victim_choice(self):
        a = RRIPPolicy(4)
        a.insert(1)
        a.touch(1)
        a.insert(2)
        b = RRIPPolicy(4)
        b.load_state(json_roundtrip(a.state_dict()))
        assert b.state_hash() == a.state_hash()
        assert b.victim() == a.victim()

    def test_rrip_rejects_overflowing_rrpv(self):
        state = RRIPPolicy(2, rrpv_bits=2).state_dict()
        state["rrpv"] = [0, 9]
        with pytest.raises(StateError, match="malformed"):
            RRIPPolicy(2, rrpv_bits=2).load_state(state)

    @pytest.mark.parametrize(
        "cls", [SaturatingCounter, SignedSaturatingCounter]
    )
    def test_counters_roundtrip(self, cls):
        a = cls(3)
        for _ in range(5):
            a.increment()
        b = cls(3)
        b.load_state(json_roundtrip(a.state_dict()))
        assert b.state_hash() == a.state_hash()
        assert b.value == a.value
