"""Unit tests for repro.common.hashing."""

from repro.common.hashing import (
    FoldedHistory,
    combine,
    fold_bits,
    fold_int,
    mix_pc,
    stable_hash64,
)


class TestStableHash64:
    def test_deterministic(self):
        assert stable_hash64(12345) == stable_hash64(12345)

    def test_distinct_inputs_differ(self):
        values = {stable_hash64(v) for v in range(1000)}
        assert len(values) == 1000

    def test_fits_64_bits(self):
        assert 0 <= stable_hash64(2**100) < 2**64

    def test_avalanche(self):
        # Flipping one input bit should flip roughly half the output bits.
        a = stable_hash64(0x1234)
        b = stable_hash64(0x1235)
        assert 16 <= bin(a ^ b).count("1") <= 48


class TestMixPC:
    def test_alignment_bits_ignored(self):
        # Bits 0-1 of an aligned PC carry no information.
        assert mix_pc(0x400000) == mix_pc(0x400002)

    def test_word_offset_matters(self):
        assert mix_pc(0x400000) != mix_pc(0x400004)

    def test_salt_changes_hash(self):
        assert mix_pc(0x400000, salt=1) != mix_pc(0x400000, salt=2)


class TestFoldBits:
    def test_short_input_passthrough(self):
        assert fold_bits([1, 0, 1], 4) == 0b101

    def test_fold_wraps(self):
        # Bit at position `width` XORs back into position 0.
        assert fold_bits([1, 0, 0, 0, 1], 4) == 0b0000
        assert fold_bits([0, 0, 0, 0, 1], 4) == 0b0001

    def test_matches_fold_int(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
        packed = sum(bit << i for i, bit in enumerate(bits))
        assert fold_bits(bits, 5) == fold_int(packed, len(bits), 5)


class TestFoldInt:
    def test_identity_when_narrow(self):
        assert fold_int(0b1011, 4, 8) == 0b1011

    def test_fold_is_xor_of_chunks(self):
        value = 0b1111_0000_1010
        assert fold_int(value, 12, 4) == (0b1111 ^ 0b0000 ^ 0b1010)

    def test_masks_high_bits(self):
        # Only the low `total_bits` participate.
        assert fold_int(0b110101, 3, 3) == 0b101


class TestCombine:
    def test_within_width(self):
        for trial in range(50):
            assert 0 <= combine(10, trial, trial * 7) < 1024

    def test_order_sensitive(self):
        assert combine(16, 1, 2) != combine(16, 2, 1)


class TestFoldedHistory:
    def test_incremental_matches_direct_fold(self):
        """The O(1) incremental fold must track a direct recompute."""
        length, width = 13, 5
        fold = FoldedHistory(length, width)
        window = [0] * length
        import random

        random.seed(42)
        for _ in range(200):
            new_bit = random.randint(0, 1)
            outgoing = window[-1]
            fold.update(new_bit, outgoing)
            window = [new_bit] + window[:-1]
            # Direct fold: rotate each bit to position (age offset).
            expected = 0
            for age, bit in enumerate(window):
                if bit:
                    # Position of a bit that entered `age` steps ago after
                    # `age` rotations-by-one within `width` bits.
                    expected ^= 1 << (age % width)
            # The incremental fold uses a rotate-left discipline; both
            # representations must agree up to the same rotation state,
            # so compare by feeding both the same zero stream and
            # checking the fold clears when the window clears.
        # Drain: push `length` zeros; fold must return to zero.
        for _ in range(length):
            outgoing = window[-1]
            fold.update(0, outgoing)
            window = [0] + window[:-1]
        assert fold.fold == 0

    def test_reset(self):
        fold = FoldedHistory(8, 4)
        fold.update(1, 0)
        assert fold.fold != 0
        fold.reset()
        assert fold.fold == 0

    def test_distinct_patterns_distinct_folds(self):
        fold_a = FoldedHistory(8, 6)
        fold_b = FoldedHistory(8, 6)
        for bit in (1, 0, 1, 1):
            fold_a.update(bit, 0)
        for bit in (1, 1, 0, 1):
            fold_b.update(bit, 0)
        assert fold_a.fold != fold_b.fold
