"""Unit tests for repro.common.counters."""

import pytest

from repro.common.counters import SaturatingCounter, SignedSaturatingCounter


class TestSaturatingCounter:
    def test_increments_to_max_and_saturates(self):
        counter = SaturatingCounter(width=2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3
        assert counter.is_max()

    def test_decrements_to_zero_and_saturates(self):
        counter = SaturatingCounter(width=2, initial=2)
        for _ in range(10):
            counter.decrement()
        assert counter.value == 0
        assert counter.is_min()

    def test_initial_value_respected(self):
        assert SaturatingCounter(width=3, initial=5).value == 5

    def test_initial_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(width=2, initial=4)

    def test_reset(self):
        counter = SaturatingCounter(width=2, initial=3)
        counter.reset()
        assert counter.value == 0
        counter.reset(2)
        assert counter.value == 2

    def test_reset_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(width=2).reset(9)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(width=0)


class TestSignedSaturatingCounter:
    def test_range_bounds(self):
        counter = SignedSaturatingCounter(width=4)
        assert counter.min_value == -8
        assert counter.max_value == 7

    def test_saturates_positive(self):
        counter = SignedSaturatingCounter(width=3)
        for _ in range(20):
            counter.increment()
        assert counter.value == 3

    def test_saturates_negative(self):
        counter = SignedSaturatingCounter(width=3)
        for _ in range(20):
            counter.decrement()
        assert counter.value == -4

    def test_is_positive_at_zero(self):
        # Perceptron convention: sum >= 0 predicts taken/one.
        assert SignedSaturatingCounter(width=4).is_positive()

    def test_is_positive_after_decrement(self):
        counter = SignedSaturatingCounter(width=4)
        counter.decrement()
        assert not counter.is_positive()

    def test_initial_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SignedSaturatingCounter(width=3, initial=5)
