"""Unit tests for repro.common.storage."""

import pytest

from repro.common.storage import BITS_PER_KB, StorageBudget


class TestStorageBudget:
    def test_total_bits_sums_items(self):
        budget = StorageBudget("test")
        budget.add("a", 100)
        budget.add("b", 28)
        assert budget.total_bits() == 128

    def test_add_table(self):
        budget = StorageBudget("test")
        budget.add_table("weights", rows=1024, bits_per_row=48)
        assert budget.total_bits() == 1024 * 48

    def test_kilobytes(self):
        budget = StorageBudget("test")
        budget.add("x", BITS_PER_KB * 64)
        assert budget.total_kilobytes() == pytest.approx(64.0)

    def test_negative_rejected(self):
        budget = StorageBudget("test")
        with pytest.raises(ValueError):
            budget.add("bad", -1)

    def test_as_dict_merges_duplicates(self):
        budget = StorageBudget("test")
        budget.add("tags", 10)
        budget.add("tags", 15)
        assert budget.as_dict() == {"tags": 25}

    def test_format_table_mentions_components(self):
        budget = StorageBudget("mypred")
        budget.add("weights", 4096)
        rendered = budget.format_table()
        assert "mypred" in rendered
        assert "weights" in rendered
        assert "4096" in rendered

    def test_empty_budget(self):
        budget = StorageBudget("empty")
        assert budget.total_bits() == 0
        assert "0.00 KB" in budget.format_table()
