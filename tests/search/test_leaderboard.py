"""Tests for leaderboard ranking and deterministic exports."""

import json

from repro.search.journal import SearchRecord
from repro.search.leaderboard import (
    build_leaderboard,
    format_leaderboard,
    leaderboard_to_json,
    save_leaderboard_json,
    save_leaderboard_markdown,
)


def _record(key, score, subset=2, generation=0):
    return SearchRecord(
        key=key,
        params={"weight_bits": 4},
        score=score,
        subset=subset,
        generation=generation,
    )


class TestRanking:
    def test_ranks_ascending_by_score(self):
        board = build_leaderboard(
            [_record("b", 2.0), _record("a", 1.0), _record("c", 3.0)]
        )
        assert [entry.key for entry in board.entries] == ["a", "b", "c"]
        assert [entry.rank for entry in board.entries] == [1, 2, 3]
        assert board.best.key == "a"

    def test_largest_subset_wins_per_candidate(self):
        board = build_leaderboard(
            [_record("a", 0.5, subset=1), _record("a", 2.5, subset=2)]
        )
        assert len(board.entries) == 1
        assert board.best.score == 2.5
        assert board.best.subset == 2

    def test_same_subset_keeps_lower_score(self):
        board = build_leaderboard(
            [_record("a", 2.0, subset=2), _record("a", 1.5, subset=2)]
        )
        assert board.best.score == 1.5

    def test_score_ties_break_on_key(self):
        board = build_leaderboard([_record("z", 1.0), _record("a", 1.0)])
        assert [entry.key for entry in board.entries] == ["a", "z"]

    def test_empty_board(self):
        board = build_leaderboard([])
        assert board.best is None
        assert board.top(5) == []
        assert "no candidates scored" in format_leaderboard(board)


class TestExports:
    def test_json_export_is_deterministic(self, tmp_path):
        records = [_record("b", 2.0), _record("a", 1.0)]
        first = save_leaderboard_json(
            build_leaderboard(records), tmp_path / "one.json"
        )
        second = save_leaderboard_json(
            build_leaderboard(list(reversed(records))), tmp_path / "two.json"
        )
        assert first.read_text() == second.read_text()
        payload = json.loads(first.read_text())
        assert [entry["key"] for entry in payload["entries"]] == ["a", "b"]

    def test_json_excludes_wall_clock(self):
        record = _record("a", 1.0)
        payload = leaderboard_to_json(build_leaderboard([record]))
        assert "elapsed" not in payload["entries"][0]

    def test_markdown_table(self, tmp_path):
        board = build_leaderboard([_record("a", 1.234567)])
        text = format_leaderboard(board)
        assert "| rank | mean MPKI |" in text
        assert "1.234567" in text
        assert "weight_bits=4" in text
        path = save_leaderboard_markdown(board, tmp_path / "lb.md")
        assert path.read_text().startswith("# Search leaderboard")

    def test_top_limits_markdown_rows(self):
        board = build_leaderboard(
            [_record(f"k{index}", float(index)) for index in range(10)]
        )
        text = format_leaderboard(board, top=3)
        assert text.count("\n") == 4  # header + divider + 3 rows
