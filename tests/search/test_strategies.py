"""Unit tests for repro.search.strategies (no simulation involved).

Strategies are exercised against synthetic score functions so these
tests stay fast and pin proposal/acceptance logic exactly.
"""

import pytest

from repro.search.space import ChoiceDimension, SearchSpace, SpaceError
from repro.search.strategies import (
    GridSearch,
    HillClimb,
    RandomSearch,
    SuccessiveHalving,
    make_strategy,
)


def _space():
    return SearchSpace(
        [
            ChoiceDimension("weight_bits", choices=(2, 3, 4, 5, 6)),
            ChoiceDimension("table_rows", choices=(128, 256, 512)),
        ]
    )


def _score(params):
    """Lower is better; unique optimum at (2, 128)."""
    return params["weight_bits"] + params["table_rows"] / 1000.0


class TestRandomSearch:
    def test_deterministic_given_seed(self):
        a = RandomSearch(_space(), seed=5, batch_size=4).propose()
        b = RandomSearch(_space(), seed=5, batch_size=4).propose()
        assert a.candidates == b.candidates

    def test_batch_size_respected(self):
        proposal = RandomSearch(_space(), seed=1, batch_size=6).propose()
        assert len(proposal.candidates) == 6

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            RandomSearch(_space(), batch_size=0)


class TestGridSearch:
    def test_covers_whole_grid_once(self):
        strategy = GridSearch(_space(), batch_size=4)
        seen = []
        while True:
            proposal = strategy.propose()
            if proposal is None:
                break
            seen.extend(
                (p["weight_bits"], p["table_rows"])
                for p in proposal.candidates
            )
            strategy.observe([(p, 0.0) for p in proposal.candidates])
        assert len(seen) == 15
        assert len(set(seen)) == 15

    def test_unenumerable_space_fails_fast(self):
        from repro.search.space import intervals_space

        with pytest.raises(SpaceError):
            GridSearch(intervals_space())


class TestHillClimb:
    def test_first_proposal_is_initial(self):
        initial = {"weight_bits": 4, "table_rows": 256}
        strategy = HillClimb(_space(), seed=2, initial=initial)
        proposal = strategy.propose()
        assert proposal.candidates == [initial]

    def test_accepts_only_strict_improvements(self):
        strategy = HillClimb(_space(), seed=3, batch_size=3)
        for _ in range(10):
            proposal = strategy.propose()
            scored = [(p, _score(p)) for p in proposal.candidates]
            best_before = strategy.best_score
            strategy.observe(scored)
            assert strategy.best_score <= best_before
        assert strategy.best_params is not None

    def test_mutates_the_incumbent(self):
        initial = {"weight_bits": 6, "table_rows": 512}
        strategy = HillClimb(_space(), seed=4, batch_size=2,
                             initial=initial)
        first = strategy.propose()
        strategy.observe([(p, _score(p)) for p in first.candidates])
        second = strategy.propose()
        for candidate in second.candidates:
            differences = [
                name for name in initial
                if candidate[name] != initial[name]
            ]
            assert len(differences) == 1


class TestSuccessiveHalving:
    def test_rungs_shrink_and_fractions_grow(self):
        strategy = SuccessiveHalving(_space(), seed=5,
                                     initial_candidates=8, eta=2)
        sizes, fractions = [], []
        while True:
            proposal = strategy.propose()
            if proposal is None:
                break
            sizes.append(len(proposal.candidates))
            fractions.append(proposal.trace_fraction)
            strategy.observe(
                [(p, _score(p)) for p in proposal.candidates]
            )
        assert sizes == [8, 4, 2, 1]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_survivors_are_the_best(self):
        strategy = SuccessiveHalving(_space(), seed=6,
                                     initial_candidates=4, eta=2)
        proposal = strategy.propose()
        scored = [(p, _score(p)) for p in proposal.candidates]
        strategy.observe(scored)
        survivors = strategy.propose().candidates
        cutoff = sorted(score for _, score in scored)[len(survivors) - 1]
        assert all(_score(p) <= cutoff for p in survivors)

    def test_validation(self):
        with pytest.raises(ValueError):
            SuccessiveHalving(_space(), initial_candidates=1)
        with pytest.raises(ValueError):
            SuccessiveHalving(_space(), eta=1)


class TestMakeStrategy:
    def test_all_cli_names(self):
        for name in ("hillclimb", "random", "grid", "sha"):
            strategy = make_strategy(name, _space(), seed=1, batch_size=4)
            assert strategy.propose() is not None

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("anneal", _space())
