"""Tests for the search journal (JSONL log + resume map)."""

import json

import pytest

from repro.search.journal import (
    SEARCH_JOURNAL_VERSION,
    SearchJournal,
    SearchJournalError,
    SearchRecord,
    load_search_journal,
    record_from_json,
    record_to_json,
)


def _record(key="k1", subset=2, score=1.5, generation=0):
    return SearchRecord(
        key=key,
        params={"weight_bits": 4},
        score=score,
        subset=subset,
        generation=generation,
        strategy="hillclimb",
        seed=7,
        elapsed=0.25,
    )


class TestRoundTrip:
    def test_record_json_round_trip(self):
        record = _record()
        rebuilt = record_from_json(record_to_json(record))
        assert rebuilt.key == record.key
        assert rebuilt.params == record.params
        assert rebuilt.score == record.score
        assert rebuilt.subset == record.subset
        assert rebuilt.strategy == record.strategy
        assert rebuilt.seed == record.seed
        assert rebuilt.resumed  # loaded records are marked as replayed

    def test_journal_write_then_load(self, tmp_path):
        path = tmp_path / "search.jsonl"
        with SearchJournal(path) as journal:
            journal.append(_record("a", subset=1))
            journal.append(_record("b", subset=2))
            journal.append(_record("a", subset=2))
        loaded = load_search_journal(path)
        assert set(loaded) == {("a", 1), ("b", 2), ("a", 2)}

    def test_append_after_close_raises(self, tmp_path):
        journal = SearchJournal(tmp_path / "s.jsonl")
        journal.close()
        with pytest.raises(SearchJournalError):
            journal.append(_record())


class TestRobustness:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_search_journal(tmp_path / "nope.jsonl") == {}

    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with SearchJournal(path) as journal:
            journal.append(_record("a"))
        with open(path, "a") as handle:
            handle.write('{"v": 1, "key": "b", "sco')
        loaded = load_search_journal(path)
        assert set(loaded) == {("a", 2)}

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        lines = [
            json.dumps(record_to_json(_record("a"))),
            "garbage {{{",
            json.dumps(record_to_json(_record("b"))),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SearchJournalError, match="corrupt"):
            load_search_journal(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        payload = record_to_json(_record("a"))
        payload["v"] = SEARCH_JOURNAL_VERSION + 1
        other = json.dumps(record_to_json(_record("b")))
        path.write_text(json.dumps(payload) + "\n" + other + "\n")
        with pytest.raises(SearchJournalError, match="version"):
            load_search_journal(path)
