"""End-to-end tests for :func:`repro.search.engine.run_search`.

Two load-bearing guarantees, both driven as hypothesis properties:

* parallel search == serial search — for a fixed seed the leaderboard
  is identical candidate-for-candidate regardless of ``jobs``;
* resume is free — a search resumed from a journal re-evaluates zero
  journaled candidates yet produces the leaderboard of an
  uninterrupted run.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.engine import run_search
from repro.search.evaluate import GenerationEvaluator
from repro.search.journal import load_search_journal
from repro.search.leaderboard import leaderboard_to_json
from repro.search.space import (
    ChoiceDimension,
    SearchSpace,
    intervals_space,
)
from repro.search.strategies import (
    HillClimb,
    RandomSearch,
    SuccessiveHalving,
    make_strategy,
)
from repro.workloads import SwitchCaseSpec, VirtualDispatchSpec


def _traces(seed=31, records=600):
    return [
        VirtualDispatchSpec(
            name="eng-vd", seed=seed, num_records=records, num_types=4,
            determinism=0.9, filler_conditionals=6,
        ).generate(),
        SwitchCaseSpec(
            name="eng-sw", seed=seed + 1, num_records=records,
            num_cases=8, determinism=0.9, filler_conditionals=6,
        ).generate(),
    ]


def _space():
    return SearchSpace(
        [
            ChoiceDimension("weight_bits", choices=(3, 4, 5)),
            ChoiceDimension("table_rows", choices=(256, 512, 1024)),
        ]
    )


def _boards_identical(left, right):
    assert leaderboard_to_json(left.leaderboard) == leaderboard_to_json(
        right.leaderboard
    )


class TestParallelEqualsSerial:
    @settings(max_examples=3, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        records=st.integers(min_value=300, max_value=800),
        batch=st.integers(min_value=2, max_value=3),
    )
    def test_leaderboards_identical_property(self, seed, records, batch):
        traces = _traces(seed=seed % 1000, records=records)
        results = []
        for jobs in (1, 2):
            strategy = HillClimb(_space(), seed=seed, batch_size=batch)
            with GenerationEvaluator(traces, jobs=jobs) as evaluator:
                results.append(run_search(strategy, evaluator, budget=6))
        serial, parallel = results
        _boards_identical(serial, parallel)
        assert serial.evaluations == parallel.evaluations == 6
        assert serial.generations == parallel.generations

    def test_intervals_space_parallel_equals_serial(self):
        traces = _traces()
        results = []
        for jobs in (1, 2):
            strategy = RandomSearch(intervals_space(), seed=9,
                                    batch_size=3)
            with GenerationEvaluator(traces, jobs=jobs) as evaluator:
                results.append(run_search(strategy, evaluator, budget=5))
        _boards_identical(results[0], results[1])


class TestResume:
    @settings(max_examples=3, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        interrupt_after=st.integers(min_value=2, max_value=5),
    )
    def test_resume_reevaluates_nothing_journaled(
        self, tmp_path_factory, seed, interrupt_after
    ):
        tmp_path = tmp_path_factory.mktemp("resume")
        traces = _traces(seed=seed % 1000, records=400)
        budget = 7

        def search(budget, journal=None, jobs=1):
            strategy = HillClimb(_space(), seed=seed, batch_size=2)
            with GenerationEvaluator(traces, jobs=jobs) as evaluator:
                return run_search(
                    strategy, evaluator, budget=budget,
                    journal_path=journal,
                )

        reference = search(budget)

        journal = tmp_path / f"s{seed}-{interrupt_after}.jsonl"
        interrupted = search(interrupt_after, journal=journal)
        journaled = set(load_search_journal(journal))
        resumed = search(budget, journal=journal, jobs=2)

        _boards_identical(reference, resumed)
        # Zero journaled candidates were re-simulated on resume.
        assert resumed.resumed == len(
            [r for r in resumed.records if (r.key, r.subset) in journaled]
        )
        assert (
            resumed.live_evaluations
            == reference.live_evaluations - interrupted.live_evaluations
        )
        assert interrupted.evaluations == interrupt_after

    def test_fully_journaled_resume_runs_zero_simulations(self, tmp_path):
        traces = _traces(records=400)
        journal = tmp_path / "search.jsonl"

        def search():
            strategy = HillClimb(_space(), seed=4, batch_size=2)
            with GenerationEvaluator(traces) as evaluator:
                result = run_search(
                    strategy, evaluator, budget=6, journal_path=journal
                )
                return result, evaluator.evaluated

        first, first_evaluated = search()
        second, second_evaluated = search()
        assert first.evaluations == second.evaluations == 6
        assert first_evaluated == first.live_evaluations > 0
        assert second_evaluated == second.live_evaluations == 0
        assert second.resumed == second.evaluations
        _boards_identical(first, second)


class TestBudgetAndStrategies:
    def test_budget_truncates_final_generation(self):
        traces = _traces(records=300)
        strategy = HillClimb(_space(), seed=1, batch_size=4)
        with GenerationEvaluator(traces) as evaluator:
            result = run_search(strategy, evaluator, budget=6)
        assert result.evaluations == 6
        # gen0 = 1 initial, gen1 = 4 mutants, gen2 truncated to 1.
        assert result.generations == 3
        assert len(result.records) == 6

    def test_bad_budget_rejected(self):
        strategy = HillClimb(_space(), seed=1)
        with GenerationEvaluator(_traces(records=300)) as evaluator:
            with pytest.raises(ValueError):
                run_search(strategy, evaluator, budget=0)

    def test_sha_final_scores_use_full_subset(self):
        traces = _traces(records=300)
        strategy = SuccessiveHalving(_space(), seed=2,
                                     initial_candidates=4, eta=2)
        with GenerationEvaluator(traces) as evaluator:
            result = run_search(strategy, evaluator, budget=10)
        # The surviving candidate was re-scored on the full trace set.
        assert any(
            entry.subset == len(traces)
            for entry in result.leaderboard.entries
        )
        assert math.isfinite(result.best_score)

    def test_all_strategies_produce_a_leaderboard(self):
        traces = _traces(records=300)
        for name in ("hillclimb", "random", "grid", "sha"):
            strategy = make_strategy(name, _space(), seed=3, batch_size=2)
            with GenerationEvaluator(traces) as evaluator:
                result = run_search(strategy, evaluator, budget=4)
            assert result.leaderboard.best is not None, name
            assert math.isfinite(result.best_score), name
