"""Tests for the batched generation evaluator."""

import math

import pytest

from repro.core.config import BLBPConfig
from repro.search.evaluate import (
    EvaluationError,
    GenerationEvaluator,
    config_candidate,
    make_candidate,
)
from repro.search.space import sizing_space
from repro.workloads import SwitchCaseSpec, VirtualDispatchSpec


@pytest.fixture(scope="module")
def eval_traces():
    return [
        VirtualDispatchSpec(
            name="ev-vd", seed=21, num_records=1200, num_types=4,
            determinism=0.95, filler_conditionals=6,
        ).generate(),
        SwitchCaseSpec(
            name="ev-sw", seed=22, num_records=1200, num_cases=8,
            determinism=0.95, filler_conditionals=6,
        ).generate(),
    ]


def _candidates(count=2):
    space = sizing_space()
    grid = list(space.grid())
    return [make_candidate(space, params) for params in grid[:count]]


class TestScoring:
    def test_scores_are_finite_and_ordered(self, eval_traces):
        candidates = _candidates(3)
        with GenerationEvaluator(eval_traces) as evaluator:
            scores = evaluator.score(candidates)
        assert len(scores) == 3
        assert all(math.isfinite(score) and score >= 0 for score in scores)

    def test_memo_makes_rescoring_free(self, eval_traces):
        candidates = _candidates(2)
        with GenerationEvaluator(eval_traces) as evaluator:
            first = evaluator.score(candidates)
            evaluated = evaluator.evaluated
            second = evaluator.score(candidates)
            assert evaluator.evaluated == evaluated
        assert first == second

    def test_duplicate_candidates_simulated_once(self, eval_traces):
        candidate = _candidates(1)[0]
        with GenerationEvaluator(eval_traces) as evaluator:
            scores = evaluator.score([candidate, candidate])
            assert evaluator.evaluated == 1
        assert scores[0] == scores[1]

    def test_parallel_equals_serial_scores(self, eval_traces):
        candidates = _candidates(3)
        with GenerationEvaluator(eval_traces, jobs=1) as serial:
            serial_scores = serial.score(candidates)
        with GenerationEvaluator(eval_traces, jobs=2) as parallel:
            parallel_scores = parallel.score(candidates)
        assert serial_scores == parallel_scores

    def test_subset_scores_prefix_only(self, eval_traces):
        candidate = _candidates(1)[0]
        with GenerationEvaluator(eval_traces) as evaluator:
            subset_score = evaluator.score([candidate], subset=1)[0]
            full_score = evaluator.score([candidate])[0]
        with GenerationEvaluator(eval_traces[:1]) as prefix_only:
            prefix_score = prefix_only.score([candidate])[0]
        assert subset_score == prefix_score
        assert math.isfinite(full_score)

    def test_prime_skips_simulation(self, eval_traces):
        candidate = _candidates(1)[0]
        with GenerationEvaluator(eval_traces) as evaluator:
            evaluator.prime(candidate.key, 2, 1.25)
            assert evaluator.score([candidate], subset=2) == [1.25]
            assert evaluator.evaluated == 0


class TestValidation:
    def test_needs_traces(self):
        with pytest.raises(EvaluationError):
            GenerationEvaluator([])

    def test_duplicate_trace_names_rejected(self, eval_traces):
        with pytest.raises(EvaluationError, match="duplicate"):
            GenerationEvaluator([eval_traces[0], eval_traces[0]])

    def test_bad_subset_rejected(self, eval_traces):
        candidate = _candidates(1)[0]
        with GenerationEvaluator(eval_traces) as evaluator:
            with pytest.raises(EvaluationError):
                evaluator.score([candidate], subset=0)
            with pytest.raises(EvaluationError):
                evaluator.score([candidate], subset=99)

    def test_subset_size_from_fraction(self, eval_traces):
        with GenerationEvaluator(eval_traces) as evaluator:
            assert evaluator.subset_size(1.0) == 2
            assert evaluator.subset_size(0.5) == 1
            assert evaluator.subset_size(0.01) == 1
            with pytest.raises(EvaluationError):
                evaluator.subset_size(0.0)


class TestSpillLifecycle:
    def test_temporary_spill_cleaned_up(self, eval_traces):
        evaluator = GenerationEvaluator(eval_traces)
        spill_dir = evaluator._dir
        assert spill_dir.exists()
        evaluator.close()
        assert not spill_dir.exists()

    def test_explicit_cache_dir_kept(self, eval_traces, tmp_path):
        spill = tmp_path / "spill"
        with GenerationEvaluator(eval_traces, cache_dir=spill) as evaluator:
            evaluator.score(_candidates(1))
        assert list(spill.glob("*.trace"))


class TestConfigCandidate:
    def test_label_keyed_identity(self):
        a = config_candidate("rows=64", BLBPConfig(table_rows=64))
        b = config_candidate("rows=64", BLBPConfig(table_rows=64))
        assert a.key == b.key and a.uid == b.uid
        assert a.uid.startswith("cand-")
