"""Unit tests for repro.search.space."""

import numpy as np
import pytest

from repro.core.config import BLBPConfig, transfer_magnitudes_for
from repro.search.space import (
    ChoiceDimension,
    IntDimension,
    IntervalsDimension,
    SearchSpace,
    SpaceError,
    default_space,
    intervals_space,
    sizing_space,
    toggle,
    toggles_space,
)


class TestDimensions:
    def test_int_dimension_sample_on_lattice(self):
        dim = IntDimension("rows", low=128, high=2048, step=128)
        rng = np.random.default_rng(0)
        for _ in range(200):
            value = dim.sample(rng)
            assert dim.contains(value)

    def test_int_dimension_mutate_stays_in_range(self):
        dim = IntDimension("k", low=4, high=16, step=4)
        rng = np.random.default_rng(1)
        value = 4
        for _ in range(200):
            value = dim.mutate(value, rng)
            assert dim.contains(value)

    def test_int_dimension_grid(self):
        assert IntDimension("x", low=2, high=6, step=2).grid_values() == [2, 4, 6]

    def test_bad_int_dimension_rejected(self):
        with pytest.raises(SpaceError):
            IntDimension("x", low=5, high=1)

    def test_choice_mutate_changes_value(self):
        dim = ChoiceDimension("bits", choices=(2, 3, 4))
        rng = np.random.default_rng(2)
        for _ in range(50):
            assert dim.mutate(3, rng) != 3

    def test_toggle_is_boolean_choice(self):
        dim = toggle("use_local_history")
        assert set(dim.grid_values()) == {False, True}

    def test_intervals_sample_well_formed(self):
        dim = IntervalsDimension("intervals", count=7, max_position=630)
        rng = np.random.default_rng(3)
        for _ in range(50):
            value = dim.sample(rng)
            assert dim.contains(value)
            assert len(value) == 7

    def test_intervals_mutate_well_formed(self):
        dim = IntervalsDimension("intervals", count=7, max_position=630)
        rng = np.random.default_rng(4)
        value = dim.sample(rng)
        for _ in range(300):
            value = dim.mutate(value, rng)
            for start, end in value:
                assert 0 <= start < end <= 630

    def test_intervals_grid_unenumerable(self):
        dim = IntervalsDimension("intervals", count=2, max_position=10)
        with pytest.raises(SpaceError):
            dim.grid_values()


class TestSearchSpace:
    def test_sampling_is_seed_deterministic(self):
        space = default_space()
        a = space.sample(np.random.default_rng(7))
        b = space.sample(np.random.default_rng(7))
        assert a == b

    def test_mutate_changes_one_dimension(self):
        space = sizing_space()
        rng = np.random.default_rng(8)
        params = space.sample(rng)
        mutated = space.mutate(params, rng)
        differences = [
            name for name in params if params[name] != mutated[name]
        ]
        assert len(differences) <= 1

    def test_mutations_always_build_valid_configs(self):
        space = default_space()
        rng = np.random.default_rng(9)
        params = space.sample(rng)
        for _ in range(100):
            params = space.mutate(params, rng)
            config = space.to_config(params)  # must not raise
            assert isinstance(config, BLBPConfig)

    def test_to_config_rederives_transfer_table(self):
        space = sizing_space()
        params = {"weight_bits": 6, "num_target_bits": 12,
                  "table_rows": 1024}
        config = space.to_config(params)
        assert config.transfer_magnitudes == transfer_magnitudes_for(6)
        assert len(config.transfer_magnitudes) == config.weight_magnitude + 1

    def test_grid_enumerates_product(self):
        space = SearchSpace(
            [
                ChoiceDimension("weight_bits", choices=(3, 4)),
                ChoiceDimension("table_rows", choices=(128, 256)),
            ]
        )
        grid = list(space.grid())
        assert len(grid) == space.grid_size() == 4
        assert {(p["weight_bits"], p["table_rows"]) for p in grid} == {
            (3, 128), (3, 256), (4, 128), (4, 256),
        }

    def test_candidate_key_is_order_independent(self):
        space = sizing_space()
        a = {"weight_bits": 4, "num_target_bits": 12, "table_rows": 512}
        b = {"table_rows": 512, "weight_bits": 4, "num_target_bits": 12}
        assert space.candidate_key(a) == space.candidate_key(b)
        assert space.candidate_id(a) == space.candidate_id(b)

    def test_validate_rejects_unknown_and_missing(self):
        space = sizing_space()
        with pytest.raises(SpaceError, match="unknown"):
            space.validate({"weight_bits": 4, "num_target_bits": 12,
                            "table_rows": 512, "bogus": 1})
        with pytest.raises(SpaceError, match="missing"):
            space.validate({"weight_bits": 4})

    def test_validate_rejects_out_of_dimension_value(self):
        space = sizing_space()
        with pytest.raises(SpaceError, match="outside"):
            space.validate({"weight_bits": 99, "num_target_bits": 12,
                            "table_rows": 512})

    def test_duplicate_dimension_names_rejected(self):
        with pytest.raises(SpaceError):
            SearchSpace([toggle("x"), toggle("x")])

    def test_empty_space_rejected(self):
        with pytest.raises(SpaceError):
            SearchSpace([])

    def test_builtin_spaces_build(self):
        for space in (default_space(), sizing_space(), intervals_space(),
                      toggles_space()):
            params = space.sample(np.random.default_rng(11))
            space.validate(params)
