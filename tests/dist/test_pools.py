"""End-to-end pool tests: local, socket nodes, SSH shim, node death.

The invariants under test are the subsystem's reason to exist:

* any pool produces cell-for-cell identical campaign results;
* a distributed campaign's merged journal is **byte-identical** to a
  single-node serial journal — including after a node is killed
  mid-campaign or an interrupted run resumes from shards;
* each distinct trace ships to a given node at most once per campaign
  (and zero times when the node's store already holds it).
"""

import os
import signal

import pytest

from repro.dist import (
    LocalPool,
    NodePool,
    PoolError,
    SSHPool,
    resolve_pool,
    shards_dir,
)
from repro.dist.merge import ShardedJournal
from repro.exec import CollectingSink
from repro.exec.journal import result_to_json
from repro.exec.plan import plan_campaign
from repro.exec.pool import execute_plan
from repro.predictors import BranchTargetBuffer, TwoBitBTB
from repro.workloads import SwitchCaseSpec, VirtualDispatchSpec

FACTORIES = {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB}


def _traces():
    return [
        VirtualDispatchSpec(
            name="vd-dist", seed=11, num_records=600, num_types=4,
            num_sites=2, determinism=0.9,
        ).generate(),
        SwitchCaseSpec(
            name="sw-dist", seed=12, num_records=600, num_cases=8,
            determinism=0.9,
        ).generate(),
    ]


@pytest.fixture
def serial_reference(tmp_path_factory):
    """One serial run per module: the golden results and journal bytes."""
    base = tmp_path_factory.mktemp("serial-ref")
    journal = base / "serial.jsonl"
    plan = plan_campaign(_traces(), FACTORIES, cache_dir=base / "cache")
    campaign = execute_plan(plan, jobs=1, journal_path=journal)
    return campaign, journal.read_bytes()


def _campaigns_identical(serial, other):
    assert other.traces() == serial.traces()
    assert other.predictors() == serial.predictors()
    for trace in serial.traces():
        for predictor in serial.predictors():
            assert (
                other.results[trace][predictor]
                == serial.results[trace][predictor]
            ), (trace, predictor)


class TestLocalPool:
    def test_serial_equivalence(self, tmp_path, serial_reference):
        serial, journal_bytes = serial_reference
        journal = tmp_path / "local.jsonl"
        plan = plan_campaign(_traces(), FACTORIES, cache_dir=tmp_path / "c")
        campaign = execute_plan(
            plan, journal_path=journal, pool=LocalPool(jobs=1)
        )
        _campaigns_identical(serial, campaign)
        assert journal.read_bytes() == journal_bytes
        assert not shards_dir(journal).exists()  # local pools don't shard

    def test_describe(self):
        (row,) = LocalPool(jobs=3).describe()
        assert row["node"] == "local"
        assert row["jobs"] == 3
        assert row["pid"] == os.getpid()


class TestNodePool:
    def test_journal_byte_identical_and_ship_once(
        self, tmp_path, serial_reference
    ):
        serial, journal_bytes = serial_reference
        journal = tmp_path / "dist.jsonl"
        plan = plan_campaign(_traces(), FACTORIES, cache_dir=tmp_path / "c")
        with NodePool(nodes=2) as pool:
            campaign = execute_plan(plan, journal_path=journal, pool=pool)
            counts = pool.transfer_counts()
            # Second campaign over the same pool: every trace is already
            # resident in the nodes' content-addressed stores, so the
            # transfer counters must not move.
            plan2 = plan_campaign(
                _traces(), FACTORIES, cache_dir=tmp_path / "c2"
            )
            execute_plan(plan2, pool=pool)
            counts_after = pool.transfer_counts()
        _campaigns_identical(serial, campaign)
        assert journal.read_bytes() == journal_bytes
        assert not shards_dir(journal).exists()  # canonicalized + retired
        # Acceptance: each distinct spill transferred to a given node at
        # most once per campaign (here: per pool lifetime).
        shipped = set()
        for node, per_hash in counts.items():
            for content_hash, times in per_hash.items():
                assert times == 1, (node, content_hash, times)
                shipped.add(content_hash)
        assert len(shipped) == 2  # both distinct traces went somewhere
        assert counts_after == counts

    def test_node_killed_mid_campaign_reschedules(
        self, tmp_path, serial_reference
    ):
        serial, journal_bytes = serial_reference
        journal = tmp_path / "killed.jsonl"
        sink = CollectingSink()
        plan = plan_campaign(_traces(), FACTORIES, cache_dir=tmp_path / "c")
        with NodePool(nodes=2) as pool:
            os.kill(pool.nodes[1].pid, signal.SIGKILL)
            campaign = execute_plan(
                plan, journal_path=journal, pool=pool, events=sink
            )
        assert "node_down" in sink.kinds()
        _campaigns_identical(serial, campaign)
        assert journal.read_bytes() == journal_bytes

    def test_all_nodes_dead_degrades_to_serial(self, tmp_path,
                                               serial_reference):
        serial, journal_bytes = serial_reference
        journal = tmp_path / "dead.jsonl"
        sink = CollectingSink()
        plan = plan_campaign(_traces(), FACTORIES, cache_dir=tmp_path / "c")
        with NodePool(nodes=2) as pool:
            for client in pool.nodes:
                os.kill(client.pid, signal.SIGKILL)
            campaign = execute_plan(
                plan, journal_path=journal, pool=pool, events=sink
            )
        assert "fallback" in sink.kinds()
        _campaigns_identical(serial, campaign)
        assert journal.read_bytes() == journal_bytes

    def test_rejects_zero_nodes(self):
        with pytest.raises(PoolError):
            NodePool(nodes=0)


class TestSSHPoolShim:
    def test_stdio_transport_byte_identical(self, tmp_path,
                                            serial_reference):
        serial, journal_bytes = serial_reference
        journal = tmp_path / "ssh.jsonl"
        plan = plan_campaign(_traces(), FACTORIES, cache_dir=tmp_path / "c")
        import sys

        with SSHPool(
            ["shim0", "shim1"],
            template=SSHPool.LOCAL_TEMPLATE,
            python=sys.executable,
        ) as pool:
            campaign = execute_plan(plan, journal_path=journal, pool=pool)
        _campaigns_identical(serial, campaign)
        assert journal.read_bytes() == journal_bytes

    def test_rejects_empty_hosts(self):
        with pytest.raises(PoolError):
            SSHPool([])


class TestShardResume:
    def test_interrupted_distributed_run_resumes_anywhere(
        self, tmp_path, serial_reference
    ):
        """Shards left by a killed distributed coordinator fold into the
        resume set of the next run — even a plain serial one — and the
        finished journal is still canonical bytes."""
        serial, journal_bytes = serial_reference
        journal = tmp_path / "resume.jsonl"
        plan = plan_campaign(_traces(), FACTORIES, cache_dir=tmp_path / "c")
        # Fake the wreckage: two cells journaled into a node shard, no
        # canonical journal (the coordinator died before merging).
        done = [plan.cells[0], plan.cells[1]]
        with ShardedJournal(journal) as shard:
            for cell in done:
                shard.append(
                    serial.results[cell.trace_name][cell.predictor_name],
                    node="node-lost",
                )
        journal.unlink(missing_ok=True)
        sink = CollectingSink()
        campaign = execute_plan(
            plan, jobs=1, journal_path=journal, events=sink
        )
        assert len(sink.of_kind("cell_skipped")) == len(done)
        _campaigns_identical(serial, campaign)
        assert journal.read_bytes() == journal_bytes
        assert not shards_dir(journal).exists()


class TestResolvePool:
    def test_explicit_pool_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_NODES", "4")
        pool = LocalPool(jobs=1)
        assert resolve_pool(pool) is pool

    def test_unset_env_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_NODES", raising=False)
        assert resolve_pool(None) is None

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NODES", "0")
        assert resolve_pool(None) is None

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NODES", "many")
        with pytest.raises(ValueError, match="REPRO_NODES"):
            resolve_pool(None)


class TestNodeAttribution:
    def test_results_carry_node_but_compare_equal(self, tmp_path,
                                                  serial_reference):
        serial, _ = serial_reference
        plan = plan_campaign(_traces(), FACTORIES, cache_dir=tmp_path / "c")
        with NodePool(nodes=1) as pool:
            campaign = execute_plan(plan, pool=pool)
        for trace in campaign.traces():
            for predictor in campaign.predictors():
                result = campaign.results[trace][predictor]
                assert result.node == "node0"
                assert result == serial.results[trace][predictor]
                # The canonical serialization strips provenance.
                assert "node" not in result_to_json(result)


class TestCliDryRun:
    def test_simulate_dry_run(self, capsys):
        from repro.cli import main

        code = main([
            "simulate", "--dry-run", "--stride", "32", "--scale", "0.02",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "cells" in captured.out
        assert "fused group" in captured.out
        assert "estimated spill bytes" in captured.out

    def test_search_dry_run(self, capsys):
        from repro.cli import main

        code = main([
            "search", "--dry-run", "--stride", "32", "--scale", "0.02",
            "--budget", "8", "--batch", "4",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "per-generation plan" in captured.out
        assert "generations" in captured.out
