"""Mergeable-journal tests: shard merging is order-invariant and the
canonical output is byte-identical to a single-node serial journal."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.merge import (
    ShardedJournal,
    canonical_journal_bytes,
    load_shards,
    merge_journals,
    parse_shard_lines,
    shards_dir,
    write_canonical_journal,
)
from repro.exec.journal import (
    Journal,
    JournalError,
    result_to_json,
)
from repro.sim.metrics import SimulationResult


def _result(i: int, node: str = "") -> SimulationResult:
    return SimulationResult(
        trace_name=f"trace-{i}",
        predictor_name=f"pred-{i % 3}",
        total_instructions=10_000 + i,
        indirect_branches=800 + i,
        indirect_mispredictions=40 + i,
        return_branches=120,
        return_mispredictions=6,
        conditional_branches=3_000,
        node=node,
    )


def _key(result: SimulationResult):
    return (result.trace_name, result.predictor_name)


def _shard_line(result: SimulationResult, node: str) -> str:
    return json.dumps(result_to_json(result, node=node))


class TestCanonicalBytes:
    def test_matches_serial_journal_bytes(self, tmp_path):
        results = [_result(i) for i in range(4)]
        path = tmp_path / "serial.jsonl"
        journal = Journal(path)
        for result in results:
            journal.append(result)
        journal.close()
        keys = [_key(result) for result in results]
        merged = canonical_journal_bytes(
            keys, {_key(result): result for result in results}
        )
        assert merged == path.read_bytes()

    def test_node_field_stripped(self):
        result = _result(0, node="node7")
        merged = canonical_journal_bytes(
            [_key(result)], {_key(result): result}
        )
        assert b"node7" not in merged

    def test_missing_cells_skipped(self):
        results = {_key(_result(0)): _result(0)}
        merged = canonical_journal_bytes(
            [_key(_result(0)), ("absent", "cell")], results
        )
        assert merged.count(b"\n") == 1


class TestMergeProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        cells=st.integers(min_value=1, max_value=12),
        nodes=st.integers(min_value=1, max_value=4),
        assignment=st.data(),
    )
    def test_any_arrival_order_merges_identically(
        self, cells, nodes, assignment
    ):
        """The backbone property: shard partition and arrival order do
        not change the merged bytes."""
        results = [_result(i) for i in range(cells)]
        keys = [_key(result) for result in results]
        expected = canonical_journal_bytes(
            keys, {_key(result): result for result in results}
        )
        owner = [
            assignment.draw(
                st.integers(min_value=0, max_value=nodes - 1),
                label=f"owner[{i}]",
            )
            for i in range(cells)
        ]
        shards = [
            [
                _shard_line(result, f"node{n}")
                for i, result in enumerate(results)
                if owner[i] == n
            ]
            for n in range(nodes)
        ]
        order = assignment.draw(st.permutations(shards), label="arrival")
        assert merge_journals(keys, order) == expected

    @settings(max_examples=10, deadline=None)
    @given(duplicated=st.integers(min_value=0, max_value=5))
    def test_duplicate_cell_from_retried_node(self, duplicated):
        """A unit re-run after its node died mid-ack shows up in two
        shards; determinism makes the copies identical, so merging
        keeps exactly one."""
        results = [_result(i) for i in range(6)]
        keys = [_key(result) for result in results]
        expected = canonical_journal_bytes(
            keys, {_key(result): result for result in results}
        )
        shard_a = [_shard_line(result, "node0") for result in results[:4]]
        shard_b = [_shard_line(result, "node1") for result in results[4:]]
        shard_b.append(_shard_line(results[duplicated], "node1"))
        assert merge_journals(keys, [shard_a, shard_b]) == expected
        assert merge_journals(keys, [shard_b, shard_a]) == expected


class TestShardEdgeCases:
    def test_empty_node_shard(self):
        results = [_result(i) for i in range(3)]
        keys = [_key(result) for result in results]
        shards = [[_shard_line(result, "node0") for result in results], []]
        expected = canonical_journal_bytes(
            keys, {_key(result): result for result in results}
        )
        assert merge_journals(keys, shards) == expected

    def test_truncated_final_line_dropped(self):
        results = [_result(i) for i in range(3)]
        lines = [_shard_line(result, "node0") for result in results]
        lines[-1] = lines[-1][: len(lines[-1]) // 2]  # torn final write
        parsed = parse_shard_lines(lines)
        assert len(parsed) == 2
        assert _key(results[2]) not in parsed

    def test_interior_corruption_raises(self):
        results = [_result(i) for i in range(3)]
        lines = [_shard_line(result, "node0") for result in results]
        lines[0] = "{broken"
        with pytest.raises(JournalError, match="corrupt shard line"):
            parse_shard_lines(lines)

    def test_parsed_entries_carry_node(self):
        parsed = parse_shard_lines([_shard_line(_result(0), "node3")])
        assert next(iter(parsed.values())).node == "node3"


class TestShardedJournalRoundTrip:
    def test_routes_entries_per_node(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with ShardedJournal(path) as journal:
            journal.append(_result(0), node="node0")
            journal.append(_result(1), node="node1")
            journal.append(_result(2), node="node0")
        files = sorted(p.name for p in shards_dir(path).glob("*.jsonl"))
        assert files == ["node0.jsonl", "node1.jsonl"]
        loaded = load_shards(path)
        assert len(loaded) == 3
        assert loaded[_key(_result(1))].node == "node1"

    def test_hostile_node_name_sanitized(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with ShardedJournal(path) as journal:
            journal.append(_result(0), node="../../etc/passwd")
        names = [p.name for p in shards_dir(path).glob("*.jsonl")]
        assert names == [".._.._etc_passwd.jsonl"]

    def test_write_canonical_retires_shards(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        results = [_result(i) for i in range(2)]
        with ShardedJournal(path) as journal:
            for index, result in enumerate(results):
                journal.append(result, node=f"node{index}")
        write_canonical_journal(
            path,
            [_key(result) for result in results],
            load_shards(path),
        )
        assert not shards_dir(path).exists()
        assert path.read_bytes() == canonical_journal_bytes(
            [_key(result) for result in results],
            {_key(result): result for result in results},
        )
