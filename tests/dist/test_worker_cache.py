"""The worker's in-memory result cache: identical cells never re-run.

Results are keyed by (trace content hash, factory fingerprint, replay
parameters) — so a repeated unit (retry, or the next search generation
re-evaluating a surviving configuration) is served from memory, fused
units run only their uncached members, the backend is deliberately
excluded from the key (scalar and columnar results are bit-identical),
and profiled or checkpointed cells are never cached.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.core import BLBP
from repro.dist import protocol
from repro.dist.store import TraceStore, trace_file_hash
from repro.dist.worker import DistWorker, _cell_cache_key
from repro.exec.journal import result_from_json
from repro.exec.plan import plan_campaign
from repro.predictors.ittage import ITTAGE
from repro.predictors.vpc import VPCPredictor
from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace


def _trace(seed: int = 0, count: int = 300) -> Trace:
    rng = random.Random(seed)
    pcs = [0x4000, 0x4008, 0x4040]
    targets = [0x10_0000, 0x10_0040, 0x11_0000]
    records = []
    for _ in range(count):
        if rng.random() < 0.4:
            records.append(
                BranchRecord(0x900, BranchType.CONDITIONAL,
                             rng.random() < 0.5, 0x910, inst_gap=1)
            )
        else:
            records.append(
                BranchRecord(rng.choice(pcs), BranchType.INDIRECT_JUMP,
                             True, rng.choice(targets), inst_gap=2)
            )
    return Trace.from_records(f"cache-{seed}", records)


def _wires(tmp_path, factories):
    """Wire cells for one trace × the given factories, plus the store
    holding the spilled trace."""
    trace = _trace()
    plan = plan_campaign([trace], factories, cache_dir=tmp_path / "spill")
    store = TraceStore(tmp_path / "store")
    wires = []
    for spec in plan.cells:
        content_hash = trace_file_hash(spec.trace_path)
        store.ingest(spec.trace_path)
        wires.append(protocol.cell_to_wire(spec, content_hash))
    return store, wires


def _worker(store) -> DistWorker:
    return DistWorker(io.BytesIO(), io.BytesIO(), store, node="test-node")


def _run_unit(worker, wires, fused=False):
    """Drive one run_unit; return {index: SimulationResult}."""
    worker.writer = io.BytesIO()
    worker._handle_run_unit(
        {"t": "run_unit", "cells": wires, "fused": fused}
    )
    messages = [
        protocol.decode(line + b"\n")
        for line in worker.writer.getvalue().splitlines()
    ]
    assert messages[-1]["t"] == "unit_done", messages[-1]
    return {
        message["index"]: result_from_json(message["result"])
        for message in messages
        if message["t"] == "cell_done"
    }


class TestResultCache:
    def test_repeated_unit_serves_from_cache(self, tmp_path, monkeypatch):
        store, wires = _wires(tmp_path, {"BLBP": BLBP})
        worker = _worker(store)
        first = _run_unit(worker, wires)
        assert worker.cache_hits == 0

        def refuse(spec, timeout=None):
            raise AssertionError("re-simulated a cached cell")

        monkeypatch.setattr("repro.dist.worker.run_cell", refuse)
        second = _run_unit(worker, wires)
        assert worker.cache_hits == 1
        assert second == first

    def test_backend_excluded_from_key(self, tmp_path):
        """A cell simulated under one backend answers for the other —
        scalar and columnar results are bit-identical by construction."""
        store, wires = _wires(tmp_path, {"BLBP": BLBP})
        (wire,) = wires
        columnar_wire = dict(wire, backend="columnar")
        assert _cell_cache_key(wire) == _cell_cache_key(columnar_wire)
        worker = _worker(store)
        scalar = _run_unit(worker, [wire])
        columnar = _run_unit(worker, [columnar_wire])
        assert worker.cache_hits == 1
        assert columnar == scalar

    def test_parameter_changes_miss(self, tmp_path):
        store, wires = _wires(tmp_path, {"BLBP": BLBP})
        (wire,) = wires
        assert _cell_cache_key(wire) != _cell_cache_key(
            dict(wire, warmup=100)
        )
        assert _cell_cache_key(wire) != _cell_cache_key(
            dict(wire, ras_depth=16)
        )
        worker = _worker(store)
        _run_unit(worker, [wire])
        _run_unit(worker, [dict(wire, warmup=100)])
        assert worker.cache_hits == 0

    def test_profiled_and_checkpointed_cells_uncached(self, tmp_path):
        store, wires = _wires(tmp_path, {"BLBP": BLBP})
        (wire,) = wires
        assert _cell_cache_key(dict(wire, profile=True)) is None
        assert _cell_cache_key(dict(wire, checkpoint_every=100)) is None
        worker = _worker(store)
        profiled = dict(wire, profile=True)
        _run_unit(worker, [profiled])
        _run_unit(worker, [profiled])
        assert worker.cache_hits == 0
        assert not worker._results

    def test_fused_unit_runs_only_uncached_members(
        self, tmp_path, monkeypatch
    ):
        factories = {
            "BLBP": BLBP, "ITTAGE": ITTAGE, "VPC": VPCPredictor,
        }
        store, wires = _wires(tmp_path, factories)
        assert len(wires) == 3
        reference = _run_unit(_worker(store), wires, fused=True)

        worker = _worker(store)
        primed = _run_unit(worker, [wires[0]])
        ran = []

        def spy_run_cell(spec, timeout=None):
            from repro.exec.pool import run_cell
            ran.append(spec.predictor_name)
            return run_cell(spec, timeout)

        def spy_run_fused(fused_spec, timeout=None):
            from repro.exec.pool import run_fused_cell
            ran.extend(
                spec.predictor_name for spec in fused_spec.cells
            )
            return run_fused_cell(fused_spec, timeout)

        monkeypatch.setattr("repro.dist.worker.run_cell", spy_run_cell)
        monkeypatch.setattr(
            "repro.dist.worker.run_fused_cell", spy_run_fused
        )
        results = _run_unit(worker, wires, fused=True)
        assert worker.cache_hits == 1
        assert wires[0]["predictor"] not in ran
        assert sorted(ran) == sorted(
            wire["predictor"] for wire in wires[1:]
        )
        # Served + fresh members merge into the reference unit, in order.
        assert results == reference
        assert results[wires[0]["index"]] == primed[wires[0]["index"]]

    def test_cache_hit_takes_requesting_cell_identity(self, tmp_path):
        """The cached counters are content-determined; the display
        identity follows the requesting cell."""
        store, wires = _wires(tmp_path, {"BLBP": BLBP})
        (wire,) = wires
        worker = _worker(store)
        _run_unit(worker, [wire])
        renamed = dict(wire, trace="aliased-trace")
        # Same content hash, same factory: a hit despite the new name.
        results = _run_unit(worker, [renamed])
        assert worker.cache_hits == 1
        (result,) = results.values()
        assert result.trace_name == "aliased-trace"

    def test_stats_report_cache_counters(self, tmp_path):
        store, wires = _wires(tmp_path, {"BLBP": BLBP})
        worker = _worker(store)
        _run_unit(worker, wires)
        _run_unit(worker, wires)
        worker.writer = io.BytesIO()
        worker._handle_stats({"t": "stats"})
        (message,) = [
            protocol.decode(line + b"\n")
            for line in worker.writer.getvalue().splitlines()
        ]
        assert message["result_cache_hits"] == 1
        assert message["result_cache_size"] == 1
