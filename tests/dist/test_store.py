"""Content-addressed trace store tests (the node side of shipping)."""

import pytest

from repro.dist.store import StoreError, TraceStore, trace_file_hash
from repro.exec.plan import spill_trace
from repro.trace.plane import spilled_hash


@pytest.fixture
def spill(tiny_trace, tmp_path):
    path = tmp_path / "tiny.trace"
    spill_trace(tiny_trace, path)
    return path


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "store")


class TestTraceFileHash:
    def test_v2_spill_uses_recorded_hash(self, spill):
        assert trace_file_hash(spill) == spilled_hash(spill)

    def test_headerless_file_hashes_bytes(self, tmp_path):
        import hashlib

        path = tmp_path / "legacy.bin"
        path.write_bytes(b"RPTRACE1 era bytes without a v2 header")
        assert spilled_hash(path) is None
        assert (
            trace_file_hash(path)
            == hashlib.sha256(path.read_bytes()).hexdigest()
        )


class TestChunkedIngest:
    def test_single_chunk_publish(self, store, spill):
        content_hash = trace_file_hash(spill)
        path = store.add_chunk(content_hash, spill.read_bytes(), last=True)
        assert path is not None and path.exists()
        assert store.has(content_hash)
        assert store.resolve(content_hash) == path

    def test_multi_chunk_accumulates_invisibly(self, store, spill):
        content_hash = trace_file_hash(spill)
        data = spill.read_bytes()
        middle = len(data) // 2
        assert store.add_chunk(content_hash, data[:middle], last=False) is None
        assert not store.has(content_hash)  # partial is invisible
        path = store.add_chunk(content_hash, data[middle:], last=True)
        assert path.read_bytes() == data

    def test_corrupt_transfer_rejected_and_not_stored(self, store, spill):
        content_hash = trace_file_hash(spill)
        with pytest.raises(StoreError, match="hash mismatch"):
            store.add_chunk(content_hash, b"corrupted bytes", last=True)
        assert not store.has(content_hash)

    def test_reship_of_present_trace_is_a_noop(self, store, spill):
        content_hash = trace_file_hash(spill)
        data = spill.read_bytes()
        store.add_chunk(content_hash, data, last=True)
        before = store.path_for(content_hash).stat().st_mtime_ns
        path = store.add_chunk(content_hash, b"ignored", last=True)
        assert path == store.path_for(content_hash)
        assert path.stat().st_mtime_ns == before
        assert path.read_bytes() == data

    def test_resolve_missing_raises(self, store):
        with pytest.raises(StoreError, match="not in store"):
            store.resolve("ab" * 32)


class TestStoreLifecycle:
    def test_ingest_dedupes_by_content(self, store, spill, tmp_path):
        first = store.ingest(spill)
        copy = tmp_path / "copy.trace"
        copy.write_bytes(spill.read_bytes())
        second = store.ingest(copy)
        assert first == second
        assert store.stored_hashes() == [trace_file_hash(spill)]

    def test_checkpoint_dir_under_root(self, store):
        ckpt = store.checkpoint_dir()
        assert ckpt.is_dir()
        assert ckpt.parent == store.root

    def test_clear_empties_but_keeps_root(self, store, spill):
        store.ingest(spill)
        store.clear()
        assert store.stored_hashes() == []
        assert store.root.is_dir()
