"""Wire-level tests for the distributed job protocol."""

import base64
import functools

import pytest

from repro.dist import protocol
from repro.exec.plan import CellSpec, FactoryRef
from repro.predictors import BranchTargetBuffer


def _spec(**overrides):
    fields = dict(
        index=3,
        trace_name="vd-test",
        predictor_name="BTB",
        trace_path="/tmp/vd.trace",
        factory=FactoryRef.from_callable(BranchTargetBuffer),
        ras_depth=16,
        warmup_records=100,
        records=4000,
        profile=False,
        checkpoint_every=0,
    )
    fields.update(overrides)
    return CellSpec(**fields)


class TestFraming:
    def test_round_trip(self):
        line = protocol.encode({"t": "ping", "x": 1})
        assert line.endswith(b"\n")
        assert protocol.decode(line) == {"t": "ping", "x": 1}

    def test_framing_errors_become_dist_errors(self):
        with pytest.raises(protocol.DistProtocolError):
            protocol.decode(b"not json\n")
        with pytest.raises(protocol.DistProtocolError):
            protocol.decode(b'{"no_type_tag": true}\n')


class TestFactoryWire:
    def test_dotted_round_trip(self):
        ref = FactoryRef.from_callable(BranchTargetBuffer)
        wire = protocol.factory_to_wire(ref)
        assert "dotted" in wire
        rebuilt = protocol.factory_from_wire(wire)
        assert isinstance(rebuilt.build(), BranchTargetBuffer)

    def test_partial_round_trips_as_pickle(self):
        ref = FactoryRef(obj=functools.partial(BranchTargetBuffer))
        wire = protocol.factory_to_wire(ref)
        assert "pickle" in wire
        rebuilt = protocol.factory_from_wire(wire)
        assert isinstance(rebuilt.build(), BranchTargetBuffer)

    def test_unpicklable_factory_rejected(self):
        ref = FactoryRef(obj=lambda: BranchTargetBuffer())
        with pytest.raises(protocol.DistProtocolError):
            protocol.factory_to_wire(ref)

    def test_malformed_wire_rejected(self):
        with pytest.raises(protocol.DistProtocolError):
            protocol.factory_from_wire({"neither": "nor"})
        with pytest.raises(protocol.DistProtocolError):
            protocol.factory_from_wire("not a dict")

    def test_corrupt_pickle_rejected(self):
        blob = base64.b64encode(b"garbage").decode("ascii")
        with pytest.raises(protocol.DistProtocolError):
            protocol.factory_from_wire({"pickle": blob})


class TestCellWire:
    def test_round_trip_rebinds_paths(self):
        spec = _spec(checkpoint_every=500)
        wire = protocol.cell_to_wire(spec, "ab" * 32)
        assert wire["hash"] == "ab" * 32
        rebuilt = protocol.cell_from_wire(
            wire, "/node/store/abcd.trace", "/node/store/ckpt/x.json"
        )
        assert rebuilt.index == spec.index
        assert rebuilt.trace_name == spec.trace_name
        assert rebuilt.predictor_name == spec.predictor_name
        assert rebuilt.trace_path == "/node/store/abcd.trace"
        assert rebuilt.checkpoint_path == "/node/store/ckpt/x.json"
        assert rebuilt.ras_depth == spec.ras_depth
        assert rebuilt.warmup_records == spec.warmup_records
        assert rebuilt.records == spec.records
        assert rebuilt.checkpoint_every == 500

    def test_survives_json_round_trip(self):
        import json

        wire = protocol.cell_to_wire(_spec(), "cd" * 32)
        rebuilt = protocol.cell_from_wire(
            json.loads(json.dumps(wire)), "/x.trace"
        )
        assert rebuilt.predictor_name == "BTB"

    def test_malformed_cell_rejected(self):
        with pytest.raises(protocol.DistProtocolError):
            protocol.cell_from_wire({"index": "zero"}, "/x.trace")


class TestValidators:
    def test_require_hash_accepts_sha256_hex(self):
        message = {"hash": "0123456789abcdef" * 4}
        assert protocol.require_hash(message) == "0123456789abcdef" * 4

    @pytest.mark.parametrize(
        "value", [None, "", 42, "XYZ", "ab" * 100, "../etc/passwd"]
    )
    def test_require_hash_rejects(self, value):
        with pytest.raises(protocol.DistProtocolError):
            protocol.require_hash({"hash": value})

    def test_chunk_data_round_trip(self):
        payload = base64.b64encode(b"\x00\x01spill").decode("ascii")
        assert protocol.chunk_data({"data": payload}) == b"\x00\x01spill"

    def test_chunk_data_rejects_garbage(self):
        with pytest.raises(protocol.DistProtocolError):
            protocol.chunk_data({"data": "!!not base64!!"})
        with pytest.raises(protocol.DistProtocolError):
            protocol.chunk_data({"data": 7})

    def test_unit_to_wire_shape(self):
        message = protocol.unit_to_wire([{"index": 0}], True, 2.5)
        assert message["t"] == "run_unit"
        assert message["fused"] is True
        assert message["timeout"] == 2.5
        assert "timeout" not in protocol.unit_to_wire([], False, None)
