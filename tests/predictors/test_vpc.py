"""Unit tests for the VPC baseline."""

import numpy as np
import pytest

from repro.predictors.vpc import VPCConfig, VPCPredictor

def _drive(predictor, pc, target):
    prediction = predictor.predict_target(pc)
    predictor.train(pc, target)
    return prediction


class TestVPCConfig:
    def test_defaults(self):
        config = VPCConfig()
        assert config.max_iterations == 16
        assert config.btb_entries == 32768

    def test_bad_iterations_rejected(self):
        with pytest.raises(ValueError):
            VPCConfig(max_iterations=0)


class TestVPC:
    def test_cold_miss_then_learned(self):
        predictor = VPCPredictor()
        assert predictor.predict_target(0x1000) is None
        predictor.train(0x1000, 0x2000)
        assert predictor.predict_target(0x1000) == 0x2000

    def test_monomorphic_branch_stable(self):
        predictor = VPCPredictor()
        hits = 0
        for i in range(100):
            if _drive(predictor, 0x1000, 0x2000) == 0x2000:
                hits += 1
        assert hits >= 98  # only the cold start misses

    def test_history_correlated_polymorphic_branch(self):
        predictor = VPCPredictor()
        rng = np.random.default_rng(4)
        targets = {False: 0x2000, True: 0x3000}
        hits = 0
        trials = 1000
        for i in range(trials):
            signal = bool(rng.integers(2))
            predictor.on_conditional(0x500, signal)
            actual = targets[signal]
            if _drive(predictor, 0x1000, actual) == actual and i > trials // 2:
                hits += 1
        assert hits > 0.8 * (trials // 2 - 1)

    def test_stores_multiple_targets(self):
        predictor = VPCPredictor()
        for target in (0x2000, 0x3000, 0x4000):
            predictor.train(0x1000, target)
        stored = set()
        for iteration in range(predictor.config.max_iterations):
            vpca = predictor._vpca(0x1000, iteration)
            hit = predictor._btb.lookup(vpca)
            if hit is not None:
                stored.add(hit)
        assert stored == {0x2000, 0x3000, 0x4000}

    def test_fallback_bounds_worst_case(self):
        """With the fallback on, a branch with a stored target never
        returns None after warm-up."""
        predictor = VPCPredictor()
        predictor.train(0x1000, 0x2000)
        for _ in range(50):
            assert predictor.predict_target(0x1000) is not None
            predictor.train(0x1000, 0x3000)

    def test_no_fallback_can_return_none(self):
        predictor = VPCPredictor(VPCConfig(fallback_to_first=False))
        # Train heavily not-taken so every virtual slot predicts NT.
        for _ in range(200):
            predictor.train(0x1000, 0x2000 if _ % 2 else 0x3000)
        # It may or may not be None, but the code path must be exercisable:
        result = predictor.predict_target(0x1000)
        assert result is None or isinstance(result, int)

    def test_conditional_accuracy_tracked(self):
        predictor = VPCPredictor()
        for _ in range(50):
            predictor.on_conditional(0x500, True)
        assert predictor.conditional_count == 50
        assert 0.0 <= predictor.conditional_accuracy() <= 1.0

    def test_vpca_zero_is_pc(self):
        predictor = VPCPredictor()
        assert predictor._vpca(0x1234, 0) == 0x1234

    def test_vpca_distinct_per_iteration(self):
        predictor = VPCPredictor()
        vpcas = {predictor._vpca(0x1000, i) for i in range(12)}
        assert len(vpcas) == 12

    def test_storage_budget_includes_conditional(self):
        budget = VPCPredictor().storage_budget()
        assert any("conditional" in item for item, _ in budget.items)
