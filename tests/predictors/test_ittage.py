"""Unit tests for the ITTAGE baseline."""

import numpy as np
import pytest

from repro.predictors.ittage import ITTAGE, ITTAGEConfig, geometric_lengths
from repro.trace.record import BranchType

_IND = int(BranchType.INDIRECT_JUMP)


def _drive(predictor, pc, target):
    prediction = predictor.predict_target(pc)
    predictor.train(pc, target)
    predictor.on_retired(pc, _IND, target)
    return prediction


class TestGeometricLengths:
    def test_endpoints(self):
        lengths = geometric_lengths(7, minimum=4, maximum=640)
        assert lengths[0] == 4
        assert lengths[-1] == 640

    def test_strictly_increasing(self):
        lengths = geometric_lengths(7)
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_single(self):
        assert geometric_lengths(1, maximum=100) == (100,)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            geometric_lengths(0)


class TestITTAGEConfig:
    def test_default_valid(self):
        config = ITTAGEConfig()
        assert config.num_tagged == 7

    def test_mismatched_tag_widths_rejected(self):
        with pytest.raises(ValueError):
            ITTAGEConfig(num_tagged=3, tag_bits=(9, 9))

    def test_unsorted_history_rejected(self):
        with pytest.raises(ValueError):
            ITTAGEConfig(
                num_tagged=2,
                tag_bits=(9, 9),
                history_lengths=(10, 5),
            )


class TestITTAGE:
    def test_cold_miss(self):
        assert ITTAGE().predict_target(0x1000) is None

    def test_monomorphic_branch_learned_quickly(self):
        predictor = ITTAGE()
        for _ in range(4):
            _drive(predictor, 0x1000, 0x2000)
        assert predictor.predict_target(0x1000) == 0x2000

    def test_history_correlated_targets_learned(self):
        """Target determined by the previous conditional outcome."""
        predictor = ITTAGE()
        rng = np.random.default_rng(2)
        targets = {False: 0x2000, True: 0x3000}
        hits = 0
        trials = 800
        for i in range(trials):
            signal = bool(rng.integers(2))
            predictor.on_conditional(0x500, signal)
            prediction = predictor.predict_target(0x1000)
            actual = targets[signal]
            if i > trials // 2 and prediction == actual:
                hits += 1
            predictor.train(0x1000, actual)
            predictor.on_retired(0x1000, _IND, actual)
        assert hits > 0.9 * (trials // 2 - 1)

    def test_periodic_pattern_learned(self):
        """A period-4 cycle is learnable from target-bit history alone."""
        predictor = ITTAGE()
        targets = [0x2000, 0x2400, 0x2800, 0x2C00]
        hits = 0
        for i in range(1200):
            actual = targets[i % 4]
            if _drive(predictor, 0x1000, actual) == actual and i > 600:
                hits += 1
        assert hits > 540

    def test_beats_last_target_on_alternation(self):
        predictor = ITTAGE()
        targets = [0x2000, 0x3000]
        hits = 0
        for i in range(400):
            actual = targets[i % 2]
            if _drive(predictor, 0x1000, actual) == actual and i > 200:
                hits += 1
        assert hits > 180

    def test_u_reset_fires(self):
        config = ITTAGEConfig(u_reset_period=64)
        predictor = ITTAGE(config)
        for i in range(130):
            _drive(predictor, 0x1000 + (i % 3) * 0x40, 0x2000 + (i % 5) * 0x100)
        # After resets, all useful counters must be within range.
        for table in predictor._tables:
            assert int(table.useful.max()) <= 3

    def test_storage_budget_near_64kb(self):
        budget = ITTAGE().storage_budget()
        assert 40.0 < budget.total_kilobytes() < 80.0

    def test_train_without_predict_recovers(self):
        predictor = ITTAGE()
        predictor.train(0x1000, 0x2000)  # no preceding predict
        for _ in range(3):
            _drive(predictor, 0x1000, 0x2000)
        assert predictor.predict_target(0x1000) == 0x2000

    def test_deterministic_given_seed(self):
        def run(seed):
            predictor = ITTAGE(ITTAGEConfig(seed=seed))
            rng = np.random.default_rng(3)
            outcomes = []
            for _ in range(300):
                target = 0x2000 + int(rng.integers(4)) * 0x100
                outcomes.append(_drive(predictor, 0x1000, target))
            return outcomes

        assert run(42) == run(42)
