"""Unit tests for Chang et al.'s Target Cache."""

from repro.predictors.target_cache import TargetCache
from repro.trace.record import BranchType


class TestTargetCache:
    def test_cold_miss(self):
        cache = TargetCache()
        assert cache.predict_target(0x1000) is None

    def test_history_disambiguates_polymorphic_branch(self):
        """With target history in the index, an alternating branch maps
        its two contexts to different entries — unlike the plain BTB."""
        cache = TargetCache(num_entries=4096)
        targets = [0x2000, 0x3000]
        # Warm up the two contexts.
        for i in range(40):
            actual = targets[i % 2]
            cache.predict_target(0x1000)
            cache.train(0x1000, actual)
            cache.on_retired(0x1000, int(BranchType.INDIRECT_JUMP), actual)
        hits = 0
        for i in range(40, 140):
            actual = targets[i % 2]
            if cache.predict_target(0x1000) == actual:
                hits += 1
            cache.train(0x1000, actual)
            cache.on_retired(0x1000, int(BranchType.INDIRECT_JUMP), actual)
        assert hits >= 95

    def test_non_indirect_branches_do_not_shift_history(self):
        cache = TargetCache()
        before = cache._history
        cache.on_retired(0x1000, int(BranchType.DIRECT_JUMP), 0x2000)
        cache.on_conditional(0x1000, True)
        assert cache._history == before

    def test_storage_budget_positive(self):
        assert TargetCache().storage_budget().total_bits() > 0
