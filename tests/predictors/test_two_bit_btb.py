"""Unit tests for Calder & Grunwald's 2-bit BTB."""

from repro.predictors.two_bit_btb import TwoBitBTB


class TestTwoBitBTB:
    def test_replaces_only_after_two_misses(self):
        btb = TwoBitBTB()
        btb.train(0x1000, 0x2000)
        btb.train(0x1000, 0x3000)   # first miss: keep 0x2000
        assert btb.predict_target(0x1000) == 0x2000
        btb.train(0x1000, 0x3000)   # second consecutive miss: replace
        assert btb.predict_target(0x1000) == 0x3000

    def test_correct_use_resets_hysteresis(self):
        btb = TwoBitBTB()
        btb.train(0x1000, 0x2000)
        btb.train(0x1000, 0x3000)   # miss 1
        btb.train(0x1000, 0x2000)   # correct: hysteresis resets
        btb.train(0x1000, 0x3000)   # miss 1 again, still keep
        assert btb.predict_target(0x1000) == 0x2000

    def test_filters_one_off_excursions(self):
        """A dominant target with rare excursions stays resident — the
        advantage over the plain BTB."""
        btb = TwoBitBTB()
        hits = 0
        for i in range(300):
            actual = 0x3000 if i % 10 == 9 else 0x2000
            if btb.predict_target(0x1000) == actual:
                hits += 1
            btb.train(0x1000, actual)
        # 90% of executions use the dominant target; the 2-bit BTB
        # should predict nearly all of them.
        assert hits >= 260

    def test_cold_fill_immediate(self):
        btb = TwoBitBTB()
        btb.train(0x1000, 0x2000)
        assert btb.predict_target(0x1000) == 0x2000

    def test_storage_includes_hysteresis(self):
        plain_bits = 32768 * (62 + 12)
        assert TwoBitBTB().storage_budget().total_bits() == plain_bits + 32768
