"""White-box tests for VPC's devirtualization mechanics."""

import pytest

from repro.predictors.vpc import VPCConfig, VPCPredictor


class TestVirtualSlotManagement:
    def test_targets_fill_successive_iterations(self):
        predictor = VPCPredictor()
        targets = [0x2000, 0x3000, 0x4000]
        for target in targets:
            predictor.train(0x1000, target)
        stored = []
        for iteration in range(predictor.config.max_iterations):
            hit = predictor._btb.lookup(predictor._vpca(0x1000, iteration))
            if hit is not None:
                stored.append(hit)
        assert stored[0] == 0x2000  # first-seen target at iteration 0

    def test_correct_prediction_promotes_recency(self):
        predictor = VPCPredictor()
        predictor.train(0x1000, 0x2000)
        predictor.train(0x1000, 0x3000)
        tick_before = predictor._btb.tick_of(predictor._vpca(0x1000, 0))
        # Hit target 0x2000 again: its slot's tick must advance.
        prediction = predictor.predict_target(0x1000)
        predictor.train(0x1000, 0x2000)
        assert predictor._btb.tick_of(
            predictor._vpca(0x1000, 0)
        ) > tick_before

    def test_capacity_bounded_by_max_iterations(self):
        predictor = VPCPredictor(VPCConfig(max_iterations=4))
        for i in range(10):
            predictor.train(0x1000, 0x2000 + i * 0x100)
        stored = [
            predictor._btb.lookup(predictor._vpca(0x1000, iteration))
            for iteration in range(4)
        ]
        assert sum(1 for s in stored if s is not None) == 4

    def test_eviction_replaces_least_recent_slot(self):
        predictor = VPCPredictor(VPCConfig(max_iterations=2))
        predictor.train(0x1000, 0xA000)   # slot 0
        predictor.train(0x1000, 0xB000)   # slot 1
        # Use A repeatedly so B's slot is the stale one.
        for _ in range(3):
            predictor.predict_target(0x1000)
            predictor.train(0x1000, 0xA000)
        predictor.train(0x1000, 0xC000)   # must displace B, not A
        stored = {
            predictor._btb.lookup(predictor._vpca(0x1000, iteration))
            for iteration in range(2)
        }
        assert 0xA000 in stored
        assert 0xC000 in stored


class TestSharedConditionalTraffic:
    def test_virtual_training_reaches_weights_not_history(self):
        predictor = VPCPredictor()
        mpp = predictor.conditional
        ghist_before = mpp._ghist.value()
        predictor.train(0x1000, 0x2000)
        # Virtual updates train tables but must not shift history.
        assert mpp._ghist.value() == ghist_before

    def test_real_conditionals_shift_history(self):
        predictor = VPCPredictor()
        mpp = predictor.conditional
        before = mpp._ghist.value()
        predictor.on_conditional(0x500, True)
        assert mpp._ghist.value() != before
