"""Unit tests for the baseline BTB."""

from repro.predictors.btb import BranchTargetBuffer


class TestBranchTargetBuffer:
    def test_cold_miss(self):
        btb = BranchTargetBuffer()
        assert btb.predict_target(0x1000) is None

    def test_last_taken_behaviour(self):
        btb = BranchTargetBuffer()
        btb.train(0x1000, 0x2000)
        assert btb.predict_target(0x1000) == 0x2000
        btb.train(0x1000, 0x3000)
        assert btb.predict_target(0x1000) == 0x3000

    def test_polymorphic_alternation_always_misses(self):
        """The classic BTB failure mode: an alternating target is never
        predicted correctly because the BTB stores the previous one."""
        btb = BranchTargetBuffer()
        targets = [0x2000, 0x3000]
        btb.train(0x1000, targets[0])
        misses = 0
        for i in range(1, 100):
            actual = targets[i % 2]
            if btb.predict_target(0x1000) != actual:
                misses += 1
            btb.train(0x1000, actual)
        assert misses == 99

    def test_distinct_branches_do_not_interfere(self):
        btb = BranchTargetBuffer(num_entries=32768)
        btb.train(0x1000, 0x2000)
        btb.train(0x5000, 0x6000)
        assert btb.predict_target(0x1000) == 0x2000
        assert btb.predict_target(0x5000) == 0x6000

    def test_conflict_eviction_in_tiny_btb(self):
        btb = BranchTargetBuffer(num_entries=1, tag_bits=12)
        btb.train(0x1000, 0x2000)
        btb.train(0x5000, 0x6000)  # same index, different tag
        assert btb.predict_target(0x1000) is None

    def test_storage_budget_matches_table2_scale(self):
        budget = BranchTargetBuffer().storage_budget()
        # A 32K-entry BTB with ~64-bit targets lands in the 64-300 KB
        # range depending on compression; ours stores full targets.
        assert budget.total_bits() == 32768 * (62 + 12)

    def test_name(self):
        assert BranchTargetBuffer().name == "BTB"
