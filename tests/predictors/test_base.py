"""Tests for the predictor base-class dispatch plumbing."""

from repro.common.storage import StorageBudget
from repro.predictors.base import IndirectBranchPredictor
from repro.trace.record import BranchRecord, BranchType


class _Recorder(IndirectBranchPredictor):
    name = "recorder"

    def __init__(self):
        self.conditionals = []
        self.retired = []

    def predict_target(self, pc):
        return None

    def train(self, pc, target):
        pass

    def on_conditional(self, pc, taken):
        self.conditionals.append((pc, taken))

    def on_retired(self, pc, branch_type, target):
        self.retired.append((pc, branch_type, target))

    def storage_budget(self):
        return StorageBudget(self.name)


class TestOnBranchDispatch:
    def test_conditional_routes_to_on_conditional(self):
        recorder = _Recorder()
        recorder.on_branch(
            BranchRecord(0x10, BranchType.CONDITIONAL, False, 0x14, 0)
        )
        assert recorder.conditionals == [(0x10, False)]
        assert recorder.retired == []

    def test_others_route_to_on_retired_with_int_type(self):
        recorder = _Recorder()
        for branch_type in (
            BranchType.DIRECT_JUMP,
            BranchType.DIRECT_CALL,
            BranchType.INDIRECT_JUMP,
            BranchType.INDIRECT_CALL,
            BranchType.RETURN,
        ):
            recorder.on_branch(
                BranchRecord(0x10, branch_type, True, 0x20, 0)
            )
        assert recorder.conditionals == []
        assert [bt for _, bt, _ in recorder.retired] == [
            int(bt)
            for bt in (
                BranchType.DIRECT_JUMP,
                BranchType.DIRECT_CALL,
                BranchType.INDIRECT_JUMP,
                BranchType.INDIRECT_CALL,
                BranchType.RETURN,
            )
        ]

    def test_default_hooks_are_noops(self):
        class Minimal(IndirectBranchPredictor):
            def predict_target(self, pc):
                return None

            def train(self, pc, target):
                pass

            def storage_budget(self):
                return StorageBudget("minimal")

        minimal = Minimal()
        minimal.on_conditional(0x10, True)
        minimal.on_retired(0x10, int(BranchType.RETURN), 0x20)
        minimal.on_branch(
            BranchRecord(0x10, BranchType.CONDITIONAL, True, 0x14, 0)
        )
