"""White-box tests for ITTAGE's allocation and meta-prediction logic."""

import numpy as np
import pytest

from repro.predictors.ittage import ITTAGE, ITTAGEConfig
from repro.trace.record import BranchType

_IND = int(BranchType.INDIRECT_JUMP)


def _drive(predictor, pc, target):
    prediction = predictor.predict_target(pc)
    predictor.train(pc, target)
    predictor.on_retired(pc, _IND, target)
    return prediction


def _tagged_entries(predictor):
    return sum(int(table.valid.sum()) for table in predictor._tables)


class TestAllocation:
    def test_mispredictions_allocate_tagged_entries(self):
        predictor = ITTAGE()
        rng = np.random.default_rng(0)
        for i in range(200):
            predictor.on_conditional(0x500, bool(rng.integers(2)))
            _drive(predictor, 0x1000, 0x2000 + (i % 3) * 0x100)
        assert _tagged_entries(predictor) > 0

    def test_correct_predictions_do_not_allocate(self):
        predictor = ITTAGE()
        _drive(predictor, 0x1000, 0x2000)  # cold miss allocates
        after_first = _tagged_entries(predictor)
        for _ in range(50):
            _drive(predictor, 0x1000, 0x2000)
        assert _tagged_entries(predictor) == after_first

    def test_allocation_prefers_longer_history_than_provider(self):
        predictor = ITTAGE()
        rng = np.random.default_rng(1)
        # Drive a pattern needing history: alternating targets.
        for i in range(400):
            predictor.on_conditional(0x500, bool(rng.integers(2)))
            _drive(predictor, 0x1000, 0x2000 if i % 2 else 0x3000)
        # Entries must exist in at least two different tables (escalation).
        populated_tables = sum(
            1 for table in predictor._tables if int(table.valid.sum()) > 0
        )
        assert populated_tables >= 2


class TestConfidence:
    def test_confidence_saturates(self):
        predictor = ITTAGE()
        for _ in range(50):
            _drive(predictor, 0x1000, 0x2000)
        base_index = predictor._base_index(0x1000)
        assert int(predictor._base_ctr[base_index]) == predictor._conf_max

    def test_target_replacement_needs_confidence_drain(self):
        predictor = ITTAGE()
        for _ in range(10):
            _drive(predictor, 0x1000, 0x2000)
        base_index = predictor._base_index(0x1000)
        # One contrary outcome must not replace the base target.
        _drive(predictor, 0x1000, 0x3000)
        assert int(predictor._base_targets[base_index]) == 0x2000


class TestUsefulReset:
    def test_periodic_reset_clears_useful(self):
        config = ITTAGEConfig(u_reset_period=32)
        predictor = ITTAGE(config)
        rng = np.random.default_rng(2)
        for i in range(32 * 4):
            predictor.on_conditional(0x500, bool(rng.integers(2)))
            _drive(predictor, 0x1000 + (i % 4) * 0x40,
                   0x2000 + int(rng.integers(6)) * 0x100)
        # Immediately after a reset boundary all useful bits are 0 or
        # freshly re-earned; they can never exceed the max.
        for table in predictor._tables:
            assert int(table.useful.max()) <= predictor._useful_max


class TestPartialTags:
    def test_distinct_branches_rarely_false_hit(self):
        predictor = ITTAGE()
        for _ in range(10):
            _drive(predictor, 0x1000, 0x2000)
        # A different branch with no training must not inherit 0x1000's
        # tagged entries through its base/tagged lookups.
        assert predictor.predict_target(0x9F00) in (None, 0x2000)
        # (a partial-tag false hit is possible but must not crash)
