"""Unit tests for the COTTAGE composition."""

import numpy as np

from repro.predictors.cottage import COTTAGE
from repro.trace.record import BranchType


class TestCOTTAGE:
    def test_indirect_side_delegates_to_ittage(self):
        predictor = COTTAGE()
        for _ in range(4):
            predictor.predict_target(0x1000)
            predictor.train(0x1000, 0x2000)
            predictor.on_retired(
                0x1000, int(BranchType.INDIRECT_JUMP), 0x2000
            )
        assert predictor.predict_target(0x1000) == 0x2000

    def test_conditional_side_tracks_accuracy(self):
        predictor = COTTAGE()
        for _ in range(100):
            predictor.on_conditional(0x500, True)
        assert predictor.conditional_count == 100
        assert predictor.conditional_accuracy() > 0.9

    def test_conditional_history_feeds_indirect(self):
        """Both halves see the conditional stream: ITTAGE must be able
        to use conditional outcomes to disambiguate targets."""
        predictor = COTTAGE()
        rng = np.random.default_rng(6)
        targets = {False: 0x2000, True: 0x3000}
        hits = 0
        trials = 800
        for i in range(trials):
            signal = bool(rng.integers(2))
            predictor.on_conditional(0x500, signal)
            prediction = predictor.predict_target(0x1000)
            actual = targets[signal]
            if i > trials // 2 and prediction == actual:
                hits += 1
            predictor.train(0x1000, actual)
            predictor.on_retired(0x1000, int(BranchType.INDIRECT_JUMP), actual)
        assert hits > 0.85 * (trials // 2 - 1)

    def test_storage_budget_has_both_halves(self):
        items = [item for item, _ in COTTAGE().storage_budget().items]
        assert any(item.startswith("TAGE:") for item in items)
        assert any(item.startswith("ITTAGE:") for item in items)
