"""Property-based tests on whole predictors: no-crash, candidate
containment, and determinism under arbitrary branch streams."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BLBP
from repro.core.config import BLBPConfig
from repro.predictors import ITTAGE, BranchTargetBuffer, VPCPredictor
from repro.trace.record import BranchType

pcs = st.sampled_from([0x1000, 0x1040, 0x2000, 0x2100])
targets = st.sampled_from(
    [0x40_0004, 0x40_0128, 0x40_0A3C, 0x41_0010, 0x42_0844]
)

events = st.lists(
    st.one_of(
        st.tuples(st.just("cond"), pcs, st.booleans()),
        st.tuples(st.just("indirect"), pcs, targets),
    ),
    max_size=120,
)


def _replay(predictor, stream):
    outcomes = []
    for event in stream:
        if event[0] == "cond":
            predictor.on_conditional(event[1], event[2])
        else:
            _, pc, target = event
            prediction = predictor.predict_target(pc)
            predictor.train(pc, target)
            predictor.on_retired(pc, int(BranchType.INDIRECT_JUMP), target)
            outcomes.append(prediction)
    return outcomes


class TestBLBPProperties:
    @settings(max_examples=30, deadline=None)
    @given(stream=events)
    def test_prediction_is_none_or_known_candidate(self, stream):
        predictor = BLBP(BLBPConfig(table_rows=64))
        seen = set()
        for event in stream:
            if event[0] == "cond":
                predictor.on_conditional(event[1], event[2])
                continue
            _, pc, target = event
            prediction = predictor.predict_target(pc)
            if prediction is not None:
                assert prediction in set(predictor.candidate_targets(pc))
            predictor.train(pc, target)
            seen.add(target)

    @settings(max_examples=15, deadline=None)
    @given(stream=events)
    def test_deterministic_replay(self, stream):
        config = BLBPConfig(table_rows=64)
        assert _replay(BLBP(config), stream) == _replay(BLBP(config), stream)

    @settings(max_examples=15, deadline=None)
    @given(stream=events)
    def test_weights_stay_saturated(self, stream):
        predictor = BLBP(BLBPConfig(table_rows=64))
        _replay(predictor, stream)
        for bank in predictor.banks:
            assert int(bank.weights.max()) <= 7
            assert int(bank.weights.min()) >= -7


class TestBaselineProperties:
    @settings(max_examples=15, deadline=None)
    @given(stream=events)
    def test_ittage_deterministic(self, stream):
        assert _replay(ITTAGE(), stream) == _replay(ITTAGE(), stream)

    @settings(max_examples=15, deadline=None)
    @given(stream=events)
    def test_btb_predicts_last_trained(self, stream):
        predictor = BranchTargetBuffer()
        last = {}
        for event in stream:
            if event[0] != "indirect":
                continue
            _, pc, target = event
            prediction = predictor.predict_target(pc)
            if pc in last:
                assert prediction == last[pc]
            predictor.train(pc, target)
            last[pc] = target

    @settings(max_examples=10, deadline=None)
    @given(stream=events)
    def test_vpc_never_crashes(self, stream):
        predictor = VPCPredictor()
        outcomes = _replay(predictor, stream)
        assert all(o is None or isinstance(o, int) for o in outcomes)
