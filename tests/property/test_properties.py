"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitops import bits_of, bits_to_int, mask
from repro.common.hashing import fold_int, stable_hash64
from repro.common.history import GlobalHistory
from repro.common.replacement import LRUPolicy, RRIPPolicy
from repro.core.regions import RegionArray
from repro.core.subpredictor import WeightBank
from repro.core.transfer import TransferFunction
from repro.sim.ras import ReturnAddressStack

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestBitopsProperties:
    @given(value=st.integers(min_value=0, max_value=(1 << 60) - 1),
           width=st.integers(min_value=0, max_value=60),
           low=st.integers(min_value=0, max_value=8))
    def test_bits_round_trip(self, value, width, low):
        field = bits_of(value, width, low)
        assert bits_to_int(field, low) == value & (mask(width) << low)

    @given(value=st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_stable_hash_in_range(self, value):
        assert 0 <= stable_hash64(value) < 1 << 64

    @given(value=st.integers(min_value=0), total=st.integers(1, 200),
           width=st.integers(1, 32))
    def test_fold_in_range(self, value, total, width):
        assert 0 <= fold_int(value, total, width) < (1 << width)


class TestHistoryProperties:
    @given(outcomes=st.lists(st.booleans(), max_size=100),
           capacity=st.integers(1, 64))
    def test_history_matches_reference(self, outcomes, capacity):
        history = GlobalHistory(capacity)
        reference = 0
        for outcome in outcomes:
            history.push(outcome)
            reference = ((reference << 1) | int(outcome)) & mask(capacity)
        assert history.value() == reference


class TestReplacementProperties:
    @given(touches=st.lists(st.integers(0, 7), max_size=60))
    def test_lru_victim_always_valid(self, touches):
        lru = LRUPolicy(8)
        for way in touches:
            lru.touch(way)
        assert 0 <= lru.victim() < 8

    @given(touches=st.lists(st.integers(0, 7), max_size=60))
    def test_lru_victim_is_not_most_recent(self, touches):
        lru = LRUPolicy(8)
        for way in touches:
            lru.touch(way)
        if touches:
            assert lru.victim() != touches[-1] or len(set(touches)) == 1

    @given(ops=st.lists(
        st.tuples(st.sampled_from(["touch", "insert"]), st.integers(0, 3)),
        max_size=60,
    ))
    def test_rrip_victim_terminates_and_valid(self, ops):
        rrip = RRIPPolicy(4)
        for op, way in ops:
            if op == "touch":
                rrip.touch(way)
            else:
                rrip.insert(way)
        assert 0 <= rrip.victim() < 4

    @given(ops=st.lists(
        st.tuples(st.sampled_from(["touch", "insert"]), st.integers(0, 3)),
        max_size=60,
    ))
    def test_rrip_values_in_range(self, ops):
        rrip = RRIPPolicy(4, rrpv_bits=2)
        for op, way in ops:
            getattr(rrip, op)(way)
        for way in range(4):
            assert 0 <= rrip.rrpv(way) <= 3


class TestRegionProperties:
    @given(targets=st.lists(addresses, min_size=1, max_size=40))
    def test_encode_decode_either_exact_or_invalidated(self, targets):
        regions = RegionArray(num_entries=4, offset_bits=16)
        encodings = [(t, regions.encode(t)) for t in targets]
        for target, (index, generation, offset) in encodings:
            decoded = regions.decode(index, generation, offset)
            assert decoded is None or decoded == target

    @given(targets=st.lists(addresses, min_size=1, max_size=40))
    def test_last_encoding_always_decodable(self, targets):
        regions = RegionArray(num_entries=4, offset_bits=16)
        for target in targets:
            encoding = regions.encode(target)
            assert regions.decode(*encoding) == target


class TestWeightBankProperties:
    @given(steps=st.lists(
        st.tuples(
            st.integers(0, 7),                      # row
            st.lists(st.booleans(), min_size=4, max_size=4),   # desired
            st.lists(st.booleans(), min_size=4, max_size=4),   # mask
        ),
        max_size=80,
    ))
    def test_weights_always_saturated(self, steps):
        bank = WeightBank(rows=8, num_bits=4, weight_bits=4)
        for row, desired, train_mask in steps:
            bank.train(row, np.array(desired), np.array(train_mask))
        assert int(bank.weights.max()) <= 7
        assert int(bank.weights.min()) >= -7

    @given(count=st.integers(1, 30))
    def test_training_is_monotone_toward_bit(self, count):
        bank = WeightBank(rows=1, num_bits=1, weight_bits=4)
        for _ in range(count):
            bank.train(0, np.array([True]), np.array([True]))
        assert int(bank.read(0)[0]) == min(count, 7)


class TestTransferProperties:
    @given(weights=st.lists(st.integers(-7, 7), min_size=1, max_size=32))
    def test_sign_preserved(self, weights):
        transfer = TransferFunction((0, 1, 2, 3, 5, 8, 12, 17))
        out = transfer.apply(np.array(weights, dtype=np.int8))
        for raw, transferred in zip(weights, out.tolist()):
            assert np.sign(raw) == np.sign(transferred)


class TestRASProperties:
    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("push"), addresses),
            st.tuples(st.just("pop"), st.just(0)),
        ),
        max_size=100,
    ))
    def test_ras_is_bounded_stack(self, ops):
        ras = ReturnAddressStack(depth=8)
        model = []
        for op, value in ops:
            if op == "push":
                ras.push(value)
                model.append(value)
                if len(model) > 8:
                    model.pop(0)
            else:
                expected = model.pop() if model else None
                assert ras.pop() == expected
            assert len(ras) == len(model)
            assert ras.predict() == (model[-1] if model else None)
