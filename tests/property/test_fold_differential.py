"""Differential properties of the incremental history folds.

Two layers of oracle, matching the two layers of optimization:

* :class:`FoldedHistory.update` (the one-step circular-shift-register
  recurrence) against a from-scratch :func:`fold_bits` of the window —
  the classic TAGE fold identity, including the ``length % width == 0``
  corner where the out-position wraps to 0;
* :meth:`BLBPHistories.indices` (the *batched* m-step fold absorption)
  against :meth:`BLBPHistories.indices_reference` (per-read ``fold_int``
  recomputation) — covered in ``tests/core/test_histories_boundaries``
  for handpicked intervals and here over random push/read schedules.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import FoldedHistory, fold_bits, fold_int
from repro.core.config import BLBPConfig
from repro.core.histories import BLBPHistories


def _window_fold(window_value: int, length: int, width: int) -> int:
    """From-scratch oracle: fold the window via ``fold_bits``.

    ``window_value`` holds the most recent bit at bit 0, i.e. bit ``p``
    is the outcome ``p`` steps ago — the same least-significant-first
    convention ``fold_bits`` folds with (and equal to ``fold_int``).
    """
    bits = [(window_value >> position) & 1 for position in range(length)]
    return fold_bits(bits, width)


class TestFoldedHistoryDifferential:
    @given(
        length=st.integers(min_value=1, max_value=96),
        width=st.integers(min_value=1, max_value=16),
        stream=st.lists(st.booleans(), min_size=0, max_size=300),
    )
    @settings(max_examples=200)
    def test_update_matches_from_scratch_fold(self, length, width, stream):
        fold = FoldedHistory(length, width)
        window = 0
        for bit in stream:
            outgoing = (window >> (length - 1)) & 1
            window = ((window << 1) | int(bit)) & ((1 << length) - 1)
            fold.update(int(bit), outgoing)
            assert fold.fold == _window_fold(window, length, width)
            assert fold.fold == fold_int(window, length, width)

    @given(
        multiple=st.integers(min_value=1, max_value=8),
        width=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100)
    def test_exact_multiple_of_width(self, multiple, width, seed):
        """``length % width == 0``: the out-position wraps to bit 0."""
        length = multiple * width
        fold = FoldedHistory(length, width)
        assert fold._out_position == 0
        rng = random.Random(seed)
        window = 0
        for _ in range(3 * length + 7):
            bit = rng.randrange(2)
            outgoing = (window >> (length - 1)) & 1
            window = ((window << 1) | bit) & ((1 << length) - 1)
            fold.update(bit, outgoing)
        assert fold.fold == _window_fold(window, length, width)

    def test_width_one_fold_is_parity(self):
        fold = FoldedHistory(5, 1)
        window = 0
        rng = random.Random(7)
        for _ in range(200):
            bit = rng.randrange(2)
            outgoing = (window >> 4) & 1
            window = ((window << 1) | bit) & 0b11111
            fold.update(bit, outgoing)
            assert fold.fold == bin(window).count("1") % 2


class TestBatchedIndicesDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        reads=st.lists(
            st.integers(min_value=1, max_value=200), min_size=1, max_size=12
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_push_read_schedule(self, seed, reads):
        """Interleave random-size push bursts with index reads; the
        batched fold must match the from-scratch reference at every
        read regardless of the pending-batch size m."""
        config = BLBPConfig()
        histories = BLBPHistories(config)
        rng = random.Random(seed)
        for burst in reads:
            for _ in range(burst):
                histories.push_conditional(rng.random() < 0.5)
            pc = rng.randrange(1 << 20) << 2
            assert histories.indices(pc) == histories.indices_reference(pc)

    def test_forced_internal_flush(self):
        """Bursts past the 1024-bit pending cap exercise the internal
        flush threshold between reads."""
        config = BLBPConfig()
        histories = BLBPHistories(config)
        rng = random.Random(3)
        for _ in range(2600):
            histories.push_conditional(rng.random() < 0.5)
        assert histories.indices(0x4444) == histories.indices_reference(0x4444)
