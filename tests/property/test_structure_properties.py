"""Model-based property tests: IBTB vs a reference dictionary, and
hierarchical-IBTB containment invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hibtb import HierarchicalIBTB
from repro.core.ibtb import IndirectBTB
from repro.core.regions import RegionArray

pcs = st.sampled_from([0x1000, 0x1040, 0x2000, 0x2100, 0x3000])
targets = st.sampled_from(
    [0x40_0004, 0x40_0128, 0x40_0A3C, 0x41_0010, 0x42_0844, 0x43_0220]
)
streams = st.lists(st.tuples(pcs, targets), max_size=120)


class TestIBTBModelProperties:
    @settings(max_examples=40, deadline=None)
    @given(stream=streams)
    def test_lookup_subset_of_inserted(self, stream):
        """Every target the IBTB returns for a pc was once inserted for
        a pc with the same set/tag (no fabricated targets)."""
        ibtb = IndirectBTB(num_sets=2, num_ways=4)
        inserted = set()
        for pc, target in stream:
            ibtb.ensure(pc, target)
            inserted.add(target)
            for _, found in ibtb.lookup(pc):
                assert found in inserted

    @settings(max_examples=40, deadline=None)
    @given(stream=streams)
    def test_most_recent_insert_always_present(self, stream):
        ibtb = IndirectBTB(num_sets=2, num_ways=4)
        for pc, target in stream:
            ibtb.ensure(pc, target)
            assert target in {t for _, t in ibtb.lookup(pc)}

    @settings(max_examples=40, deadline=None)
    @given(stream=streams)
    def test_candidates_unique(self, stream):
        ibtb = IndirectBTB(num_sets=2, num_ways=8)
        for pc, target in stream:
            ibtb.ensure(pc, target)
            found = [t for _, t in ibtb.lookup(pc)]
            assert len(found) == len(set(found))

    @settings(max_examples=30, deadline=None)
    @given(stream=streams)
    def test_occupancy_bounded(self, stream):
        ibtb = IndirectBTB(num_sets=2, num_ways=4)
        for pc, target in stream:
            ibtb.ensure(pc, target)
        assert ibtb.occupancy() <= 2 * 4


class TestHierarchicalIBTBProperties:
    @settings(max_examples=40, deadline=None)
    @given(stream=streams)
    def test_most_recent_insert_always_present(self, stream):
        hibtb = HierarchicalIBTB(l1_entries=2, l2_sets=4, l2_ways=2)
        for pc, target in stream:
            hibtb.ensure(pc, target)
            assert target in {t for _, t in hibtb.lookup(pc)}

    @settings(max_examples=40, deadline=None)
    @given(stream=streams)
    def test_candidates_unique_across_levels(self, stream):
        hibtb = HierarchicalIBTB(l1_entries=2, l2_sets=4, l2_ways=2)
        for pc, target in stream:
            hibtb.ensure(pc, target)
            found = [t for _, t in hibtb.lookup(pc)]
            assert len(found) == len(set(found))

    @settings(max_examples=40, deadline=None)
    @given(stream=streams)
    def test_touch_never_breaks_lookup(self, stream):
        hibtb = HierarchicalIBTB(l1_entries=2, l2_sets=4, l2_ways=2)
        for pc, target in stream:
            hibtb.ensure(pc, target)
            for handle, _ in hibtb.lookup(pc):
                hibtb.touch(pc, handle)
            assert target in {t for _, t in hibtb.lookup(pc)}


class TestRegionSharingProperties:
    @settings(max_examples=30, deadline=None)
    @given(stream=streams)
    def test_shared_region_array_consistency(self, stream):
        """An IBTB sharing a tiny region array never returns a target
        whose region was recycled (stale entries must be dropped)."""
        regions = RegionArray(num_entries=2, offset_bits=16)
        ibtb = IndirectBTB(num_sets=2, num_ways=4, regions=regions)
        inserted = set()
        for pc, target in stream:
            ibtb.ensure(pc, target)
            inserted.add(target)
            for _, found in ibtb.lookup(pc):
                assert found in inserted
