"""Suspend/restore properties for every registered predictor.

The property: for any branch stream and any split point k,

    drive k events -> state_dict -> JSON -> load_state into a fresh
    predictor -> drive the remaining events

produces exactly the same per-branch predictions and the same final
``state_hash()`` as never suspending at all.  One test does the restore
in a genuinely fresh process; one pins the registry's hashes to golden
fixtures regenerable via ``python -m repro statehash``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.registry import (
    CONDITIONAL_PREDICTORS,
    INDIRECT_PREDICTORS,
    RegistryError,
    conditional_names,
    indirect_names,
    make_conditional,
    make_indirect,
)
from repro.trace.record import BranchType

_IND_JUMP = int(BranchType.INDIRECT_JUMP)
_IND_CALL = int(BranchType.INDIRECT_CALL)
_RETURN = int(BranchType.RETURN)

pcs = st.sampled_from([0x1000, 0x1040, 0x2000, 0x2100, 0x3004])
targets = st.sampled_from(
    [0x40_0004, 0x40_0128, 0x40_0A3C, 0x41_0010, 0x42_0844]
)

#: cond / indirect / return events — every hook a predictor implements.
events = st.lists(
    st.one_of(
        st.tuples(st.just("cond"), pcs, st.booleans()),
        st.tuples(st.just("indirect"), pcs, targets),
        st.tuples(st.just("return"), pcs, targets),
    ),
    min_size=4,
    max_size=100,
)

streams = st.tuples(events, st.integers(min_value=0, max_value=100))


def _drive_indirect(predictor, stream):
    """Replay events through the full indirect interface; return the
    prediction at every indirect branch."""
    outcomes = []
    for event in stream:
        kind, pc, payload = event
        if kind == "cond":
            predictor.on_conditional(pc, payload)
        elif kind == "indirect":
            outcomes.append(predictor.predict_target(pc))
            predictor.train(pc, payload)
            predictor.on_retired(pc, _IND_JUMP, payload)
        else:
            predictor.on_retired(pc, _RETURN, payload)
    return outcomes


def _drive_conditional(predictor, stream):
    outcomes = []
    for event in stream:
        kind, pc, payload = event
        if kind != "cond":
            continue
        outcomes.append(predictor.predict(pc))
        predictor.update(pc, payload)
    return outcomes


def _suspend_restore(factory, state):
    """snapshot -> real JSON -> fresh instance, as a checkpoint would."""
    revived = factory()
    revived.load_state(json.loads(json.dumps(state)))
    return revived


@pytest.mark.parametrize("name", indirect_names())
class TestIndirectSuspendRestore:
    @settings(max_examples=8, deadline=None)
    @given(case=streams)
    def test_restore_continues_identically(self, name, case):
        stream, raw_split = case
        split = raw_split % (len(stream) + 1)
        baseline = INDIRECT_PREDICTORS[name]()
        expected = _drive_indirect(baseline, stream)

        first = INDIRECT_PREDICTORS[name]()
        head = _drive_indirect(first, stream[:split])
        revived = _suspend_restore(INDIRECT_PREDICTORS[name], first.state_dict())
        assert revived.state_hash() == first.state_hash()
        tail = _drive_indirect(revived, stream[split:])
        assert head + tail == expected
        assert revived.state_hash() == baseline.state_hash()


@pytest.mark.parametrize("name", conditional_names())
class TestConditionalSuspendRestore:
    @settings(max_examples=8, deadline=None)
    @given(case=streams)
    def test_restore_continues_identically(self, name, case):
        stream, raw_split = case
        split = raw_split % (len(stream) + 1)
        baseline = CONDITIONAL_PREDICTORS[name]()
        expected = _drive_conditional(baseline, stream)

        first = CONDITIONAL_PREDICTORS[name]()
        head = _drive_conditional(first, stream[:split])
        revived = _suspend_restore(
            CONDITIONAL_PREDICTORS[name], first.state_dict()
        )
        assert revived.state_hash() == first.state_hash()
        tail = _drive_conditional(revived, stream[split:])
        assert head + tail == expected
        assert revived.state_hash() == baseline.state_hash()


@pytest.mark.parametrize("name", indirect_names())
def test_snapshot_is_nondestructive(name):
    """Taking a snapshot must not perturb the live predictor."""
    stream = [
        ("cond", 0x1000, True),
        ("indirect", 0x2000, 0x40_0004),
        ("cond", 0x1040, False),
        ("indirect", 0x2000, 0x40_0128),
        ("return", 0x3004, 0x41_0010),
        ("indirect", 0x2100, 0x40_0004),
    ] * 10
    undisturbed = make_indirect(name)
    expected = _drive_indirect(undisturbed, stream)

    probed = make_indirect(name)
    outcomes = []
    for event in stream:
        probed.state_dict()  # snapshot before every event
        outcomes.extend(_drive_indirect(probed, [event]))
    assert outcomes == expected
    assert probed.state_hash() == undisturbed.state_hash()


def test_registry_rejects_unknown_names():
    with pytest.raises(RegistryError, match="choose from"):
        make_indirect("no-such-predictor")
    with pytest.raises(RegistryError, match="choose from"):
        make_conditional("no-such-predictor")


class TestFreshProcessRestore:
    def test_blbp_restore_in_subprocess_matches(self, tmp_path):
        """The restore side of the property in a genuinely fresh
        interpreter: no shared module state, no shared caches."""
        from repro.workloads.suite import suite88_specs

        trace_entry = suite88_specs(0.02)[0]
        trace = trace_entry.generate()
        split = len(trace) // 2

        baseline = make_indirect("BLBP")
        stream = list(
            zip(
                trace.pcs.tolist(),
                trace.types.tolist(),
                trace.takens.tolist(),
                trace.targets.tolist(),
            )
        )

        def drive(predictor, records):
            outcomes = []
            for pc, branch_type, taken, target in records:
                if branch_type == int(BranchType.CONDITIONAL):
                    predictor.on_conditional(pc, bool(taken))
                elif branch_type in (_IND_JUMP, _IND_CALL):
                    outcomes.append(predictor.predict_target(pc))
                    predictor.train(pc, target)
                    predictor.on_retired(pc, branch_type, target)
                else:
                    predictor.on_retired(pc, branch_type, target)
            return outcomes

        expected = drive(baseline, stream)

        first = make_indirect("BLBP")
        head = drive(first, stream[:split])
        snapshot_path = tmp_path / "blbp.state.json"
        snapshot_path.write_text(json.dumps(first.state_dict()))
        tail_path = tmp_path / "tail.json"
        tail_path.write_text(
            json.dumps([list(record) for record in stream[split:]])
        )

        script = (
            "import json, sys\n"
            "from repro.registry import make_indirect\n"
            "from repro.trace.record import BranchType\n"
            "snapshot, tail, out = sys.argv[1:4]\n"
            "predictor = make_indirect('BLBP')\n"
            "predictor.load_state(json.load(open(snapshot)))\n"
            "outcomes = []\n"
            "for pc, branch_type, taken, target in json.load(open(tail)):\n"
            "    if branch_type == int(BranchType.CONDITIONAL):\n"
            "        predictor.on_conditional(pc, bool(taken))\n"
            "    elif branch_type in (int(BranchType.INDIRECT_JUMP),\n"
            "                         int(BranchType.INDIRECT_CALL)):\n"
            "        outcomes.append(predictor.predict_target(pc))\n"
            "        predictor.train(pc, target)\n"
            "        predictor.on_retired(pc, branch_type, target)\n"
            "    else:\n"
            "        predictor.on_retired(pc, branch_type, target)\n"
            "json.dump({'outcomes': outcomes,\n"
            "           'hash': predictor.state_hash()}, open(out, 'w'))\n"
        )
        out_path = tmp_path / "out.json"
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run(
            [sys.executable, "-c", script,
             str(snapshot_path), str(tail_path), str(out_path)],
            check=True, env=env,
        )
        reply = json.loads(out_path.read_text())
        assert head + reply["outcomes"] == expected
        assert reply["hash"] == baseline.state_hash()


class TestGoldenStateHashes:
    FIXTURE = Path(__file__).parent.parent / "fixtures" / "state_hashes.json"

    def test_fixture_hashes_reproduce(self):
        """Pin post-simulation state for every registered predictor.

        A mismatch means architectural state changed: if intentional,
        regenerate with
        ``python -m repro statehash --out tests/fixtures/state_hashes.json``
        and explain the change in the commit.
        """
        from repro.sim import simulate
        from repro.workloads.suite import suite88_specs

        fixture = json.loads(self.FIXTURE.read_text())
        specs = {e.name: e for e in suite88_specs(fixture["scale"])}
        trace = specs[fixture["trace"]].generate()
        assert set(fixture["hashes"]) == set(indirect_names())
        for name, expected in fixture["hashes"].items():
            predictor = make_indirect(name)
            simulate(predictor, trace)
            assert predictor.state_hash() == expected, (
                f"{name}: architectural state diverged from golden fixture"
            )
