"""Edge-case and stress tests for the BLBP core."""

import dataclasses

import numpy as np
import pytest

from repro.core import BLBP
from repro.core.config import BLBPConfig


def _drive(predictor, pc, target):
    prediction = predictor.predict_target(pc)
    predictor.train(pc, target)
    return prediction


class TestDegenerateConfigurations:
    def test_single_bit_prediction(self):
        config = BLBPConfig(num_target_bits=1)
        predictor = BLBP(config)
        targets = [0x40_0004, 0x40_000C]  # differ at bit 3... and bit 2?
        # bit 2: 1 vs 1; bit window is only bit 2 -> identical slice.
        for i in range(40):
            _drive(predictor, 0x1000, targets[i % 2])
        # With identical predicted slices the score ties; prediction must
        # still be one of the candidates.
        prediction = predictor.predict_target(0x1000)
        assert prediction in targets

    def test_tiny_tables(self):
        config = BLBPConfig(table_rows=2)
        predictor = BLBP(config)
        for i in range(60):
            _drive(predictor, 0x1000, 0x40_0004)
        assert predictor.predict_target(0x1000) == 0x40_0004

    def test_single_way_ibtb_tracks_last_target(self):
        config = BLBPConfig(ibtb_sets=4, ibtb_ways=1)
        predictor = BLBP(config)
        _drive(predictor, 0x1000, 0xA004)
        _drive(predictor, 0x1000, 0xB008)
        assert predictor.candidate_targets(0x1000) == [0xB008]

    def test_wide_weights(self):
        config = BLBPConfig(
            weight_bits=6,
            transfer_magnitudes=tuple(range(32)),
        )
        predictor = BLBP(config)
        for _ in range(80):
            _drive(predictor, 0x1000, 0x40_0004)
        assert predictor.predict_target(0x1000) == 0x40_0004


class TestManyBranches:
    def test_hundreds_of_static_branches(self):
        predictor = BLBP()
        rng = np.random.default_rng(11)
        branches = {
            0x1000 + i * 0x40: 0x40_0000 + i * 0x44 for i in range(300)
        }
        misses = 0
        total = 0
        for _ in range(4):
            for pc, target in branches.items():
                if _drive(predictor, pc, target) != target:
                    misses += 1
                total += 1
        # Monomorphic branches: only first-touch misses (IBTB capacity
        # is 4096 entries, far above 300).
        assert misses <= 300 + 10

    def test_set_conflicts_bounded_by_rrip(self):
        # 64 sets x 2 ways, 300 branches: conflict evictions must not
        # crash and hot branches must still resolve.
        config = BLBPConfig(ibtb_sets=64, ibtb_ways=2)
        predictor = BLBP(config)
        for round_number in range(3):
            for i in range(300):
                pc = 0x1000 + i * 0x40
                _drive(predictor, pc, 0x40_0000 + i * 0x44)
        assert predictor.ibtb.occupancy() <= 64 * 2


class TestTargetWidth:
    def test_full_64bit_targets_survive(self):
        predictor = BLBP()
        target = 0x7FFF_FFFF_FFFF_FF04
        _drive(predictor, 0x1000, target)
        assert predictor.candidate_targets(0x1000) == [target]
        assert _drive(predictor, 0x1000, target) == target

    def test_region_churn_does_not_fabricate_targets(self):
        config = BLBPConfig(region_entries=2)
        predictor = BLBP(config)
        rng = np.random.default_rng(12)
        seen = set()
        for i in range(300):
            target = (int(rng.integers(8)) << 32) | 0x40_0004
            seen.add(target)
            prediction = _drive(predictor, 0x1000, target)
            if prediction is not None:
                assert prediction in seen
