"""RRPV-sequence regressions for IBTB training (the double-promotion fix).

``BLBP.train`` used to call ``ibtb.ensure(pc, target)`` and then
``ibtb.touch(pc, way)`` on the returned way.  On a *hit* the extra touch
was redundant (SRRIP's promote-to-0 is idempotent), but on a *fill* it
promoted the freshly inserted way from the SRRIP insertion value
(``max - 1``, "long re-reference") straight to 0 — every newly learned
target entered the set as if it were hot, which defeats SRRIP's
scan-resistance and skews replacement toward evicting established
targets.  These tests pin the exact RRPV sequence for fill-then-hit on
both IBTB organizations and assert training never issues a bare touch.
"""

from repro.core.blbp import BLBP
from repro.core.config import BLBPConfig
from repro.core.hibtb import HierarchicalIBTB
from repro.core.ibtb import IndirectBTB


def _rrpv_of(ibtb: IndirectBTB, pc: int, target: int) -> int:
    """RRPV of the way currently holding ``target`` for ``pc``."""
    bucket, _tag = ibtb._locate(pc)
    for way, stored in ibtb.lookup(pc):
        if stored == target:
            return bucket.rrip.rrpv(way)
    raise AssertionError(f"target {target:#x} not stored for pc {pc:#x}")


class TestIndirectBTBRRPVSequence:
    def test_fill_inserts_at_long_rereference(self):
        ibtb = IndirectBTB(rrpv_bits=2)
        ibtb.ensure(0x1000, 0x40_0000)
        # SRRIP-HP insertion: RRPV = max - 1, NOT 0.
        assert _rrpv_of(ibtb, 0x1000, 0x40_0000) == 2

    def test_hit_promotes_to_zero(self):
        ibtb = IndirectBTB(rrpv_bits=2)
        ibtb.ensure(0x1000, 0x40_0000)
        ibtb.ensure(0x1000, 0x40_0000)  # hit: single promotion
        assert _rrpv_of(ibtb, 0x1000, 0x40_0000) == 0

    def test_fill_then_hit_sequence(self):
        """The full pinned sequence: fill → max-1, hit → 0, hit → 0."""
        ibtb = IndirectBTB(rrpv_bits=3)
        observed = []
        for _ in range(3):
            ibtb.ensure(0x2000, 0xB000)
            observed.append(_rrpv_of(ibtb, 0x2000, 0xB000))
        assert observed == [6, 0, 0]  # max-1 = (2^3 - 1) - 1 = 6


class TestBLBPTrainSinglePromotion:
    """``train`` must rely on ``ensure`` alone for RRIP maintenance."""

    def _spy_touch(self, predictor):
        calls = []
        inner = predictor.ibtb.touch

        def spy(pc, way):
            calls.append((pc, way))
            inner(pc, way)

        predictor.ibtb.touch = spy
        return calls

    def test_flat_ibtb_fill_keeps_insertion_rrpv(self):
        blbp = BLBP(BLBPConfig(use_hierarchical_ibtb=False))
        calls = self._spy_touch(blbp)
        blbp.predict_target(0x1000)
        blbp.train(0x1000, 0x40_0000)  # first sight of the target: a fill
        # The regression: the filled way must stay at the insertion RRPV.
        max_rrpv = (1 << blbp.ibtb.rrpv_bits) - 1
        assert _rrpv_of(blbp.ibtb, 0x1000, 0x40_0000) == max_rrpv - 1
        assert calls == []  # no bare touch issued by train

    def test_flat_ibtb_hit_single_promotion(self):
        blbp = BLBP(BLBPConfig(use_hierarchical_ibtb=False))
        calls = self._spy_touch(blbp)
        for _ in range(2):
            blbp.predict_target(0x1000)
            blbp.train(0x1000, 0x40_0000)
        assert _rrpv_of(blbp.ibtb, 0x1000, 0x40_0000) == 0  # via ensure's hit
        assert calls == []

    def test_hierarchical_ibtb_train_never_touches(self):
        blbp = BLBP(BLBPConfig(use_hierarchical_ibtb=True))
        calls = self._spy_touch(blbp)
        for step in range(4):
            pc = 0x1000 + step * 0x40
            blbp.predict_target(pc)
            blbp.train(pc, 0x40_0000 + step * 4)
        assert calls == []


class TestHierarchicalIBTBRRPVSequence:
    def test_l1_spill_inserts_l2_at_long_rereference(self):
        """An L1 victim spilling into L2 gets the insertion RRPV."""
        hibtb = HierarchicalIBTB(l1_entries=1, rrpv_bits=2)
        hibtb.ensure(0x1000, 0xA000)
        hibtb.ensure(0x2000, 0xB000)  # evicts (0x1000, 0xA000) into L2
        assert _rrpv_of(hibtb._l2, 0x1000, 0xA000) == 2  # max - 1

    def test_l2_hit_then_touch_sequence(self):
        """Pinned L2 sequence: spill-fill → max-1, touch → 0."""
        hibtb = HierarchicalIBTB(l1_entries=1, rrpv_bits=2)
        hibtb.ensure(0x1000, 0xA000)
        hibtb.ensure(0x2000, 0xB000)  # spills A into L2
        observed = [_rrpv_of(hibtb._l2, 0x1000, 0xA000)]
        for handle, target in hibtb.lookup(0x1000):
            if target == 0xA000:
                hibtb.touch(0x1000, handle)
        observed.append(_rrpv_of(hibtb._l2, 0x1000, 0xA000))
        assert observed == [2, 0]

    def test_respill_promotes_existing_l2_way(self):
        """Spilling a target already resident in L2 is an L2 hit."""
        hibtb = HierarchicalIBTB(l1_entries=1, rrpv_bits=2)
        hibtb.ensure(0x1000, 0xA000)
        hibtb.ensure(0x2000, 0xB000)  # A → L2 (fill, rrpv 2)
        hibtb.ensure(0x1000, 0xA000)  # A back into L1, B → L2
        hibtb.ensure(0x3000, 0xC000)  # A → L2 again: hit, promoted
        assert _rrpv_of(hibtb._l2, 0x1000, 0xA000) == 0
