"""Unit tests for repro.core.config."""

import dataclasses

import pytest

from repro.core.config import (
    BLBPConfig,
    DEFAULT_TRANSFER_MAGNITUDES,
    GEHL_INTERVALS,
    PAPER_INTERVALS,
    gehl_config,
    paper_config,
    transfer_magnitudes_for,
    unoptimized_config,
    with_toggles,
)


class TestPaperConfig:
    def test_matches_table2(self):
        config = paper_config()
        assert config.num_target_bits == 12
        assert config.weight_bits == 4
        assert config.global_history_bits == 630
        assert config.local_histories == 256
        assert config.local_history_bits == 10
        assert config.ibtb_sets == 64
        assert config.ibtb_ways == 64
        assert config.region_entries == 128

    def test_paper_intervals(self):
        assert paper_config().intervals == PAPER_INTERVALS
        assert PAPER_INTERVALS[-1] == (252, 630)

    def test_eight_subpredictors(self):
        # 1 local-history table + 7 interval tables = the paper's N = 8.
        assert paper_config().num_subpredictors == 8

    def test_weight_magnitude(self):
        assert paper_config().weight_magnitude == 7

    def test_all_optimizations_on(self):
        config = paper_config()
        assert config.use_local_history
        assert config.use_intervals
        assert config.use_selective_update
        assert config.use_transfer_function
        assert config.use_adaptive_threshold


class TestVariants:
    def test_unoptimized_turns_everything_off(self):
        config = unoptimized_config()
        assert not config.use_local_history
        assert not config.use_intervals
        assert not config.use_selective_update
        assert not config.use_transfer_function
        assert not config.use_adaptive_threshold

    def test_gehl_swaps_intervals(self):
        config = gehl_config()
        assert config.effective_intervals == GEHL_INTERVALS
        assert all(start == 0 for start, _ in config.effective_intervals)

    def test_with_toggles(self):
        config = with_toggles(use_transfer_function=False)
        assert not config.use_transfer_function
        assert config.use_local_history


class TestValidation:
    def test_interval_past_history_rejected(self):
        with pytest.raises(ValueError):
            BLBPConfig(intervals=((0, 631),))

    def test_interval_at_capacity_allowed(self):
        # (252, 630) is half-open and exactly fills a 630-bit history.
        BLBPConfig(intervals=((252, 630),))

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            BLBPConfig(intervals=((5, 5),))

    def test_wrong_transfer_length_rejected(self):
        with pytest.raises(ValueError):
            BLBPConfig(transfer_magnitudes=(0, 1, 2))

    def test_bad_weight_bits_rejected(self):
        with pytest.raises(ValueError):
            BLBPConfig(weight_bits=1)

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            BLBPConfig(intervals=((10, 5),))

    def test_negative_interval_start_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            BLBPConfig(intervals=((-1, 5),))

    def test_negative_low_bit_rejected(self):
        with pytest.raises(ValueError, match="low_bit"):
            BLBPConfig(low_bit=-1)

    def test_zero_global_history_rejected(self):
        with pytest.raises(ValueError, match="global_history_bits"):
            BLBPConfig(global_history_bits=0, intervals=())

    def test_zero_local_history_rejected(self):
        with pytest.raises(ValueError, match="local history"):
            BLBPConfig(local_histories=0)
        with pytest.raises(ValueError, match="local history"):
            BLBPConfig(local_history_bits=0)

    def test_zero_region_compression_rejected(self):
        with pytest.raises(ValueError, match="region"):
            BLBPConfig(region_entries=0)
        with pytest.raises(ValueError, match="region"):
            BLBPConfig(region_offset_bits=0)

    def test_bad_adaptive_threshold_rejected(self):
        with pytest.raises(ValueError, match="theta"):
            BLBPConfig(initial_theta=0)
        with pytest.raises(ValueError, match="theta"):
            BLBPConfig(theta_counter_bits=0)

    def test_zero_table_rows_rejected(self):
        with pytest.raises(ValueError, match="table_rows"):
            BLBPConfig(table_rows=0)

    def test_frozen(self):
        config = paper_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.table_rows = 1


class TestTransferMagnitudesFor:
    def test_four_bits_is_the_default_table(self):
        assert transfer_magnitudes_for(4) == DEFAULT_TRANSFER_MAGNITUDES

    def test_sized_to_weight_magnitude(self):
        for bits in range(2, 8):
            table = transfer_magnitudes_for(bits)
            assert len(table) == (1 << (bits - 1))
            BLBPConfig(weight_bits=bits, transfer_magnitudes=table)

    def test_extension_stays_convex(self):
        table = transfer_magnitudes_for(6)
        steps = [b - a for a, b in zip(table, table[1:])]
        assert steps == sorted(steps)

    def test_narrow_weights_rejected(self):
        with pytest.raises(ValueError):
            transfer_magnitudes_for(1)
