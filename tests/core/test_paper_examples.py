"""Paper-fidelity tests: the worked examples from the paper, replayed.

Figure 3 walks a single-sub-predictor BLBP through three training steps
on two 4-bit targets; Figure 4 aggregates two targets across eight
sub-predictors; §3.7 claims the dot product equals a sum of bitwise-AND
terms.  These tests replay those examples with the library's primitives
so the implementation provably follows the published arithmetic.
"""

import numpy as np

from repro.core.subpredictor import WeightBank


def _dot(weights, target_bits):
    return int(sum(w * b for w, b in zip(weights, target_bits)))


class TestFigure3WorkedExample:
    """The paper's Fig. 3: weights converge to the correct target's bits.

    Setup: one sub-predictor, weights (w1..w4) start at (3,3,3,3);
    target1 = 0101, target2 = 1011 (paper's bit order, leftmost = w1's
    bit); the actual target is always target1.
    """

    # Paper's vectors, leftmost bit first to match w1..w4.
    TARGET1 = [0, 1, 0, 1]
    TARGET2 = [1, 0, 1, 1]

    def _train_step(self, weights):
        """The paper's rule: per bit of the actual target, increment the
        weight if the bit is 1 else decrement."""
        return [
            w + (1 if bit else -1)
            for w, bit in zip(weights, self.TARGET1)
        ]

    def test_step1_dot_products_and_misprediction(self):
        weights = [3, 3, 3, 3]
        p1 = _dot(weights, self.TARGET1)
        p2 = _dot(weights, self.TARGET2)
        assert p1 == 6 and p2 == 9          # paper: P1 = 6 < P2 = 9
        assert p2 > p1                       # predicts target2 -> wrong

    def test_step2_weights_and_tie(self):
        weights = self._train_step([3, 3, 3, 3])
        assert weights == [2, 4, 2, 4]       # paper: (2,4,2,4)
        p1 = _dot(weights, self.TARGET1)
        p2 = _dot(weights, self.TARGET2)
        assert p1 == 8 and p2 == 8           # paper: P1 = 8, P2 = 8 (tie)

    def test_step3_correct_prediction(self):
        weights = self._train_step(self._train_step([3, 3, 3, 3]))
        assert weights == [1, 5, 1, 5]       # paper: (1,5,1,5)
        p1 = _dot(weights, self.TARGET1)
        p2 = _dot(weights, self.TARGET2)
        assert p1 == 10 and p2 == 7          # paper: P1 = 10 > P2 = 7
        assert p1 > p2                        # now predicts target1

    def test_convergence_to_target_bits(self):
        weights = [3, 3, 3, 3]
        for _ in range(3):                    # paper trains once more on
            weights = self._train_step(weights)  # the correct prediction
        assert weights == [0, 6, 0, 6]       # paper: (0,6,0,6)
        normalized = [1 if w > 0 else 0 for w in weights]
        assert normalized == self.TARGET1    # "equal to the correct bits"

    def test_weightbank_reproduces_the_same_trajectory(self):
        """The library's WeightBank must follow the same arithmetic
        (modulo its LSB-first bit order)."""
        bank = WeightBank(rows=1, num_bits=4, weight_bits=4)
        bank.weights[0] = np.array([3, 3, 3, 3], dtype=np.int8)
        desired = np.array(self.TARGET1, dtype=bool)
        mask = np.ones(4, dtype=bool)
        bank.train(0, desired, mask)
        assert bank.read(0).tolist() == [2, 4, 2, 4]
        bank.train(0, desired, mask)
        assert bank.read(0).tolist() == [1, 5, 1, 5]
        bank.train(0, desired, mask)
        assert bank.read(0).tolist() == [0, 6, 0, 6]


class TestFigure4Aggregation:
    """Fig. 4: eight sub-predictors' per-bit outputs sum into yout, and
    the two example targets score 51 and 43."""

    YOUT = [-1, 19, 10, 32]          # paper's summed vector
    TARGET1 = [0, 1, 0, 1]
    TARGET2 = [1, 0, 1, 1]

    def test_paper_scores(self):
        assert _dot(self.YOUT, self.TARGET1) == 51   # paper: 51
        assert _dot(self.YOUT, self.TARGET2) == 41   # 10 + (-1) + 32
        # (The figure prints 43 for target2 but its own addition
        #  -1 + 0 + 10 + 32 = 41; either way target1 wins.)
        assert _dot(self.YOUT, self.TARGET1) > _dot(self.YOUT, self.TARGET2)


class TestSection37DotProductEquivalence:
    """§3.7: the dot product equals the sum of the bitwise AND of each
    yout element with the sign-extended target bit."""

    def test_and_formulation_matches_dot_product(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            yout = rng.integers(-136, 137, size=12)
            bits = rng.integers(0, 2, size=12)
            dot = int((yout * bits).sum())
            # Sign-extended bit: 0 -> 0x0, 1 -> all-ones; AND with yout
            # keeps yout where the bit is 1.
            masked = int(sum(y if b else 0 for y, b in zip(yout, bits)))
            assert dot == masked
