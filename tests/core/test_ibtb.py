"""Unit tests for the IBTB (§3.1)."""

import pytest

from repro.core.ibtb import IndirectBTB
from repro.core.regions import RegionArray


class TestIndirectBTB:
    def test_cold_lookup_empty(self):
        ibtb = IndirectBTB()
        assert ibtb.lookup(0x1000) == []

    def test_ensure_then_lookup(self):
        ibtb = IndirectBTB()
        way = ibtb.ensure(0x1000, 0x40_0000)
        candidates = ibtb.lookup(0x1000)
        assert (way, 0x40_0000) in candidates

    def test_multiple_targets_accumulate(self):
        ibtb = IndirectBTB()
        targets = [0x40_0000 + i * 0x40 for i in range(5)]
        for target in targets:
            ibtb.ensure(0x1000, target)
        stored = {target for _, target in ibtb.lookup(0x1000)}
        assert stored == set(targets)

    def test_duplicate_ensure_is_idempotent(self):
        ibtb = IndirectBTB()
        way_a = ibtb.ensure(0x1000, 0x40_0000)
        way_b = ibtb.ensure(0x1000, 0x40_0000)
        assert way_a == way_b
        assert len(ibtb.lookup(0x1000)) == 1

    def test_capacity_bounded_by_ways(self):
        ibtb = IndirectBTB(num_sets=4, num_ways=4)
        for i in range(16):
            ibtb.ensure(0x1000, 0x40_0000 + i * 0x40)
        assert len(ibtb.lookup(0x1000)) <= 4

    def test_rrip_eviction_replaces_cold_targets(self):
        ibtb = IndirectBTB(num_sets=1, num_ways=2)
        ibtb.ensure(0x1000, 0xA000)
        ibtb.ensure(0x1000, 0xB000)
        # Touch A so B ages out when C arrives.
        candidates = dict(
            (target, way) for way, target in ibtb.lookup(0x1000)
        )
        ibtb.touch(0x1000, candidates[0xA000])
        ibtb.ensure(0x1000, 0xC000)
        targets = {target for _, target in ibtb.lookup(0x1000)}
        assert 0xA000 in targets
        assert 0xC000 in targets

    def test_stale_region_entries_dropped(self):
        regions = RegionArray(num_entries=1, offset_bits=20)
        ibtb = IndirectBTB(num_sets=2, num_ways=4, regions=regions)
        ibtb.ensure(0x1000, 0x1_0000_0000)
        ibtb.ensure(0x1000, 0x2_0000_0000)  # recycles the only region
        targets = {target for _, target in ibtb.lookup(0x1000)}
        assert targets == {0x2_0000_0000}

    def test_distinct_branches_different_tags(self):
        ibtb = IndirectBTB()
        ibtb.ensure(0x1000, 0xA000)
        ibtb.ensure(0x2344, 0xB000)
        assert {t for _, t in ibtb.lookup(0x1000)} == {0xA000}
        assert {t for _, t in ibtb.lookup(0x2344)} == {0xB000}

    def test_occupancy_counts_entries(self):
        ibtb = IndirectBTB()
        assert ibtb.occupancy() == 0
        ibtb.ensure(0x1000, 0xA000)
        ibtb.ensure(0x1000, 0xB000)
        assert ibtb.occupancy() == 2

    def test_storage_bits_paper_shape(self):
        """64 sets x 64 ways x (8 tag + 7 region + 20 offset + 2 rrip)."""
        ibtb = IndirectBTB()
        assert ibtb.storage_bits() == 64 * 64 * (8 + 7 + 20 + 2)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            IndirectBTB(num_sets=0)
        with pytest.raises(ValueError):
            IndirectBTB(tag_bits=0)
