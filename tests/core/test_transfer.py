"""Unit tests for the transfer function (§3.6, Fig. 5)."""

import numpy as np
import pytest

from repro.core.config import DEFAULT_TRANSFER_MAGNITUDES
from repro.core.transfer import TransferFunction


class TestTransferFunction:
    def test_odd_symmetry(self):
        transfer = TransferFunction(DEFAULT_TRANSFER_MAGNITUDES)
        for weight in range(-7, 8):
            assert transfer.apply_scalar(-weight) == -transfer.apply_scalar(weight)

    def test_zero_fixed_point(self):
        transfer = TransferFunction(DEFAULT_TRANSFER_MAGNITUDES)
        assert transfer.apply_scalar(0) == 0

    def test_monotone(self):
        transfer = TransferFunction(DEFAULT_TRANSFER_MAGNITUDES)
        values = [transfer.apply_scalar(w) for w in range(-7, 8)]
        assert values == sorted(values)

    def test_convex_in_magnitude(self):
        """Differences must grow with magnitude (Fig. 5's amplification
        of large weights)."""
        mags = DEFAULT_TRANSFER_MAGNITUDES
        diffs = [b - a for a, b in zip(mags, mags[1:])]
        assert diffs == sorted(diffs)
        assert diffs[-1] > diffs[0]

    def test_vector_matches_scalar(self):
        transfer = TransferFunction(DEFAULT_TRANSFER_MAGNITUDES)
        weights = np.arange(-7, 8, dtype=np.int8)
        out = transfer.apply(weights)
        assert out.tolist() == [transfer.apply_scalar(int(w)) for w in weights]

    def test_disabled_is_identity(self):
        transfer = TransferFunction(DEFAULT_TRANSFER_MAGNITUDES, enabled=False)
        weights = np.arange(-7, 8, dtype=np.int8)
        assert transfer.apply(weights).tolist() == weights.tolist()

    def test_out_of_range_scalar_rejected(self):
        transfer = TransferFunction(DEFAULT_TRANSFER_MAGNITUDES)
        with pytest.raises(ValueError):
            transfer.apply_scalar(8)

    def test_nonzero_origin_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction((1, 2, 3))

    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction((0, 3, 2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction(())
