"""Unit tests for the hierarchical IBTB (§6 future work)."""

import pytest

from repro.core.hibtb import HierarchicalIBTB, _L1, _L2


class TestHierarchicalIBTB:
    def test_cold_lookup_empty(self):
        assert HierarchicalIBTB().lookup(0x1000) == []

    def test_ensure_fills_l1(self):
        hibtb = HierarchicalIBTB()
        handle = hibtb.ensure(0x1000, 0x40_0000)
        assert handle[0] == _L1
        candidates = hibtb.lookup(0x1000)
        assert [(handle, 0x40_0000)] == candidates

    def test_spill_reaches_l2_and_stays_findable(self):
        hibtb = HierarchicalIBTB(l1_entries=2)
        targets = [0x40_0000, 0x40_0100, 0x40_0200]
        for target in targets:
            hibtb.ensure(0x1000, target)
        found = {target for _, target in hibtb.lookup(0x1000)}
        assert found == set(targets)
        levels = {handle[0] for handle, _ in hibtb.lookup(0x1000)}
        assert levels == {_L1, _L2}

    def test_lookup_deduplicates_levels(self):
        hibtb = HierarchicalIBTB(l1_entries=1)
        hibtb.ensure(0x1000, 0xA000)
        hibtb.ensure(0x1000, 0xB000)  # spills A to L2
        hibtb.ensure(0x1000, 0xA000)  # A back in L1, also still in L2
        targets = [target for _, target in hibtb.lookup(0x1000)]
        assert sorted(targets) == [0xA000, 0xB000]

    def test_touch_both_levels(self):
        hibtb = HierarchicalIBTB(l1_entries=1)
        hibtb.ensure(0x1000, 0xA000)
        hibtb.ensure(0x1000, 0xB000)
        for handle, _ in hibtb.lookup(0x1000):
            hibtb.touch(0x1000, handle)  # must not raise

    def test_distinct_branches_isolated(self):
        hibtb = HierarchicalIBTB()
        hibtb.ensure(0x1000, 0xA000)
        hibtb.ensure(0x2000, 0xB000)
        assert {t for _, t in hibtb.lookup(0x1000)} == {0xA000}
        assert {t for _, t in hibtb.lookup(0x2000)} == {0xB000}

    def test_occupancy(self):
        hibtb = HierarchicalIBTB(l1_entries=2)
        for i in range(4):
            hibtb.ensure(0x1000, 0x40_0000 + i * 0x40)
        assert hibtb.occupancy() == 4

    def test_storage_cheaper_than_64way(self):
        from repro.core.ibtb import IndirectBTB

        hier = HierarchicalIBTB()
        mono = IndirectBTB()  # 64 x 64
        assert hier.storage_bits() < mono.storage_bits() * 1.1

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalIBTB(l1_entries=0)
