"""Unit tests for per-bit adaptive threshold training."""

import pytest

from repro.core.threshold import PerBitAdaptiveThreshold


class TestPerBitAdaptiveThreshold:
    def test_independent_per_bit(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=4, initial_theta=10, counter_bits=3
        )
        for _ in range(50):
            threshold.observe(0, correct=False, magnitude=0)
        assert threshold.theta(0) > 10
        assert threshold.theta(1) == 10

    def test_should_train_on_incorrect(self):
        threshold = PerBitAdaptiveThreshold(num_bits=2, initial_theta=5)
        assert threshold.should_train(0, correct=False, magnitude=100)

    def test_should_train_on_low_margin(self):
        threshold = PerBitAdaptiveThreshold(num_bits=2, initial_theta=5)
        assert threshold.should_train(0, correct=True, magnitude=4)
        assert not threshold.should_train(0, correct=True, magnitude=5)

    def test_theta_decreases_under_overtraining(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=10, counter_bits=3
        )
        for _ in range(100):
            threshold.observe(0, correct=True, magnitude=2)
        assert threshold.theta(0) < 10

    def test_theta_floor_is_one(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=1, counter_bits=3
        )
        for _ in range(200):
            threshold.observe(0, correct=True, magnitude=0)
        assert threshold.theta(0) >= 1

    def test_non_adaptive_freezes_theta(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=14, adaptive=False
        )
        for _ in range(500):
            threshold.observe(0, correct=False, magnitude=0)
        assert threshold.theta(0) == 14

    def test_high_margin_correct_is_neutral(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=5, counter_bits=3
        )
        for _ in range(100):
            threshold.observe(0, correct=True, magnitude=50)
        assert threshold.theta(0) == 5

    def test_storage_bits_positive(self):
        assert PerBitAdaptiveThreshold(12, 14).storage_bits() > 0

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            PerBitAdaptiveThreshold(0, 14)
        with pytest.raises(ValueError):
            PerBitAdaptiveThreshold(4, 0)


class TestSymmetricSaturation:
    """The controller counter saturates at ±(2^(b-1) - 1) — the same
    number of net observations fires a θ increment and a θ decrement.

    An earlier implementation used the asymmetric two's-complement
    bounds (+2^(b-1)-1 / -2^(b-1)), making θ one observation slower to
    decrease than to increase.
    """

    def test_bounds_are_mirrored(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=5, counter_bits=5
        )
        assert threshold._max == 15
        assert threshold._min == -15

    def test_increment_and_decrement_take_equal_steps(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=5, counter_bits=3
        )
        # counter_bits=3 → saturation at ±3: exactly 3 mispredicts
        # raise θ, and exactly 3 low-margin corrects lower it back.
        for step in range(3):
            assert threshold.theta(0) == 5, f"θ moved early at step {step}"
            threshold.observe(0, correct=False, magnitude=0)
        assert threshold.theta(0) == 6
        for step in range(3):
            assert threshold.theta(0) == 6, f"θ moved early at step {step}"
            threshold.observe(0, correct=True, magnitude=0)
        assert threshold.theta(0) == 5

    def test_counter_resets_after_each_theta_move(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=5, counter_bits=3
        )
        for _ in range(6):
            threshold.observe(0, correct=False, magnitude=0)
        assert threshold.theta(0) == 7  # two full saturations, not three


class TestThetaTrajectoryRegression:
    """Pin θ's exact trajectory under a fixed observation sequence.

    Any change to the controller (bounds, reset rule, floor) shifts
    these checkpoints; the literal values were recorded from the fixed
    symmetric-saturation implementation.
    """

    def test_trajectory_checkpoints(self):
        import random

        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=8, counter_bits=4
        )
        rng = random.Random(1234)
        checkpoints = []
        for step in range(400):
            correct = rng.random() < 0.6
            magnitude = rng.randrange(0, 16)
            threshold.observe(0, correct, magnitude)
            if step % 50 == 49:
                checkpoints.append(threshold.theta(0))
        assert checkpoints == [8, 10, 11, 11, 13, 14, 14, 14]


class TestObserveAndMaskEquivalence:
    """The batched hot-path method must match the scalar protocol:
    observe first, then should_train against the post-update θ."""

    def test_matches_scalar_protocol(self):
        import random

        rng = random.Random(99)
        batched = PerBitAdaptiveThreshold(
            num_bits=4, initial_theta=6, counter_bits=3
        )
        scalar = PerBitAdaptiveThreshold(
            num_bits=4, initial_theta=6, counter_bits=3
        )
        for _ in range(500):
            active = [rng.random() < 0.7 for _ in range(4)]
            correct = [rng.random() < 0.5 for _ in range(4)]
            magnitudes = [rng.randrange(0, 12) for _ in range(4)]
            mask = batched.observe_and_mask(active, correct, magnitudes)
            expected = []
            for bit in range(4):
                if not active[bit]:
                    expected.append(False)
                    continue
                scalar.observe(bit, correct[bit], magnitudes[bit])
                expected.append(
                    scalar.should_train(bit, correct[bit], magnitudes[bit])
                )
            assert mask == expected
            assert batched._theta == scalar._theta
            assert batched._counter == scalar._counter

    def test_inactive_bits_untouched(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=2, initial_theta=5, counter_bits=3
        )
        for _ in range(10):
            mask = threshold.observe_and_mask(
                [True, False], [False, False], [0, 0]
            )
            assert mask[1] is False
        assert threshold.theta(0) > 5
        assert threshold.theta(1) == 5
        assert threshold._counter[1] == 0
