"""Unit tests for per-bit adaptive threshold training."""

import pytest

from repro.core.threshold import PerBitAdaptiveThreshold


class TestPerBitAdaptiveThreshold:
    def test_independent_per_bit(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=4, initial_theta=10, counter_bits=3
        )
        for _ in range(50):
            threshold.observe(0, correct=False, magnitude=0)
        assert threshold.theta(0) > 10
        assert threshold.theta(1) == 10

    def test_should_train_on_incorrect(self):
        threshold = PerBitAdaptiveThreshold(num_bits=2, initial_theta=5)
        assert threshold.should_train(0, correct=False, magnitude=100)

    def test_should_train_on_low_margin(self):
        threshold = PerBitAdaptiveThreshold(num_bits=2, initial_theta=5)
        assert threshold.should_train(0, correct=True, magnitude=4)
        assert not threshold.should_train(0, correct=True, magnitude=5)

    def test_theta_decreases_under_overtraining(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=10, counter_bits=3
        )
        for _ in range(100):
            threshold.observe(0, correct=True, magnitude=2)
        assert threshold.theta(0) < 10

    def test_theta_floor_is_one(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=1, counter_bits=3
        )
        for _ in range(200):
            threshold.observe(0, correct=True, magnitude=0)
        assert threshold.theta(0) >= 1

    def test_non_adaptive_freezes_theta(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=14, adaptive=False
        )
        for _ in range(500):
            threshold.observe(0, correct=False, magnitude=0)
        assert threshold.theta(0) == 14

    def test_high_margin_correct_is_neutral(self):
        threshold = PerBitAdaptiveThreshold(
            num_bits=1, initial_theta=5, counter_bits=3
        )
        for _ in range(100):
            threshold.observe(0, correct=True, magnitude=50)
        assert threshold.theta(0) == 5

    def test_storage_bits_positive(self):
        assert PerBitAdaptiveThreshold(12, 14).storage_bits() > 0

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            PerBitAdaptiveThreshold(0, 14)
        with pytest.raises(ValueError):
            PerBitAdaptiveThreshold(4, 0)
