"""Unit tests for the per-bit weight banks."""

import numpy as np
import pytest

from repro.core.subpredictor import WeightBank


class TestWeightBank:
    def test_starts_at_zero(self):
        bank = WeightBank(rows=16, num_bits=12, weight_bits=4)
        assert int(np.abs(bank.weights).max()) == 0

    def test_train_moves_toward_target_bits(self):
        bank = WeightBank(rows=4, num_bits=4, weight_bits=4)
        desired = np.array([True, False, True, False])
        mask = np.ones(4, dtype=bool)
        bank.train(0, desired, mask)
        assert bank.read(0).tolist() == [1, -1, 1, -1]

    def test_mask_suppresses_positions(self):
        bank = WeightBank(rows=4, num_bits=4, weight_bits=4)
        desired = np.array([True, True, True, True])
        mask = np.array([True, False, True, False])
        bank.train(0, desired, mask)
        assert bank.read(0).tolist() == [1, 0, 1, 0]

    def test_saturation_at_magnitude(self):
        bank = WeightBank(rows=2, num_bits=2, weight_bits=4)
        desired = np.array([True, False])
        mask = np.ones(2, dtype=bool)
        for _ in range(50):
            bank.train(1, desired, mask)
        assert bank.read(1).tolist() == [7, -7]

    def test_rows_independent(self):
        bank = WeightBank(rows=8, num_bits=2, weight_bits=4)
        bank.train(3, np.array([True, True]), np.ones(2, dtype=bool))
        assert bank.read(4).tolist() == [0, 0]

    def test_storage_bits(self):
        bank = WeightBank(rows=1024, num_bits=12, weight_bits=4)
        assert bank.storage_bits(4) == 1024 * 12 * 4

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            WeightBank(rows=0, num_bits=4, weight_bits=4)
        with pytest.raises(ValueError):
            WeightBank(rows=4, num_bits=0, weight_bits=4)
        with pytest.raises(ValueError):
            WeightBank(rows=4, num_bits=4, weight_bits=1)
