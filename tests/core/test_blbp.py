"""Unit and behaviour tests for the BLBP predictor itself."""

import numpy as np
import pytest

from repro.core import BLBP
from repro.core.config import BLBPConfig, paper_config, unoptimized_config


def _drive(predictor, pc, target):
    prediction = predictor.predict_target(pc)
    predictor.train(pc, target)
    return prediction


class TestColdBehaviour:
    def test_cold_miss(self):
        assert BLBP().predict_target(0x1000) is None

    def test_first_train_installs_target(self):
        predictor = BLBP()
        predictor.train(0x1000, 0x40_0000)
        assert predictor.candidate_targets(0x1000) == [0x40_0000]

    def test_monomorphic_branch_perfect_after_first(self):
        predictor = BLBP()
        misses = 0
        for i in range(100):
            if _drive(predictor, 0x1000, 0x40_0004) != 0x40_0004:
                misses += 1
        assert misses == 1  # only the cold miss


class TestLearning:
    def test_history_correlated_two_targets(self):
        """Target determined by the most recent signal branch — the
        minimal Fig. 3 scenario.  Filler outcomes model the predictable
        loop bookkeeping between signal and dispatch that keeps history
        contexts recurrent (a hashed predictor cannot learn from
        never-repeating history patterns).
        """
        predictor = BLBP()
        rng = np.random.default_rng(6)
        # Targets must differ within the predicted bit window.
        targets = {False: 0x40_0014, True: 0x40_0A28}
        hits = 0
        trials = 1200
        for i in range(trials):
            signal = bool(rng.integers(2))
            predictor.on_conditional(0x500, signal)
            for _ in range(12):  # predictable filler bits
                predictor.on_conditional(0x600, True)
            actual = targets[signal]
            if _drive(predictor, 0x1000, actual) == actual and i > trials // 2:
                hits += 1
        assert hits > 0.85 * (trials // 2 - 1)

    def test_four_targets_with_two_signal_bits(self):
        predictor = BLBP()
        rng = np.random.default_rng(7)
        targets = [0x40_0010, 0x40_0424, 0x40_0838, 0x40_0C4C]
        hits = 0
        trials = 2000
        for i in range(trials):
            selector = int(rng.integers(4))
            predictor.on_conditional(0x500, bool(selector & 1))
            predictor.on_conditional(0x504, bool(selector & 2))
            for _ in range(11):  # predictable filler bits
                predictor.on_conditional(0x600, True)
            actual = targets[selector]
            if _drive(predictor, 0x1000, actual) == actual and i > trials // 2:
                hits += 1
        assert hits > 0.75 * (trials - trials // 2 - 1)

    def test_weights_converge_to_target_bits(self):
        """The Fig. 3 convergence property: after steady training with a
        constant context, sign(yout_k) matches the hot target's bits on
        every position where candidates disagree."""
        predictor = BLBP()
        # Constant history; two candidates; always the same actual.
        predictor.train(0x1000, 0b0110_0100)   # install other candidate
        actual = 0b1011_0100
        for _ in range(60):
            _drive(predictor, 0x1000, actual)
        yout, predicted_bits = predictor.predicted_bit_vector(0x1000)
        config = predictor.config
        for k in range(config.num_target_bits):
            actual_bit = (actual >> (config.low_bit + k)) & 1
            other_bit = (0b0110_0100 >> (config.low_bit + k)) & 1
            if actual_bit != other_bit:
                assert int(predicted_bits[k]) == actual_bit


class TestSelectiveTraining:
    def test_monomorphic_branch_never_trains_weights(self):
        predictor = BLBP()
        for _ in range(30):
            _drive(predictor, 0x1000, 0x40_0000)
        assert all(int(np.abs(bank.weights).max()) == 0
                   for bank in predictor.banks)

    def test_without_selective_update_weights_train(self):
        predictor = BLBP(BLBPConfig(use_selective_update=False))
        for _ in range(30):
            _drive(predictor, 0x1000, 0x40_0014)
        assert any(int(np.abs(bank.weights).max()) > 0
                   for bank in predictor.banks)

    def test_shared_bits_not_trained(self):
        predictor = BLBP()
        # Two targets agreeing on bit 2 (both have it set).
        targets = [0b0100 | 0x40_0000, 0b0100 | 0x40_0800]
        for i in range(50):
            _drive(predictor, 0x1000, targets[i % 2])
        # Weight position 0 predicts bit 2 (low_bit = 2); it is shared,
        # so no bank may have trained it.
        for bank in predictor.banks:
            assert int(np.abs(bank.weights[:, 0]).max()) == 0


class TestIBTBIntegration:
    def test_candidates_bounded_by_ways(self):
        predictor = BLBP(BLBPConfig(ibtb_sets=2, ibtb_ways=4))
        for i in range(20):
            predictor.train(0x1000, 0x40_0000 + i * 0x40)
        assert len(predictor.candidate_targets(0x1000)) <= 4

    def test_prediction_always_a_known_candidate(self):
        predictor = BLBP()
        rng = np.random.default_rng(8)
        for i in range(300):
            target = 0x40_0000 + int(rng.integers(6)) * 0x40
            prediction = predictor.predict_target(0x1000)
            if prediction is not None:
                assert prediction in predictor.candidate_targets(0x1000)
            predictor.train(0x1000, target)


class TestConfigurationVariants:
    @pytest.mark.parametrize("config", [
        paper_config(),
        unoptimized_config(),
        BLBPConfig(use_intervals=False),
        BLBPConfig(use_local_history=False),
        BLBPConfig(use_transfer_function=False),
        BLBPConfig(use_adaptive_threshold=False),
        BLBPConfig(ibtb_ways=8, ibtb_sets=512),
    ])
    def test_variant_runs_and_learns_monomorphic(self, config):
        predictor = BLBP(config)
        misses = 0
        for i in range(50):
            if _drive(predictor, 0x1000, 0x40_0004) != 0x40_0004:
                misses += 1
        assert misses <= 1


class TestTrainWithoutPredict:
    def test_out_of_band_train_recovers(self):
        predictor = BLBP()
        predictor.train(0x1000, 0x40_0000)
        predictor.predict_target(0x2000)       # unrelated stashed context
        predictor.train(0x1000, 0x40_0000)     # pc mismatch path
        assert predictor.candidate_targets(0x1000) == [0x40_0000]


class TestStorageBudget:
    def test_total_near_paper_budget(self):
        budget = BLBP().storage_budget()
        # Paper claims 64.08 KB; our itemization lands within ~15%.
        assert 55.0 < budget.total_kilobytes() < 75.0

    def test_weight_tables_dominate(self):
        budget = BLBP().storage_budget()
        items = budget.as_dict()
        weight_bits = sum(
            bits for item, bits in items.items() if item.startswith("weights")
        )
        assert weight_bits == 8 * 1024 * 12 * 4

    def test_components_present(self):
        items = BLBP().storage_budget().as_dict()
        for component in ("global history", "local histories", "IBTB",
                          "region array", "adaptive thresholds"):
            assert component in items


class TestDeterminism:
    def test_fully_deterministic(self):
        def run():
            predictor = BLBP()
            rng = np.random.default_rng(9)
            outcomes = []
            for _ in range(400):
                predictor.on_conditional(0x500, bool(rng.integers(2)))
                target = 0x40_0000 + int(rng.integers(4)) * 0x44
                outcomes.append(_drive(predictor, 0x1000, target))
            return outcomes

        assert run() == run()
