"""Unit tests for the SNIP predecessor predictor."""

import numpy as np
import pytest

from repro.core.snip import SNIP, SNIPConfig


def _drive(predictor, pc, target):
    prediction = predictor.predict_target(pc)
    predictor.train(pc, target)
    return prediction


class TestSNIPConfig:
    def test_published_array_count(self):
        # 40 history + 4 path features = the 44 SRAM arrays of §3.
        assert SNIPConfig().num_features == 44

    def test_validation(self):
        with pytest.raises(ValueError):
            SNIPConfig(history_features=0)
        with pytest.raises(ValueError):
            SNIPConfig(table_rows=0)
        with pytest.raises(ValueError):
            SNIPConfig(weight_bits=1)


class TestSNIP:
    def test_cold_miss(self):
        assert SNIP().predict_target(0x1000) is None

    def test_monomorphic_branch(self):
        predictor = SNIP()
        misses = sum(
            1 for _ in range(60)
            if _drive(predictor, 0x1000, 0x40_0004) != 0x40_0004
        )
        assert misses <= 1

    def test_learns_from_iid_history(self):
        """SNIP's defining property: per-bit ±1 inputs let it learn a
        target correlated with ONE history bit even when the rest of the
        history is IID noise — exactly where BLBP's pattern hashing
        drowns (see DESIGN.md)."""
        predictor = SNIP()
        rng = np.random.default_rng(3)
        targets = {False: 0x40_0014, True: 0x40_0A28}
        hits = 0
        trials = 1600
        for i in range(trials):
            signal = bool(rng.integers(2))
            predictor.on_conditional(0x500, signal)
            # Three more IID noise bits per iteration.
            for noise_pc in (0x504, 0x508, 0x50C):
                predictor.on_conditional(noise_pc, bool(rng.integers(2)))
            actual = targets[signal]
            if _drive(predictor, 0x1000, actual) == actual and i > trials // 2:
                hits += 1
        assert hits > 0.7 * (trials // 2 - 1)

    def test_weights_saturate(self):
        predictor = SNIP()
        for i in range(300):
            predictor.on_conditional(0x500, bool(i & 1))
            _drive(predictor, 0x1000, 0x40_0014 if i & 1 else 0x40_0A28)
        assert int(predictor._weights.max()) <= 7
        assert int(predictor._weights.min()) >= -7

    def test_piecewise_rows_depend_on_history(self):
        predictor = SNIP(SNIPConfig(piecewise_bits=4))
        rows_before = predictor._context_rows(0x1000).copy()
        predictor.on_conditional(0x500, True)
        rows_after = predictor._context_rows(0x1000)
        assert not np.array_equal(rows_before, rows_after)

    def test_plain_rows_pc_only(self):
        predictor = SNIP(SNIPConfig(piecewise_bits=0))
        rows_before = predictor._context_rows(0x1000).copy()
        predictor.on_conditional(0x500, True)
        assert np.array_equal(rows_before, predictor._context_rows(0x1000))

    def test_deterministic(self):
        def run():
            predictor = SNIP()
            rng = np.random.default_rng(4)
            outcomes = []
            for _ in range(300):
                predictor.on_conditional(0x500, bool(rng.integers(2)))
                target = 0x40_0000 + int(rng.integers(4)) * 0x44
                outcomes.append(_drive(predictor, 0x1000, target))
            return outcomes

        assert run() == run()

    def test_storage_budget_larger_than_blbp(self):
        from repro.core import BLBP

        snip_kb = SNIP().storage_budget().total_kilobytes()
        blbp_weights = 8 * 1024 * 12 * 4 / 8192
        assert snip_kb > 0
        # SNIP's 44 arrays at 256 rows: 66 KB of weights alone.
        weights_bits = dict(SNIP().storage_budget().items)[
            "weights (44 feature arrays)"
        ]
        assert weights_bits == 44 * 256 * 12 * 4
