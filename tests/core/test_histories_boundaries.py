"""Boundary coverage for BLBPHistories interval extraction.

The batched fold absorption reads entering/leaving bit slices straight
out of the (unmasked) global-history integer; these tests pin the edge
geometries against ``indices_reference``, the per-read ``fold_int``
oracle: intervals touching the oldest history bit (629), width-1
windows at both ends, windows narrower and wider than the fold width,
and windows whose length is an exact multiple of the fold width (the
out-position-wraps-to-0 corner).
"""

import random

from repro.core.config import BLBPConfig, paper_config
from repro.core.histories import BLBPHistories


def _parity_run(config, seed=0, steps=900, reads_every=37):
    """Push random outcomes, checking indices == indices_reference at
    irregular intervals (so varying batch sizes m are absorbed)."""
    histories = BLBPHistories(config)
    rng = random.Random(seed)
    for step in range(steps):
        histories.push_conditional(rng.random() < 0.5)
        if step % reads_every == 0:
            pc = rng.randrange(1 << 20) << 2
            assert histories.indices(pc) == histories.indices_reference(pc), (
                f"divergence at step {step} for intervals "
                f"{config.effective_intervals}"
            )
    assert histories.indices(0x1000) == histories.indices_reference(0x1000)


class TestIntervalBoundaries:
    def test_interval_touching_oldest_bit(self):
        """(252, 630): the window ends at history position 629."""
        _parity_run(BLBPConfig(intervals=((252, 630),)))

    def test_width_one_interval_at_oldest_bit(self):
        """(629, 630): a single-bit window at the very edge."""
        _parity_run(BLBPConfig(intervals=((629, 630),)))

    def test_width_one_interval_at_newest_bit(self):
        """(0, 1): a single-bit window over the newest outcome."""
        _parity_run(BLBPConfig(intervals=((0, 1),)))

    def test_full_history_interval(self):
        """(0, 630): one window spanning the whole history."""
        _parity_run(BLBPConfig(intervals=((0, 630),)), steps=700)

    def test_interval_wider_than_fold_width(self):
        """table_rows=16 → 4-bit folds; (0, 13) folds 13 bits into 4."""
        config = BLBPConfig(table_rows=16, intervals=((0, 13), (44, 85)))
        assert BLBPHistories(config)._fold_bits == 4
        _parity_run(config)

    def test_interval_narrower_than_fold_width(self):
        """(10, 13): 3-bit window under the default 10-bit fold."""
        _parity_run(BLBPConfig(intervals=((10, 13),)))

    def test_interval_length_exact_fold_multiple(self):
        """Length % fold width == 0: leaving bits cancel at position 0."""
        config = BLBPConfig(intervals=((5, 25),))  # 20 = 2 × 10
        histories = BLBPHistories(config)
        assert histories._folds[0]._out_position == 0
        _parity_run(config)

    def test_adjacent_and_overlapping_intervals(self):
        """Overlapping windows share history bits but separate folds."""
        _parity_run(BLBPConfig(intervals=((0, 13), (13, 26), (7, 20))))

    def test_paper_intervals_long_run(self):
        """The tuned seven-interval configuration, longer schedule."""
        _parity_run(paper_config(), seed=11, steps=1500, reads_every=53)

    def test_paper_intervals_huge_batch(self):
        """A single read after >1024 pushes: the internal flush cap
        fires mid-burst, then the read absorbs the remainder."""
        histories = BLBPHistories(paper_config())
        rng = random.Random(5)
        for _ in range(1700):
            histories.push_conditional(rng.random() < 0.5)
        assert histories.indices(0x8000) == histories.indices_reference(0x8000)

    def test_global_history_masked_after_flush(self):
        """Pending (unmasked) bits never leak out of the public view."""
        histories = BLBPHistories(paper_config())
        for _ in range(700):
            histories.push_conditional(True)
        assert histories.global_history_value().bit_length() <= 630
        histories.indices(0x1000)  # forces the flush
        assert histories._ghist.bit_length() <= 630
