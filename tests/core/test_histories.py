"""Unit tests for BLBP's history state and index computation."""

from repro.core.config import BLBPConfig, paper_config
from repro.core.histories import BLBPHistories


class TestBLBPHistories:
    def test_index_count_matches_subpredictors(self):
        config = paper_config()
        histories = BLBPHistories(config)
        assert len(histories.indices(0x1000)) == config.num_subpredictors

    def test_indices_in_range(self):
        config = paper_config()
        histories = BLBPHistories(config)
        for _ in range(20):
            histories.push_conditional(True)
            for index in histories.indices(0x1234):
                assert 0 <= index < config.table_rows

    def test_history_changes_interval_indices(self):
        histories = BLBPHistories(paper_config())
        before = histories.indices(0x1000)
        histories.push_conditional(True)
        after = histories.indices(0x1000)
        # The short-interval features must react to a new outcome.
        assert before[1] != after[1] or before[2] != after[2]

    def test_old_history_only_affects_long_intervals(self):
        """An outcome pushed 100 positions ago must not affect the
        (0, 13) interval index."""
        config = paper_config()
        base = BLBPHistories(config)
        other = BLBPHistories(config)
        base.push_conditional(True)
        other.push_conditional(False)
        for histories in (base, other):
            for _ in range(100):
                histories.push_conditional(True)
        # Feature 1 is interval (0, 13): identical recent history.
        assert base.indices(0x1000)[1] == other.indices(0x1000)[1]
        # The (77, 149) interval (feature 5) must differ.
        assert base.indices(0x1000)[5] != other.indices(0x1000)[5]

    def test_local_history_changes_feature_zero(self):
        config = paper_config()
        histories = BLBPHistories(config)
        before = histories.indices(0x1000)[0]
        # Push a target with bit 3 set for this branch.
        histories.push_target(0x1000, 0b1000)
        after = histories.indices(0x1000)[0]
        assert before != after

    def test_local_history_disabled_gives_pc_bias(self):
        config = BLBPConfig(use_local_history=False)
        histories = BLBPHistories(config)
        before = histories.indices(0x1000)[0]
        histories.push_target(0x1000, 0b1000)
        assert histories.indices(0x1000)[0] == before

    def test_local_history_records_configured_bit(self):
        config = paper_config()
        histories = BLBPHistories(config)
        histories.push_target(0x1000, 1 << config.local_target_bit)
        assert histories.local_history_of(0x1000) & 1 == 1
        histories.push_target(0x1000, 0)
        assert histories.local_history_of(0x1000) & 1 == 0

    def test_global_history_truncates_at_capacity(self):
        config = BLBPConfig()
        histories = BLBPHistories(config)
        for _ in range(700):
            histories.push_conditional(True)
        assert histories.global_history_value().bit_length() <= 630

    def test_distinct_pcs_distinct_indices(self):
        histories = BLBPHistories(paper_config())
        a = histories.indices(0x1000)
        b = histories.indices(0x2000)
        assert a != b

    def test_storage_bits(self):
        config = paper_config()
        histories = BLBPHistories(config)
        assert histories.storage_bits() == 630 + 256 * 10
