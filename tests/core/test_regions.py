"""Unit tests for the region array (BTB compression, §3.6)."""

import pytest

from repro.core.regions import RegionArray


class TestRegionArray:
    def test_encode_decode_round_trip(self):
        regions = RegionArray(num_entries=8, offset_bits=20)
        target = 0x0000_7F3A_0012_3450
        index, generation, offset = regions.encode(target)
        assert regions.decode(index, generation, offset) == target

    def test_same_region_reused(self):
        regions = RegionArray(num_entries=8, offset_bits=20)
        index_a, _, _ = regions.encode(0x40_0000)
        index_b, _, _ = regions.encode(0x40_1234)
        assert index_a == index_b

    def test_offsets_distinguish_targets(self):
        regions = RegionArray(num_entries=8, offset_bits=20)
        enc_a = regions.encode(0x40_0000)
        enc_b = regions.encode(0x40_0004)
        assert enc_a[2] != enc_b[2]

    def test_eviction_invalidates_stale_references(self):
        regions = RegionArray(num_entries=2, offset_bits=20)
        stale = regions.encode(0x1_0000_0000)
        regions.encode(0x2_0000_0000)
        regions.encode(0x3_0000_0000)  # evicts the LRU region
        assert regions.evictions >= 1
        assert regions.decode(*stale) is None

    def test_lru_keeps_hot_region(self):
        regions = RegionArray(num_entries=2, offset_bits=20)
        hot = regions.encode(0x1_0000_0000)
        regions.encode(0x2_0000_0000)
        regions.encode(0x1_0000_0040)       # touch the hot region
        regions.encode(0x3_0000_0000)       # must evict region 2
        assert regions.decode(*regions.encode(0x1_0000_0080)) is not None
        assert regions.decode(*hot) == 0x1_0000_0000

    def test_occupancy(self):
        regions = RegionArray(num_entries=4, offset_bits=20)
        assert regions.occupancy() == 0
        regions.encode(0x1_0000_0000)
        regions.encode(0x2_0000_0000)
        assert regions.occupancy() == 2

    def test_generation_guards_recycled_slots(self):
        regions = RegionArray(num_entries=1, offset_bits=20)
        old = regions.encode(0x1_0000_0000)
        regions.encode(0x2_0000_0000)
        new = regions.encode(0x2_0000_0100)
        assert regions.decode(*old) is None
        assert regions.decode(*new) == 0x2_0000_0100

    def test_storage_bits(self):
        regions = RegionArray(num_entries=128, offset_bits=20)
        assert regions.storage_bits() >= 128 * 44

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            RegionArray(num_entries=0)
        with pytest.raises(ValueError):
            RegionArray(offset_bits=0)

    def test_decode_out_of_range_rejected(self):
        regions = RegionArray(num_entries=4)
        with pytest.raises(ValueError):
            regions.decode(9, 0, 0)
