"""End-to-end trace-provenance guarantees.

The TraceSource layer is behavior-preserving by construction; these
tests pin the load-bearing consequences:

* campaigns planned over lazy :class:`WorkloadSource`s produce journals
  **byte-identical** to campaigns over eagerly generated traces (the
  88-workload identity criterion, exercised on a suite subset here and
  in full by the CI suite jobs);
* an ingested external trace simulates bit-identically across the
  scalar/columnar backends and the solo/fused execution paths;
* sampled simulation composes with ingestion.
"""

from pathlib import Path

import pytest

from repro.exec import run_campaign_parallel
from repro.predictors import ITTAGE, BranchTargetBuffer, TwoBitBTB
from repro.sim.runner import run_campaign
from repro.trace.ingest import load_any_trace
from repro.trace.source import FileSource, WorkloadSource
from repro.workloads.suite import suite88_specs

FIXTURES = Path(__file__).parent.parent / "fixtures" / "ingest"
CHAMPSIM_FIXTURE = FIXTURES / "mini.champsim.txt"

FACTORIES = {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB, "ITTAGE": ITTAGE}


def _suite_subset(count=4, scale=0.02):
    return suite88_specs(scale)[:: max(1, 88 // count)][:count]


class TestWorkloadSourceJournalIdentity:
    def test_journal_bytes_identical_to_eager_traces(self, tmp_path):
        entries = _suite_subset()
        eager_journal = tmp_path / "eager.jsonl"
        run_campaign_parallel(
            [entry.generate() for entry in entries], FACTORIES,
            jobs=1, journal_path=eager_journal,
            cache_dir=tmp_path / "eager-cache",
        )
        lazy_journal = tmp_path / "lazy.jsonl"
        run_campaign_parallel(
            [WorkloadSource(entry) for entry in entries], FACTORIES,
            jobs=1, journal_path=lazy_journal,
            cache_dir=tmp_path / "lazy-cache",
        )
        assert eager_journal.read_bytes() == lazy_journal.read_bytes()

    def test_serial_campaign_identical_over_specs(self):
        entries = _suite_subset(count=2)
        eager = run_campaign(
            [entry.generate() for entry in entries], FACTORIES
        )
        lazy = run_campaign(entries, FACTORIES)  # specs coerce to sources
        for trace_name in eager.traces():
            for predictor in eager.predictors():
                assert (
                    eager.results[trace_name][predictor]
                    == lazy.results[trace_name][predictor]
                )

    def test_state_hashes_identical_over_specs(self):
        from repro.sim import simulate

        entry = _suite_subset(count=1)[0]
        eager_predictor = ITTAGE()
        simulate(eager_predictor, entry.generate())
        lazy_predictor = ITTAGE()
        simulate(lazy_predictor, WorkloadSource(entry).trace())
        assert (
            eager_predictor.state_hash() == lazy_predictor.state_hash()
        )


class TestIngestedTraceIdentity:
    @pytest.fixture()
    def ingested(self):
        return load_any_trace(CHAMPSIM_FIXTURE)

    def test_scalar_columnar_journals_identical(self, ingested, tmp_path):
        journals = {}
        for backend in ("scalar", "columnar"):
            path = tmp_path / f"{backend}.jsonl"
            run_campaign_parallel(
                [ingested], FACTORIES, jobs=1, journal_path=path,
                cache_dir=tmp_path / f"{backend}-cache", backend=backend,
            )
            journals[backend] = path.read_bytes()
        assert journals["scalar"] == journals["columnar"]

    def test_fused_unfused_journals_identical(self, ingested, tmp_path):
        journals = {}
        for fuse in (True, False):
            path = tmp_path / f"fuse-{fuse}.jsonl"
            run_campaign_parallel(
                [ingested], FACTORIES, jobs=1, journal_path=path,
                cache_dir=tmp_path / f"fuse-{fuse}-cache", fuse=fuse,
            )
            journals[fuse] = path.read_bytes()
        assert journals[True] == journals[False]

    def test_file_source_plans_like_loaded_trace(self, ingested, tmp_path):
        left = tmp_path / "loaded.jsonl"
        run_campaign_parallel(
            [ingested], FACTORIES, jobs=1, journal_path=left,
            cache_dir=tmp_path / "loaded-cache",
        )
        right = tmp_path / "source.jsonl"
        run_campaign_parallel(
            [FileSource(CHAMPSIM_FIXTURE)], FACTORIES, jobs=1,
            journal_path=right, cache_dir=tmp_path / "source-cache",
        )
        assert left.read_bytes() == right.read_bytes()


class TestSampledComposition:
    def test_sampled_simulation_of_ingested_trace(self):
        from repro.sim import simulate_sampled

        trace = load_any_trace(CHAMPSIM_FIXTURE)
        result = simulate_sampled(
            BranchTargetBuffer, trace, interval_records=20, max_regions=2
        )
        assert result.full_records == len(trace)
        assert result.replayed_records <= len(trace)
        assert result.estimated_mpki >= 0.0

    def test_sampled_source_runs_through_campaign(self, tmp_path):
        from repro.trace.source import SampledSource

        source = SampledSource(
            FileSource(CHAMPSIM_FIXTURE), interval_records=20, regions=2
        )
        campaign = run_campaign([source], {"BTB": BranchTargetBuffer})
        assert campaign.traces() == [source.name]
