"""Integration tests: whole predictors over whole generated traces.

These lock in the paper's qualitative results at test scale:
history-based predictors beat the BTB on polymorphic workloads, BLBP is
competitive with ITTAGE, and the RAS keeps returns out of indirect MPKI.
"""

import pytest

from repro.core import BLBP
from repro.predictors import (
    ITTAGE,
    BranchTargetBuffer,
    TargetCache,
    TwoBitBTB,
    VPCPredictor,
)
from repro.sim import run_campaign, simulate
from repro.workloads import SwitchCaseSpec, VirtualDispatchSpec


@pytest.fixture(scope="module")
def polymorphic_trace():
    return VirtualDispatchSpec(
        name="poly", seed=31, num_records=12000, num_sites=4, num_types=4,
        determinism=0.97, signal_noise=0.0, filler_conditionals=10,
    ).generate()


class TestPredictorOrdering:
    def test_history_predictors_beat_btb(self, polymorphic_trace):
        btb = simulate(BranchTargetBuffer(), polymorphic_trace).mpki()
        ittage = simulate(ITTAGE(), polymorphic_trace).mpki()
        blbp = simulate(BLBP(), polymorphic_trace).mpki()
        assert ittage < btb / 3
        assert blbp < btb / 3

    def test_blbp_competitive_with_ittage(self, polymorphic_trace):
        ittage = simulate(ITTAGE(), polymorphic_trace).mpki()
        blbp = simulate(BLBP(), polymorphic_trace).mpki()
        # "Competitive": within 2x either way at this small scale.
        assert blbp < 2 * ittage + 0.2

    def test_vpc_between_btb_and_ittage(self, polymorphic_trace):
        btb = simulate(BranchTargetBuffer(), polymorphic_trace).mpki()
        vpc = simulate(VPCPredictor(), polymorphic_trace).mpki()
        ittage = simulate(ITTAGE(), polymorphic_trace).mpki()
        assert vpc < btb
        assert vpc > ittage / 3  # VPC should not beat ITTAGE outright here

    def test_target_cache_beats_plain_btb(self, polymorphic_trace):
        btb = simulate(BranchTargetBuffer(), polymorphic_trace).mpki()
        cache = simulate(TargetCache(), polymorphic_trace).mpki()
        assert cache < btb

    def test_two_bit_btb_not_worse_than_plain_on_stable(self):
        trace = VirtualDispatchSpec(
            name="stable", seed=32, num_records=8000, num_types=2,
            determinism=0.7, self_loop=0.3, filler_conditionals=8,
        ).generate()
        plain = simulate(BranchTargetBuffer(), trace).mpki()
        two_bit = simulate(TwoBitBTB(), trace).mpki()
        assert two_bit <= plain * 1.3


class TestReturnHandling:
    def test_returns_excluded_from_indirect_mpki(self, polymorphic_trace):
        result = simulate(BranchTargetBuffer(), polymorphic_trace)
        assert result.return_branches > 0
        assert result.return_mispredictions <= result.return_branches * 0.01


class TestCampaignEndToEnd:
    def test_multi_trace_multi_predictor(self):
        traces = [
            VirtualDispatchSpec(
                name="vd-e2e", seed=33, num_records=4000, determinism=0.95,
            ).generate(),
            SwitchCaseSpec(
                name="sw-e2e", seed=34, num_records=4000, num_cases=6,
                determinism=0.95,
            ).generate(),
        ]
        campaign = run_campaign(
            traces, {"BTB": BranchTargetBuffer, "BLBP": BLBP, "ITTAGE": ITTAGE}
        )
        assert campaign.mean_mpki("BLBP") < campaign.mean_mpki("BTB")
        assert campaign.mean_mpki("ITTAGE") < campaign.mean_mpki("BTB")
        order = campaign.traces_sorted_by("BLBP")
        assert set(order) == {"vd-e2e", "sw-e2e"}


class TestWarmupEffect:
    def test_warmup_reduces_measured_mpki(self, polymorphic_trace):
        cold = simulate(BLBP(), polymorphic_trace).mpki()
        warm = simulate(
            BLBP(), polymorphic_trace,
            warmup_records=len(polymorphic_trace) // 2,
        ).mpki()
        assert warm <= cold
