"""End-to-end tests for BLBP with the hierarchical IBTB (§6)."""

import dataclasses

import pytest

from repro.core import BLBP
from repro.core.config import BLBPConfig
from repro.sim import simulate
from repro.workloads import SwitchCaseSpec, VirtualDispatchSpec


@pytest.fixture(scope="module")
def megamorphic_trace():
    return SwitchCaseSpec(
        name="mega-e2e", seed=81, num_records=12000, num_cases=24,
        determinism=0.93, filler_conditionals=8,
    ).generate()


class TestHierarchicalBLBP:
    def test_runs_end_to_end(self, megamorphic_trace):
        config = dataclasses.replace(BLBPConfig(), use_hierarchical_ibtb=True)
        result = simulate(BLBP(config), megamorphic_trace)
        assert result.indirect_branches > 0
        assert 0.0 <= result.misprediction_rate() <= 1.0

    def test_recovers_low_associativity_loss(self, megamorphic_trace):
        mono64 = simulate(BLBP(), megamorphic_trace).mpki()
        mono8 = simulate(
            BLBP(dataclasses.replace(BLBPConfig(), ibtb_ways=8, ibtb_sets=512)),
            megamorphic_trace,
        ).mpki()
        hier = simulate(
            BLBP(dataclasses.replace(BLBPConfig(), use_hierarchical_ibtb=True)),
            megamorphic_trace,
        ).mpki()
        assert mono8 > mono64
        # The hierarchy must close at least half of the 8-way gap.
        assert hier <= mono64 + 0.5 * (mono8 - mono64)

    def test_storage_budget_reports_hierarchy(self):
        config = dataclasses.replace(BLBPConfig(), use_hierarchical_ibtb=True)
        budget = BLBP(config).storage_budget()
        items = budget.as_dict()
        assert items["IBTB"] > 0

    def test_matches_monolithic_on_monomorphic_workload(self):
        trace = VirtualDispatchSpec(
            name="mono-e2e", seed=82, num_records=6000, num_types=1,
        ).generate()
        mono = simulate(BLBP(), trace).mpki()
        hier = simulate(
            BLBP(dataclasses.replace(BLBPConfig(), use_hierarchical_ibtb=True)),
            trace,
        ).mpki()
        assert hier == pytest.approx(mono, abs=0.05)
