"""Golden regression locks.

Every component is seeded, so exact misprediction counts at tiny scale
are stable across runs on the same codebase.  These tests lock them in:
any change to a predictor's algorithm, a generator's emission order, or
a hash function will show up here first.  If a change is *intentional*,
update the golden numbers — the point is that it cannot happen
silently.
"""

import pytest

from repro.core import BLBP, SNIP
from repro.predictors import (
    ITTAGE,
    BranchTargetBuffer,
    TargetCache,
    TwoBitBTB,
    VPCPredictor,
)
from repro.sim import simulate
from repro.workloads import VirtualDispatchSpec


@pytest.fixture(scope="module")
def golden_trace():
    return VirtualDispatchSpec(
        name="golden", seed=2026, num_records=6000, num_sites=3,
        num_types=4, determinism=0.95, signal_noise=0.01,
        filler_conditionals=8,
    ).generate()


class TestGoldenTrace:
    def test_trace_shape_locked(self, golden_trace):
        assert len(golden_trace) == 6006
        assert golden_trace.total_instructions() == 27862
        assert int(golden_trace.indirect_mask().sum()) == 429

    def test_trace_content_fingerprint(self, golden_trace):
        # Cheap content fingerprint: sums are sensitive to any change in
        # PC/target assignment or emission order.
        assert int(golden_trace.pcs.sum()) % (1 << 31) == 1571673164
        assert int(golden_trace.targets.sum()) % (1 << 31) == 1571716968


class TestGoldenMispredictions:
    @pytest.mark.parametrize(
        "factory,expected",
        [
            (BranchTargetBuffer, 368),
            (TwoBitBTB, 362),
            (TargetCache, 178),
            (VPCPredictor, 63),
            (ITTAGE, 30),
            (SNIP, 152),
            (BLBP, 63),
        ],
        ids=["BTB", "2bit", "TargetCache", "VPC", "ITTAGE", "SNIP", "BLBP"],
    )
    def test_exact_misprediction_counts(self, golden_trace, factory, expected):
        result = simulate(factory(), golden_trace)
        assert result.indirect_mispredictions == expected, (
            f"{factory.__name__}: got {result.indirect_mispredictions}, "
            f"golden {expected} — algorithm behaviour changed; update the "
            f"golden number only if the change is intentional"
        )
