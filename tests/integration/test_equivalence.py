"""Reference-vs-optimized BLBP equivalence over the full workload suite.

The acceptance gate for the hot-path rewrite (fused weight tensor,
batched incremental folds, IBTB lookup caching): replay every synthetic
suite workload through the optimized :class:`BLBP` and the per-bank
from-scratch :class:`ReferenceBLBP` in lockstep, asserting

* **per-branch identical predictions** — every indirect branch, every
  record, both implementations emit the same target (or the same
  "no prediction"); and
* **identical final misprediction counts** (hence identical MPKI).

Traces run at a small scale so the whole suite stays test-suite-fast;
the per-branch assertion makes size irrelevant for strictness — one
diverging fold or weight update trips it within a few branches.
"""

import json

import numpy as np
import pytest

from repro.core import BLBP, ReferenceBLBP
from repro.core.config import BLBPConfig
from repro.sim.engine import simulate
from repro.trace.record import BranchType
from repro.workloads.suite import suite88_specs

_COND = int(BranchType.CONDITIONAL)
_INDIRECT = (int(BranchType.INDIRECT_JUMP), int(BranchType.INDIRECT_CALL))

#: Every trace clamps to the 2000-record floor at this scale.
_SCALE = 0.01


def _suite_traces():
    return [(entry.name, entry.generate()) for entry in suite88_specs(_SCALE)]


_TRACES = None


def _traces():
    global _TRACES
    if _TRACES is None:
        _TRACES = _suite_traces()
    return _TRACES


def _lockstep(trace, config=None):
    """Drive both implementations record-by-record; return the shared
    misprediction count (asserting per-branch agreement throughout)."""
    optimized = BLBP(config() if config else None)
    reference = ReferenceBLBP(config() if config else None)
    mispredictions = 0
    indirect = 0
    for pc, branch_type, taken, target in zip(
        trace.pcs.tolist(),
        trace.types.tolist(),
        trace.takens.tolist(),
        trace.targets.tolist(),
    ):
        if branch_type == _COND:
            optimized.on_conditional(pc, taken)
            reference.on_conditional(pc, taken)
        elif branch_type in _INDIRECT:
            predicted = optimized.predict_target(pc)
            expected = reference.predict_target(pc)
            assert predicted == expected, (
                f"{trace.name}: divergence at indirect #{indirect} "
                f"(pc {pc:#x}): optimized {predicted!r} vs "
                f"reference {expected!r}"
            )
            indirect += 1
            if predicted != target:
                mispredictions += 1
            optimized.train(pc, target)
            reference.train(pc, target)
    return indirect, mispredictions


class TestFullSuiteEquivalence:
    def test_every_workload_predicts_identically(self):
        """All suite workloads, headline configuration, in lockstep."""
        checked = 0
        total_indirect = 0
        for name, trace in _traces():
            indirect, _ = _lockstep(trace)
            checked += 1
            total_indirect += indirect
        assert checked == len(suite88_specs(_SCALE))
        assert total_indirect > 0

    def test_hierarchical_config_subset(self):
        """A suite subset under the hierarchical-IBTB configuration."""
        config = lambda: BLBPConfig(use_hierarchical_ibtb=True)  # noqa: E731
        subset = _traces()[::11]
        assert len(subset) >= 5
        for name, trace in subset:
            _lockstep(trace, config=config)

    def test_suspended_blbp_tracks_reference_per_branch(self):
        """Suspend/restore lockstep over the whole suite: every 500
        records the live BLBP is snapshotted, serialized to JSON, and
        replaced by a freshly constructed instance restored from that
        snapshot — which must keep agreeing with the never-suspended
        reference on every subsequent indirect branch.  Traces are 2000
        records at this scale, so each workload survives 3 suspensions.
        """
        interval = 500
        for name, trace in _traces():
            optimized = BLBP()
            reference = ReferenceBLBP()
            indirect = 0
            for position, (pc, branch_type, taken, target) in enumerate(
                zip(
                    trace.pcs.tolist(),
                    trace.types.tolist(),
                    trace.takens.tolist(),
                    trace.targets.tolist(),
                )
            ):
                if position and position % interval == 0:
                    snapshot = json.loads(
                        json.dumps(optimized.state_dict())
                    )
                    optimized = BLBP()
                    optimized.load_state(snapshot)
                if branch_type == _COND:
                    optimized.on_conditional(pc, taken)
                    reference.on_conditional(pc, taken)
                elif branch_type in _INDIRECT:
                    predicted = optimized.predict_target(pc)
                    expected = reference.predict_target(pc)
                    assert predicted == expected, (
                        f"{name}: restored BLBP diverged at indirect "
                        f"#{indirect} (record {position}, pc {pc:#x}): "
                        f"{predicted!r} vs reference {expected!r}"
                    )
                    indirect += 1
                    optimized.train(pc, target)
                    reference.train(pc, target)

    def test_final_mpki_identical_via_engine(self):
        """End-to-end through the simulation engine: the reported
        misprediction totals (hence MPKI) agree on a suite sample."""
        for name, trace in _traces()[::9]:
            optimized = simulate(BLBP(), trace)
            reference = simulate(ReferenceBLBP(), trace)
            assert (
                optimized.indirect_mispredictions
                == reference.indirect_mispredictions
            ), f"{name}: MPKI diverges"
            assert optimized.indirect_branches == reference.indirect_branches
            assert optimized.mpki() == pytest.approx(reference.mpki())


class TestFusedUnfusedEquivalence:
    """Acceptance gate for campaign fusion: fused and unfused execution
    are provably interchangeable — same journal bytes, same per-cell
    MPKI, same final predictor state."""

    _FACTORY_NAMES = ["BTB", "2bit-BTB", "VPC", "ITTAGE", "BLBP"]

    def _factories(self):
        from repro.registry import INDIRECT_PREDICTORS

        return {
            name: INDIRECT_PREDICTORS[name]
            for name in self._FACTORY_NAMES
        }

    def test_serial_journals_byte_identical(self, tmp_path):
        from repro.exec.plan import plan_campaign
        from repro.exec.pool import execute_plan

        traces = [trace for _, trace in _traces()[:3]]
        plan = plan_campaign(
            traces, self._factories(), cache_dir=tmp_path / "cache"
        )
        fused_journal = tmp_path / "fused.jsonl"
        unfused_journal = tmp_path / "unfused.jsonl"
        fused = execute_plan(
            plan, jobs=1, journal_path=fused_journal, fuse=True
        )
        unfused = execute_plan(
            plan, jobs=1, journal_path=unfused_journal, fuse=False
        )
        assert fused_journal.read_bytes() == unfused_journal.read_bytes()
        for trace in traces:
            for name in self._FACTORY_NAMES:
                assert fused.mpki_of(trace.name, name) == pytest.approx(
                    unfused.mpki_of(trace.name, name)
                )

    def test_parallel_fused_matches_serial_unfused(self, tmp_path):
        from repro.exec.plan import plan_campaign
        from repro.exec.pool import execute_plan

        traces = [trace for _, trace in _traces()[:2]]
        plan = plan_campaign(
            traces, self._factories(), cache_dir=tmp_path / "cache"
        )
        fused = execute_plan(plan, jobs=2, fuse=True)
        unfused = execute_plan(plan, jobs=1, fuse=False)
        assert fused.results == unfused.results

    def test_final_predictor_state_hashes_equal(self):
        from repro.registry import make_indirect
        from repro.sim.engine import simulate_many

        for name, trace in _traces()[:3]:
            solo_predictors = [
                make_indirect(p) for p in self._FACTORY_NAMES
            ]
            solo_results = [
                simulate(predictor, trace)
                for predictor in solo_predictors
            ]
            fused_predictors = [
                make_indirect(p) for p in self._FACTORY_NAMES
            ]
            fused_results = simulate_many(fused_predictors, trace)
            for p, solo_p, fused_p, solo_r, fused_r in zip(
                self._FACTORY_NAMES, solo_predictors, fused_predictors,
                solo_results, fused_results,
            ):
                assert fused_p.state_hash() == solo_p.state_hash(), (
                    f"{name}/{p}: fused final state diverges"
                )
                assert (
                    fused_r.indirect_mispredictions
                    == solo_r.indirect_mispredictions
                ), f"{name}/{p}: MPKI diverges"
                assert fused_r.mpki() == pytest.approx(solo_r.mpki())


class TestColumnarEquivalence:
    """Acceptance gate for the columnar batch kernel: ``simulate(...,
    backend="columnar")`` is bit-identical to the scalar engine — same
    misprediction totals, same MPKI, same final predictor state hash —
    over the full 88-workload suite, on both replay paths (the compiled
    core and the numpy chunked fallback)."""

    def _assert_backends_agree(self, trace, config=None):
        scalar_predictor = BLBP(config() if config else None)
        columnar_predictor = BLBP(config() if config else None)
        scalar = simulate(scalar_predictor, trace)
        columnar = simulate(columnar_predictor, trace, backend="columnar")
        assert (
            columnar.indirect_mispredictions
            == scalar.indirect_mispredictions
        ), f"{trace.name}: misprediction totals diverge"
        assert columnar.indirect_branches == scalar.indirect_branches
        assert columnar.mpki() == pytest.approx(scalar.mpki())
        assert (
            columnar_predictor.state_hash() == scalar_predictor.state_hash()
        ), f"{trace.name}: final predictor state diverges"

    def test_full_suite_identical(self):
        """All 88 workloads, headline configuration, whatever replay
        path the environment resolves (compiled when a C compiler is
        available, numpy otherwise)."""
        checked = 0
        for name, trace in _traces():
            self._assert_backends_agree(trace)
            checked += 1
        assert checked == len(suite88_specs(_SCALE))

    def test_full_suite_identical_numpy_replay(self, monkeypatch):
        """The numpy chunked replay path must be just as exact: force
        it by disabling the compiled core for the whole sweep."""
        monkeypatch.setenv("REPRO_COLUMNAR_COMPILED", "0")
        from repro.sim import native

        assert native.load() is None  # env really does force numpy
        for name, trace in _traces():
            self._assert_backends_agree(trace)

    def test_config_variants_subset(self):
        """Feature toggles change the replay's inner loops; each
        variant must stay bit-identical on a suite subset."""
        variants = [
            lambda: BLBPConfig(use_selective_update=False),
            lambda: BLBPConfig(use_adaptive_threshold=False),
            lambda: BLBPConfig(use_transfer_function=False),
            lambda: BLBPConfig(use_local_history=False),
            lambda: BLBPConfig(use_intervals=False),
            lambda: BLBPConfig(use_hierarchical_ibtb=True),
        ]
        subset = _traces()[::11]
        assert len(subset) >= 5
        for config in variants:
            for name, trace in subset:
                self._assert_backends_agree(trace, config=config)

    def test_campaign_journals_byte_identical(self, tmp_path):
        """Backend choice must be invisible in campaign artifacts: the
        journal a columnar campaign writes is byte-for-byte the scalar
        one (the CI backend-equivalence step asserts the same via the
        CLI)."""
        from repro.exec.plan import plan_campaign
        from repro.exec.pool import execute_plan

        traces = [trace for _, trace in _traces()[:3]]
        factories = {"BLBP": BLBP}
        journals = {}
        for backend in ("scalar", "columnar"):
            plan = plan_campaign(
                traces, factories, cache_dir=tmp_path / backend,
                backend=backend,
            )
            journal = tmp_path / f"{backend}.jsonl"
            execute_plan(plan, jobs=1, journal_path=journal)
            journals[backend] = journal.read_bytes()
        assert journals["scalar"] == journals["columnar"]

    def test_serve_session_matches_columnar(self):
        """The serve layer's event-at-a-time session is pinned to
        ``simulate`` scalar; the columnar backend must land on exactly
        the same result and state, closing the loop serve → scalar →
        columnar."""
        from repro.serve.session import PredictorSession

        for name, trace in _traces()[:3]:
            session = PredictorSession("oracle", "BLBP")
            for pc, branch_type, taken, target, gap in zip(
                trace.pcs.tolist(),
                trace.types.tolist(),
                trace.takens.tolist(),
                trace.targets.tolist(),
                trace.gaps.tolist(),
            ):
                session.step(pc, branch_type, taken, target, gap)
            predictor = BLBP()
            columnar = simulate(predictor, trace, backend="columnar")
            assert (
                session.result().indirect_mispredictions
                == columnar.indirect_mispredictions
            ), f"{name}: serve session and columnar kernel diverge"
            assert session.state_hash() == predictor.state_hash()


class TestColumnarEquivalenceAllKernels:
    """The ITTAGE and VPC columnar kernels over the full 88-workload
    suite: the columnar backend must land on the identical result and
    final predictor state as scalar, on both replay paths."""

    _KEYS = ["ITTAGE", "VPC"]

    def _assert_agree(self, key, trace):
        from repro.registry import make_indirect

        scalar_predictor = make_indirect(key)
        columnar_predictor = make_indirect(key)
        scalar = simulate(scalar_predictor, trace)
        columnar = simulate(
            columnar_predictor, trace, backend="columnar"
        )
        assert columnar == scalar, f"{trace.name}/{key}: results diverge"
        assert (
            columnar_predictor.state_hash() == scalar_predictor.state_hash()
        ), f"{trace.name}/{key}: final predictor state diverges"

    def test_full_suite_identical(self):
        checked = 0
        for key in self._KEYS:
            for name, trace in _traces():
                self._assert_agree(key, trace)
                checked += 1
        assert checked == 2 * len(suite88_specs(_SCALE))

    def test_full_suite_identical_numpy_replay(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_COMPILED", "0")
        from repro.sim import native

        assert native.load() is None
        for key in self._KEYS:
            for name, trace in _traces():
                self._assert_agree(key, trace)

    def test_fused_columnar_campaign_matches_scalar(self, tmp_path):
        """A mixed-roster campaign under ``backend="columnar"`` (BLBP,
        ITTAGE, and VPC cells fuse into columnar groups) must write the
        byte-identical journal a scalar campaign does."""
        from repro.exec.plan import plan_campaign
        from repro.exec.pool import execute_plan
        from repro.registry import INDIRECT_PREDICTORS

        traces = [trace for _, trace in _traces()[:2]]
        factories = {
            name: INDIRECT_PREDICTORS[name]
            for name in ("BLBP", "ITTAGE", "VPC")
        }
        journals = {}
        for backend in ("scalar", "columnar"):
            plan = plan_campaign(
                traces, factories, cache_dir=tmp_path / backend,
                backend=backend,
            )
            journal = tmp_path / f"{backend}.jsonl"
            execute_plan(plan, jobs=1, journal_path=journal, fuse=True)
            journals[backend] = journal.read_bytes()
        assert journals["scalar"] == journals["columnar"]


class TestCampaignKillResumeEquivalence:
    def test_killed_campaign_resumes_to_identical_journal_and_mpki(
        self, tmp_path
    ):
        """An exec-pool campaign killed mid-cell and resumed must leave
        a journal byte-identical to an undisturbed run's and report the
        same MPKI for every cell."""
        from repro.exec.plan import checkpoint_name, plan_campaign
        from repro.exec.pool import execute_plan
        from repro.sim.checkpoint import save_checkpoint
        from repro.sim.engine import simulate as engine_simulate
        from repro.trace.stream import read_trace

        traces = [trace for _, trace in _traces()[:2]]
        factories = {"BLBP": BLBP}
        plan = plan_campaign(traces, factories, cache_dir=tmp_path / "cache")

        clean_journal = tmp_path / "clean.jsonl"
        clean = execute_plan(
            plan, jobs=1, journal_path=clean_journal, checkpoint_every=500
        )

        # "Kill" the first cell mid-trace: leave its real checkpoint.
        killed_journal = tmp_path / "killed.jsonl"
        checkpoint_dir = tmp_path / "killed.jsonl.ckpt"
        checkpoint_dir.mkdir()
        spec = plan.cells[0]
        grabbed = []
        engine_simulate(
            spec.factory.build(),
            read_trace(spec.trace_path),
            checkpoint_every=500,
            on_checkpoint=grabbed.append,
        )
        save_checkpoint(grabbed[0], checkpoint_dir / checkpoint_name(spec))

        resumed = execute_plan(
            plan, jobs=1, journal_path=killed_journal, checkpoint_every=500
        )

        assert killed_journal.read_bytes() == clean_journal.read_bytes()
        for trace in traces:
            assert resumed.mpki_of(trace.name, "BLBP") == pytest.approx(
                clean.mpki_of(trace.name, "BLBP")
            )
