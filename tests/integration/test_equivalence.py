"""Reference-vs-optimized BLBP equivalence over the full workload suite.

The acceptance gate for the hot-path rewrite (fused weight tensor,
batched incremental folds, IBTB lookup caching): replay every synthetic
suite workload through the optimized :class:`BLBP` and the per-bank
from-scratch :class:`ReferenceBLBP` in lockstep, asserting

* **per-branch identical predictions** — every indirect branch, every
  record, both implementations emit the same target (or the same
  "no prediction"); and
* **identical final misprediction counts** (hence identical MPKI).

Traces run at a small scale so the whole suite stays test-suite-fast;
the per-branch assertion makes size irrelevant for strictness — one
diverging fold or weight update trips it within a few branches.
"""

import numpy as np
import pytest

from repro.core import BLBP, ReferenceBLBP
from repro.core.config import BLBPConfig
from repro.sim.engine import simulate
from repro.trace.record import BranchType
from repro.workloads.suite import suite88_specs

_COND = int(BranchType.CONDITIONAL)
_INDIRECT = (int(BranchType.INDIRECT_JUMP), int(BranchType.INDIRECT_CALL))

#: Every trace clamps to the 2000-record floor at this scale.
_SCALE = 0.01


def _suite_traces():
    return [(entry.name, entry.generate()) for entry in suite88_specs(_SCALE)]


_TRACES = None


def _traces():
    global _TRACES
    if _TRACES is None:
        _TRACES = _suite_traces()
    return _TRACES


def _lockstep(trace, config=None):
    """Drive both implementations record-by-record; return the shared
    misprediction count (asserting per-branch agreement throughout)."""
    optimized = BLBP(config() if config else None)
    reference = ReferenceBLBP(config() if config else None)
    mispredictions = 0
    indirect = 0
    for pc, branch_type, taken, target in zip(
        trace.pcs.tolist(),
        trace.types.tolist(),
        trace.takens.tolist(),
        trace.targets.tolist(),
    ):
        if branch_type == _COND:
            optimized.on_conditional(pc, taken)
            reference.on_conditional(pc, taken)
        elif branch_type in _INDIRECT:
            predicted = optimized.predict_target(pc)
            expected = reference.predict_target(pc)
            assert predicted == expected, (
                f"{trace.name}: divergence at indirect #{indirect} "
                f"(pc {pc:#x}): optimized {predicted!r} vs "
                f"reference {expected!r}"
            )
            indirect += 1
            if predicted != target:
                mispredictions += 1
            optimized.train(pc, target)
            reference.train(pc, target)
    return indirect, mispredictions


class TestFullSuiteEquivalence:
    def test_every_workload_predicts_identically(self):
        """All suite workloads, headline configuration, in lockstep."""
        checked = 0
        total_indirect = 0
        for name, trace in _traces():
            indirect, _ = _lockstep(trace)
            checked += 1
            total_indirect += indirect
        assert checked == len(suite88_specs(_SCALE))
        assert total_indirect > 0

    def test_hierarchical_config_subset(self):
        """A suite subset under the hierarchical-IBTB configuration."""
        config = lambda: BLBPConfig(use_hierarchical_ibtb=True)  # noqa: E731
        subset = _traces()[::11]
        assert len(subset) >= 5
        for name, trace in subset:
            _lockstep(trace, config=config)

    def test_final_mpki_identical_via_engine(self):
        """End-to-end through the simulation engine: the reported
        misprediction totals (hence MPKI) agree on a suite sample."""
        for name, trace in _traces()[::9]:
            optimized = simulate(BLBP(), trace)
            reference = simulate(ReferenceBLBP(), trace)
            assert (
                optimized.indirect_mispredictions
                == reference.indirect_mispredictions
            ), f"{name}: MPKI diverges"
            assert optimized.indirect_branches == reference.indirect_branches
            assert optimized.mpki() == pytest.approx(reference.mpki())
