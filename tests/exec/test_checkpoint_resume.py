"""Mid-cell checkpointing in the execution engine.

Journal-level resume skips *finished* cells; these tests cover the new
layer below it: a cell that died mid-trace resumes from its last
snapshot, announced by a ``cell_resume`` event, and the finished
campaign (results, journal contents) is indistinguishable from one that
never died.
"""

import json
from pathlib import Path

import pytest

from repro.core import BLBP
from repro.exec.events import CELL_RESUME, CollectingSink
from repro.exec.plan import checkpoint_name, plan_campaign
from repro.exec.pool import execute_plan, run_cell
from repro.predictors import ITTAGE, BranchTargetBuffer
from repro.sim.checkpoint import load_checkpoint
from repro.sim.engine import simulate
from repro.trace.stream import read_trace
from repro.workloads.suite import suite88_specs

_SCALE = 0.02
_EVERY = 500


@pytest.fixture(scope="module")
def traces():
    return [entry.generate() for entry in suite88_specs(_SCALE)[:2]]


def _flat(campaign):
    return {
        (trace, predictor): (
            result.indirect_branches,
            result.indirect_mispredictions,
        )
        for trace, per_trace in campaign.results.items()
        for predictor, result in per_trace.items()
    }


def _plant_partial_checkpoint(spec, checkpoint_dir, stop_after=2):
    """Simulate a kill: leave a genuine mid-trace checkpoint on disk."""

    class _Killed(Exception):
        pass

    path = checkpoint_dir / checkpoint_name(spec)
    seen = []

    def sink(checkpoint):
        seen.append(checkpoint)
        if len(seen) >= stop_after:
            raise _Killed

    predictor = spec.factory.build()
    trace = read_trace(spec.trace_path)
    with pytest.raises(_Killed):
        simulate(
            predictor, trace,
            checkpoint_every=_EVERY,
            checkpoint_path=str(path),
            on_checkpoint=sink,
        )
    assert path.exists()
    return path


class TestCheckpointName:
    def test_sanitizes_and_disambiguates(self):
        from repro.exec.plan import CellSpec, FactoryRef

        spec = CellSpec(
            index=7,
            trace_name="suite/trace: weird name!",
            predictor_name="BLBP (tuned)",
            trace_path="x",
            factory=FactoryRef(obj=BranchTargetBuffer),
        )
        name = checkpoint_name(spec)
        assert name.startswith("0007-")
        assert name.endswith(".ckpt.json")
        assert "/" not in name and " " not in name and ":" not in name


class TestFullRunWithCheckpointing:
    def test_results_identical_and_no_leftover_files(self, traces, tmp_path):
        factories = {"BLBP": BLBP, "BTB": BranchTargetBuffer}
        plan = plan_campaign(traces, factories, cache_dir=tmp_path / "c")
        baseline = execute_plan(plan, jobs=1)

        journal = tmp_path / "run.jsonl"
        plan2 = plan_campaign(traces, factories, cache_dir=tmp_path / "c2")
        checkpointed = execute_plan(
            plan2, jobs=1, journal_path=journal, checkpoint_every=_EVERY
        )
        assert _flat(checkpointed) == _flat(baseline)
        leftovers = list(Path(str(journal) + ".ckpt").glob("*.ckpt.json"))
        assert leftovers == []

    def test_plan_object_not_mutated(self, traces, tmp_path):
        plan = plan_campaign(
            traces[:1], {"BTB": BranchTargetBuffer}, cache_dir=tmp_path / "c"
        )
        execute_plan(
            plan, jobs=1,
            journal_path=tmp_path / "j.jsonl",
            checkpoint_every=_EVERY,
        )
        assert all(cell.checkpoint_path is None for cell in plan.cells)


class TestMidCellResume:
    def test_killed_cell_resumes_and_matches_baseline(self, traces, tmp_path):
        factories = {"BLBP": BLBP, "ITTAGE": ITTAGE}
        plan = plan_campaign(traces, factories, cache_dir=tmp_path / "c")
        baseline = execute_plan(plan, jobs=1)

        journal = tmp_path / "resumed.jsonl"
        checkpoint_dir = Path(str(journal) + ".ckpt")
        checkpoint_dir.mkdir()
        planted = _plant_partial_checkpoint(plan.cells[0], checkpoint_dir)
        cursor = load_checkpoint(planted).cursor
        assert 0 < cursor < plan.cells[0].records

        sink = CollectingSink()
        resumed = execute_plan(
            plan, jobs=1, journal_path=journal,
            events=sink, checkpoint_every=_EVERY,
        )
        resumes = sink.of_kind(CELL_RESUME)
        assert [event.index for event in resumes] == [0]
        assert resumes[0].trace == plan.cells[0].trace_name
        assert _flat(resumed) == _flat(baseline)
        assert not planted.exists()

    def test_journal_tail_identical_after_mid_cell_resume(
        self, traces, tmp_path
    ):
        factories = {"BLBP": BLBP}
        plan = plan_campaign(traces, factories, cache_dir=tmp_path / "c")

        clean_journal = tmp_path / "clean.jsonl"
        execute_plan(
            plan, jobs=1, journal_path=clean_journal, checkpoint_every=_EVERY
        )

        killed_journal = tmp_path / "killed.jsonl"
        checkpoint_dir = Path(str(killed_journal) + ".ckpt")
        checkpoint_dir.mkdir()
        _plant_partial_checkpoint(plan.cells[0], checkpoint_dir)
        execute_plan(
            plan, jobs=1, journal_path=killed_journal, checkpoint_every=_EVERY
        )

        clean = [
            json.loads(line)
            for line in clean_journal.read_text().splitlines()
        ]
        resumed = [
            json.loads(line)
            for line in killed_journal.read_text().splitlines()
        ]
        assert resumed == clean

    def test_stale_checkpoint_for_other_trace_restarts_cleanly(
        self, traces, tmp_path
    ):
        factories = {"BTB": BranchTargetBuffer}
        plan = plan_campaign(traces[:1], factories, cache_dir=tmp_path / "c")
        baseline = execute_plan(plan, jobs=1)

        journal = tmp_path / "stale.jsonl"
        checkpoint_dir = Path(str(journal) + ".ckpt")
        checkpoint_dir.mkdir()
        # A checkpoint whose trace name does not match the cell's.
        other_plan = plan_campaign(
            traces[1:2], factories, cache_dir=tmp_path / "c2"
        )
        planted = _plant_partial_checkpoint(other_plan.cells[0], checkpoint_dir)
        target = checkpoint_dir / checkpoint_name(plan.cells[0])
        planted.rename(target)

        resumed = execute_plan(
            plan, jobs=1, journal_path=journal, checkpoint_every=_EVERY
        )
        assert _flat(resumed) == _flat(baseline)

    def test_corrupt_checkpoint_restarts_cleanly(self, traces, tmp_path):
        factories = {"BTB": BranchTargetBuffer}
        plan = plan_campaign(traces[:1], factories, cache_dir=tmp_path / "c")
        baseline = execute_plan(plan, jobs=1)

        journal = tmp_path / "corrupt.jsonl"
        checkpoint_dir = Path(str(journal) + ".ckpt")
        checkpoint_dir.mkdir()
        bad = checkpoint_dir / checkpoint_name(plan.cells[0])
        bad.write_text("{ definitely not a checkpoint")

        resumed = execute_plan(
            plan, jobs=1, journal_path=journal, checkpoint_every=_EVERY
        )
        assert _flat(resumed) == _flat(baseline)

    def test_run_cell_discards_checkpoint_on_success(self, traces, tmp_path):
        import dataclasses

        plan = plan_campaign(
            traces[:1], {"BTB": BranchTargetBuffer}, cache_dir=tmp_path / "c"
        )
        path = tmp_path / "one.ckpt.json"
        spec = dataclasses.replace(
            plan.cells[0], checkpoint_every=_EVERY, checkpoint_path=str(path)
        )
        run_cell(spec)
        assert not path.exists()
