"""Tests for execution events and sinks."""

import io

from repro.exec.events import (
    CAMPAIGN_END,
    CELL_FINISH,
    CELL_SKIPPED,
    CollectingSink,
    ExecEvent,
    LogSink,
    ProgressLineSink,
    broadcast,
    null_sink,
    safe_emit,
)


def _finish(completed=1, total=4):
    return ExecEvent(
        kind=CELL_FINISH,
        trace="LONG-MOBILE-3",
        predictor="BLBP",
        index=completed - 1,
        total=total,
        completed=completed,
        duration=0.5,
        records=30_000,
        records_per_sec=60_000.0,
        eta_seconds=12.0,
        mpki=1.25,
    )


class TestSinks:
    def test_null_sink_accepts_everything(self):
        null_sink(_finish())

    def test_collecting_sink_records_in_order(self):
        sink = CollectingSink()
        sink(_finish(1))
        sink(ExecEvent(kind=CAMPAIGN_END, total=4, completed=4))
        assert sink.kinds() == [CELL_FINISH, CAMPAIGN_END]
        assert len(sink.of_kind(CELL_FINISH)) == 1

    def test_broadcast_reaches_all_sinks(self):
        first, second = CollectingSink(), CollectingSink()
        broadcast(first, second)(_finish())
        assert first.kinds() == second.kinds() == [CELL_FINISH]

    def test_safe_emit_swallows_sink_errors(self):
        def angry_sink(event):
            raise RuntimeError("observability must not kill the run")

        safe_emit(angry_sink, _finish())  # must not raise
        safe_emit(None, _finish())

    def test_broadcast_isolates_failing_sink(self):
        healthy = CollectingSink()

        def angry_sink(event):
            raise RuntimeError("boom")

        broadcast(angry_sink, healthy)(_finish())
        assert healthy.kinds() == [CELL_FINISH]


class TestLogSink:
    def test_line_carries_structured_fields(self):
        stream = io.StringIO()
        LogSink(stream)(_finish(completed=2))
        line = stream.getvalue()
        assert "exec cell_finish" in line
        assert "trace=LONG-MOBILE-3" in line
        assert "predictor=BLBP" in line
        assert "cell=2/4" in line
        assert "records_per_sec=60,000" in line
        assert "eta=12.0s" in line


class TestProgressLineSink:
    def test_renders_progress_and_final_newline(self):
        stream = io.StringIO()
        sink = ProgressLineSink(stream)
        sink(_finish(1))
        sink(_finish(2))
        sink(ExecEvent(kind=CAMPAIGN_END, total=4, completed=4,
                       duration=3.2))
        output = stream.getvalue()
        assert "simulate 1/4 [BLBP/LONG-MOBILE-3]" in output
        assert "60k rec/s" in output
        assert "simulate done: 4/4 cells" in output
        assert output.endswith("\n")

    def test_skipped_cells_marked_resumed(self):
        stream = io.StringIO()
        ProgressLineSink(stream)(
            ExecEvent(kind=CELL_SKIPPED, trace="t", predictor="BTB",
                      total=4, completed=1)
        )
        assert "(resumed)" in stream.getvalue()
