"""Tests for fused campaign execution: grouping, spills, timeouts, fallback."""

import functools
import time

import pytest

from repro.exec.events import CELL_FINISH, CELL_START, FALLBACK, CollectingSink
from repro.exec.journal import load_journal
from repro.exec.plan import (
    FusedCellSpec,
    PlanError,
    fuse_cells,
    plan_campaign,
    spill_trace,
)
from repro.exec.pool import CellTimeout, execute_plan, run_cell, run_fused_cell
from repro.predictors import BranchTargetBuffer, TwoBitBTB
from repro.sim.runner import run_campaign


def _cells(tiny_trace, vdispatch_trace, tmp_path, factories=None):
    factories = factories or {
        "BTB": BranchTargetBuffer,
        "2bit": TwoBitBTB,
    }
    plan = plan_campaign(
        [tiny_trace, vdispatch_trace], factories, cache_dir=tmp_path,
    )
    return plan


def _slow_factory(delay):
    time.sleep(delay)
    return BranchTargetBuffer()


def _flaky_factory(marker_path, failures):
    """Fail the first ``failures`` constructions (file-backed counter)."""
    from pathlib import Path

    marker = Path(marker_path)
    attempts = len(marker.read_text().splitlines()) if marker.exists() else 0
    with open(marker, "a") as handle:
        handle.write("attempt\n")
    if attempts < failures:
        raise RuntimeError(f"transient failure {attempts + 1}")
    return BranchTargetBuffer()


class TestFuseCells:
    def test_groups_adjacent_same_trace_cells(
        self, tiny_trace, vdispatch_trace, tmp_path
    ):
        plan = _cells(tiny_trace, vdispatch_trace, tmp_path)
        units = fuse_cells(plan.cells)
        assert len(units) == 2
        for unit in units:
            assert isinstance(unit, FusedCellSpec)
            assert unit.size == 2
        # Member order is plan order — journal byte-identity depends on it.
        assert [c.index for unit in units for c in unit.cells] == [0, 1, 2, 3]

    def test_single_cell_stays_bare(self, tiny_trace, tmp_path):
        plan = plan_campaign(
            [tiny_trace], {"BTB": BranchTargetBuffer}, cache_dir=tmp_path
        )
        units = fuse_cells(plan.cells)
        assert units == [plan.cells[0]]

    def test_veto_breaks_the_run(self, tiny_trace, tmp_path):
        plan = plan_campaign(
            [tiny_trace],
            {"a": BranchTargetBuffer, "b": TwoBitBTB,
             "c": BranchTargetBuffer},
            cache_dir=tmp_path,
        )
        vetoed = plan.cells[1]
        units = fuse_cells(plan.cells, fusable=lambda c: c is not vetoed)
        # The veto splits the run: nothing left adjacent to fuse.
        assert units == plan.cells

    def test_incompatible_cells_do_not_fuse(self, tiny_trace, tmp_path):
        import dataclasses

        plan = plan_campaign(
            [tiny_trace],
            {"a": BranchTargetBuffer, "b": TwoBitBTB},
            cache_dir=tmp_path,
        )
        cells = [
            plan.cells[0],
            dataclasses.replace(plan.cells[1], warmup_records=99),
        ]
        assert fuse_cells(cells) == cells

    def test_fused_spec_validates_members(self, tiny_trace, tmp_path):
        import dataclasses

        plan = plan_campaign(
            [tiny_trace],
            {"a": BranchTargetBuffer, "b": TwoBitBTB},
            cache_dir=tmp_path,
        )
        with pytest.raises(PlanError):
            FusedCellSpec(cells=(plan.cells[0],))
        with pytest.raises(PlanError):
            FusedCellSpec(cells=(
                plan.cells[0],
                dataclasses.replace(plan.cells[1], ras_depth=7),
            ))


class TestSpillReuse:
    def test_replan_rewrites_no_spills(self, tiny_trace, vdispatch_trace,
                                       tmp_path):
        """Resuming into the same cache_dir performs zero spill writes."""
        factories = {"BTB": BranchTargetBuffer}
        plan_campaign([tiny_trace, vdispatch_trace], factories,
                      cache_dir=tmp_path)
        spills = sorted(tmp_path.glob("*.trace"))
        assert spills
        stamps = [path.stat().st_mtime_ns for path in spills]
        plan_campaign([tiny_trace, vdispatch_trace], factories,
                      cache_dir=tmp_path)
        assert [p.stat().st_mtime_ns for p in spills] == stamps

    def test_spill_trace_reports_writes(self, tiny_trace, vdispatch_trace,
                                        tmp_path):
        path = tmp_path / "t.trace"
        assert spill_trace(tiny_trace, path) is True
        assert spill_trace(tiny_trace, path) is False
        assert spill_trace(vdispatch_trace, path) is True  # content changed


class TestFusedTimeout:
    def test_deadline_scales_with_group_size(self, tiny_trace, tmp_path):
        """A group of N is not spuriously killed at a single-cell budget."""
        delay = 0.3
        budget = 0.4  # one slow cell fits; three do not, unless scaled
        factories = {
            name: functools.partial(_slow_factory, delay)
            for name in ("s1", "s2", "s3")
        }
        plan = plan_campaign([tiny_trace], factories, cache_dir=tmp_path)
        [group] = fuse_cells(plan.cells)
        assert group.size == 3
        outcomes = run_fused_cell(group, timeout=budget)
        assert [index for index, _, _ in outcomes] == [0, 1, 2]

    def test_single_cell_budget_still_enforced(self, tiny_trace, tmp_path):
        plan = plan_campaign(
            [tiny_trace],
            {"slow": functools.partial(_slow_factory, 5.0)},
            cache_dir=tmp_path,
        )
        with pytest.raises(CellTimeout):
            run_cell(plan.cells[0], timeout=0.2)


class TestFusedExecution:
    def test_run_fused_cell_matches_run_cell(self, tiny_trace,
                                             vdispatch_trace, tmp_path):
        plan = _cells(tiny_trace, vdispatch_trace, tmp_path)
        [g1, g2] = fuse_cells(plan.cells)
        fused = {
            index: result
            for group in (g1, g2)
            for index, result, _ in run_fused_cell(group)
        }
        for cell in plan.cells:
            index, solo, _ = run_cell(cell)
            assert fused[index] == solo

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_execute_plan_fused_equals_unfused(
        self, tiny_trace, vdispatch_trace, tmp_path, jobs
    ):
        traces = [tiny_trace, vdispatch_trace]
        factories = {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB}
        plan = plan_campaign(traces, factories, cache_dir=tmp_path)
        fused = execute_plan(plan, jobs=jobs, fuse=True)
        unfused = execute_plan(plan, jobs=jobs, fuse=False)
        serial = run_campaign(traces, factories)
        assert fused.results == unfused.results == serial.results

    def test_events_carry_group_size(self, tiny_trace, vdispatch_trace,
                                     tmp_path):
        plan = _cells(tiny_trace, vdispatch_trace, tmp_path)
        sink = CollectingSink()
        execute_plan(plan, jobs=1, events=sink, fuse=True)
        starts = [e for e in sink.events if e.kind == CELL_START]
        assert len(starts) == 4
        assert all(event.group == 2 for event in starts)
        sink_solo = CollectingSink()
        execute_plan(plan, jobs=1, events=sink_solo, fuse=False)
        solo_starts = [e for e in sink_solo.events if e.kind == CELL_START]
        assert all(event.group == 0 for event in solo_starts)

    def test_fused_group_falls_back_to_solo_members(self, tiny_trace,
                                                    tmp_path):
        # The flaky member fails both fused attempts; the group then
        # degrades to solo cells, where the third construction succeeds.
        marker = tmp_path / "attempts"
        factories = {
            "ok": BranchTargetBuffer,
            "flaky": functools.partial(_flaky_factory, str(marker), 2),
        }
        plan = plan_campaign([tiny_trace], factories, cache_dir=tmp_path)
        sink = CollectingSink()
        campaign = execute_plan(plan, jobs=1, events=sink, retries=1,
                                backoff=0.01, fuse=True)
        assert set(campaign.results["tiny"]) == {"ok", "flaky"}
        fallbacks = [e for e in sink.events if e.kind == FALLBACK]
        assert len(fallbacks) == 1
        finishes = [e for e in sink.events if e.kind == CELL_FINISH]
        assert len(finishes) == 2

    def test_fused_checkpointing_writes_per_cell_journal(
        self, vdispatch_trace, tmp_path
    ):
        factories = {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB}
        plan = plan_campaign([vdispatch_trace], factories,
                             cache_dir=tmp_path)
        journal_path = tmp_path / "campaign.jsonl"
        campaign = execute_plan(
            plan, jobs=1, journal_path=journal_path,
            checkpoint_every=1000, fuse=True,
        )
        entries = load_journal(journal_path)
        assert len(entries) == 2  # one journal entry per member cell
        rerun = execute_plan(
            plan, jobs=1, journal_path=journal_path,
            checkpoint_every=1000, fuse=True,
        )
        assert rerun.results == campaign.results
