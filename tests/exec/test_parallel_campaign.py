"""End-to-end tests for ``run_campaign_parallel``.

The load-bearing guarantee: a parallel campaign is cell-for-cell
*identical* to a serial one — same cells, same MPKI, same every-field
results — regardless of worker count, completion order, or resume
state.  The property test drives that across generated workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import (
    CollectingSink,
    resolve_jobs,
    run_campaign_parallel,
)
from repro.predictors import ITTAGE, BranchTargetBuffer, TwoBitBTB
from repro.sim.runner import run_campaign
from repro.workloads import SwitchCaseSpec, VirtualDispatchSpec


def _campaigns_identical(serial, parallel):
    assert parallel.traces() == serial.traces()
    assert parallel.predictors() == serial.predictors()
    for trace in serial.traces():
        for predictor in serial.predictors():
            assert (
                parallel.results[trace][predictor]
                == serial.results[trace][predictor]
            ), (trace, predictor)


class TestParallelSerialEquivalence:
    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        records=st.integers(min_value=200, max_value=1500),
        determinism=st.floats(min_value=0.7, max_value=0.99),
        jobs=st.integers(min_value=2, max_value=4),
    )
    def test_parallel_equals_serial_property(self, seed, records,
                                             determinism, jobs):
        traces = [
            VirtualDispatchSpec(
                name="vd-prop", seed=seed, num_records=records,
                num_types=4, num_sites=2, determinism=determinism,
            ).generate(),
            SwitchCaseSpec(
                name="sw-prop", seed=seed + 1, num_records=records,
                num_cases=8, determinism=determinism,
            ).generate(),
        ]
        factories = {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB}
        serial = run_campaign(traces, factories)
        parallel = run_campaign_parallel(traces, factories, jobs=jobs)
        _campaigns_identical(serial, parallel)

    def test_identical_on_stateful_predictor(self, vdispatch_trace,
                                             interpreter_trace):
        traces = [vdispatch_trace, interpreter_trace]
        factories = {"ITTAGE": ITTAGE, "BTB": BranchTargetBuffer}
        serial = run_campaign(traces, factories)
        parallel = run_campaign_parallel(traces, factories, jobs=2)
        _campaigns_identical(serial, parallel)

    def test_identical_with_warmup_and_ras_depth(self, vdispatch_trace):
        factories = {"BTB": BranchTargetBuffer}
        serial = run_campaign([vdispatch_trace], factories,
                              ras_depth=8, warmup_records=100)
        parallel = run_campaign_parallel(
            [vdispatch_trace], factories, jobs=2,
            ras_depth=8, warmup_records=100,
        )
        _campaigns_identical(serial, parallel)


class TestProgressBridging:
    def test_legacy_progress_callback(self, tiny_trace):
        seen = []
        run_campaign_parallel(
            [tiny_trace], {"BTB": BranchTargetBuffer}, jobs=1,
            progress=lambda trace, name, mpki: seen.append((trace, name)),
        )
        assert seen == [("tiny", "BTB")]

    def test_extended_progress_callback(self, tiny_trace, vdispatch_trace):
        seen = []

        def progress(trace, name, mpki, index, total):
            seen.append((index, total))

        run_campaign_parallel(
            [tiny_trace, vdispatch_trace], {"BTB": BranchTargetBuffer},
            jobs=2, progress=progress,
        )
        assert sorted(index for index, _ in seen) == [0, 1]
        assert all(total == 2 for _, total in seen)

    def test_progress_combines_with_events(self, tiny_trace):
        seen = []
        sink = CollectingSink()
        run_campaign_parallel(
            [tiny_trace], {"BTB": BranchTargetBuffer}, jobs=1,
            progress=lambda *args: seen.append(args), events=sink,
        )
        assert len(seen) == 1
        assert "cell_finish" in sink.kinds()


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_clamped_to_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)


class TestCacheDir:
    def test_explicit_cache_dir_keeps_spills(self, tiny_trace, tmp_path):
        spill = tmp_path / "spill"
        run_campaign_parallel(
            [tiny_trace], {"BTB": BranchTargetBuffer}, jobs=1,
            cache_dir=spill,
        )
        assert list(spill.glob("*.trace"))

    def test_resume_via_journal_path(self, tiny_trace, vdispatch_trace,
                                     tmp_path):
        journal_path = tmp_path / "campaign.jsonl"
        factories = {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB}
        traces = [tiny_trace, vdispatch_trace]
        first = run_campaign_parallel(
            traces, factories, jobs=1, journal_path=journal_path,
        )
        sink = CollectingSink()
        resumed = run_campaign_parallel(
            traces, factories, jobs=2, journal_path=journal_path,
            events=sink,
        )
        assert len(sink.of_kind("cell_skipped")) == 4
        assert sink.of_kind("cell_finish") == []
        _campaigns_identical(first, resumed)
