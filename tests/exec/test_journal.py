"""Tests for the JSONL campaign journal."""

import json

import pytest

from repro.exec.journal import (
    JOURNAL_VERSION,
    Journal,
    JournalError,
    load_journal,
    result_from_json,
    result_to_json,
)
from repro.sim.metrics import SimulationResult


def _result(trace="t", predictor="p", misses=3):
    return SimulationResult(
        trace_name=trace,
        predictor_name=predictor,
        total_instructions=10_000,
        indirect_branches=100,
        indirect_mispredictions=misses,
        return_branches=7,
        return_mispredictions=1,
        conditional_branches=450,
        mispredictions_by_pc={0x1000: 2, 0x2040: 1},
    )


class TestSerialization:
    def test_round_trip_preserves_every_field(self):
        original = _result()
        rebuilt = result_from_json(result_to_json(original))
        assert rebuilt == original

    def test_pc_keys_restored_as_ints(self):
        payload = json.loads(json.dumps(result_to_json(_result())))
        rebuilt = result_from_json(payload)
        assert rebuilt.mispredictions_by_pc == {0x1000: 2, 0x2040: 1}

    def test_version_mismatch_rejected(self):
        payload = result_to_json(_result())
        payload["v"] = JOURNAL_VERSION + 1
        with pytest.raises(JournalError, match="version"):
            result_from_json(payload)


class TestJournalFile:
    def test_missing_file_is_empty_journal(self, tmp_path):
        assert load_journal(tmp_path / "absent.jsonl") == {}

    def test_append_then_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(_result("a", "BTB", 1))
            journal.append(_result("b", "BTB", 2))
        loaded = load_journal(path)
        assert set(loaded) == {("a", "BTB"), ("b", "BTB")}
        assert loaded[("b", "BTB")].indirect_mispredictions == 2

    def test_append_survives_reopen(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(_result("a", "BTB"))
        with Journal(path) as journal:
            journal.append(_result("b", "BTB"))
        assert len(load_journal(path)) == 2

    def test_truncated_final_line_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(_result("a", "BTB"))
            journal.append(_result("b", "BTB"))
        torn = path.read_text()[:-20]  # SIGKILL mid-write
        path.write_text(torn)
        loaded = load_journal(path)
        assert set(loaded) == {("a", "BTB")}

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(_result("a", "BTB"))
        path.write_text("garbage{{\n" + path.read_text())
        with pytest.raises(JournalError, match="corrupt"):
            load_journal(path)

    def test_later_entry_wins_for_same_cell(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(_result("a", "BTB", misses=1))
            journal.append(_result("a", "BTB", misses=9))
        assert load_journal(path)[("a", "BTB")].indirect_mispredictions == 9

    def test_closed_journal_refuses_append(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.close()
        with pytest.raises(JournalError):
            journal.append(_result())
