"""Tests for cell execution: retries, timeouts, fallback, journaling."""

import functools
import time

import pytest

from repro.exec.events import CollectingSink
from repro.exec.journal import Journal, load_journal
from repro.exec.plan import plan_campaign
from repro.exec.pool import CellFailedError, CellTimeout, execute_plan, run_cell
from repro.predictors import BranchTargetBuffer, TwoBitBTB
from repro.sim.metrics import SimulationResult
from repro.sim.runner import run_campaign


def _flaky_factory(marker_path, failures):
    """Fail the first ``failures`` constructions, then succeed.

    Attempt state lives in a file so it survives crossing process
    boundaries; ``functools.partial`` over this module-level function
    stays picklable.
    """
    from pathlib import Path

    marker = Path(marker_path)
    attempts = len(marker.read_text().splitlines()) if marker.exists() else 0
    with open(marker, "a") as handle:
        handle.write("attempt\n")
    if attempts < failures:
        raise RuntimeError(f"transient failure {attempts + 1}")
    return BranchTargetBuffer()


def _slow_factory(delay):
    time.sleep(delay)
    return BranchTargetBuffer()


class TestRunCell:
    def test_runs_one_cell_to_a_result(self, tiny_trace, tmp_path):
        plan = plan_campaign(
            [tiny_trace], {"BTB": BranchTargetBuffer}, cache_dir=tmp_path,
        )
        index, result, duration = run_cell(plan.cells[0])
        assert index == 0
        assert result.trace_name == "tiny"
        assert result.predictor_name == "BTB"
        assert duration >= 0

    def test_timeout_raises_cell_timeout(self, tiny_trace, tmp_path):
        plan = plan_campaign(
            [tiny_trace],
            {"slow": functools.partial(_slow_factory, 5.0)},
            cache_dir=tmp_path,
        )
        with pytest.raises(CellTimeout):
            run_cell(plan.cells[0], timeout=0.2)

    def test_nested_deadline_rearms_outer_timer(self):
        """An inner deadline finishing early must not disarm an outer one.

        ``_deadline`` used to restore only the SIGALRM *handler*; the
        displaced itimer stayed cancelled, so an enclosing timeout never
        fired and a hung caller ran forever.  The fix re-arms the outer
        timer with its remaining time on exit.
        """
        import signal

        from repro.exec.pool import _deadline

        fired = []

        def _outer(signum, frame):
            fired.append(time.monotonic())

        previous_handler = signal.signal(signal.SIGALRM, _outer)
        try:
            signal.setitimer(signal.ITIMER_REAL, 0.6)
            with _deadline(0.1):
                pass  # finishes well before its own deadline
            remaining, _ = signal.getitimer(signal.ITIMER_REAL)
            assert remaining > 0, "outer itimer was silently cancelled"
            assert remaining <= 0.6
            deadline = time.monotonic() + 5.0
            while not fired and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fired, "outer deadline never fired"
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)

    def test_nested_deadline_inner_still_fires(self):
        """Re-arming the outer timer must not break the inner deadline."""
        import signal

        from repro.exec.pool import _deadline

        def _outer(signum, frame):  # pragma: no cover - must not fire
            raise AssertionError("outer timer fired inside inner window")

        previous_handler = signal.signal(signal.SIGALRM, _outer)
        try:
            signal.setitimer(signal.ITIMER_REAL, 30.0)
            with pytest.raises(CellTimeout):
                with _deadline(0.1):
                    time.sleep(5.0)
            remaining, _ = signal.getitimer(signal.ITIMER_REAL)
            assert remaining > 0
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)


class TestExecutePlanSerial:
    def test_matches_serial_runner(self, tiny_trace, vdispatch_trace,
                                   tmp_path):
        traces = [tiny_trace, vdispatch_trace]
        factories = {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB}
        plan = plan_campaign(traces, factories, cache_dir=tmp_path)
        campaign = execute_plan(plan, jobs=1)
        serial = run_campaign(traces, factories)
        assert campaign.results == serial.results

    def test_retries_then_succeeds(self, tiny_trace, tmp_path):
        marker = tmp_path / "attempts"
        factories = {
            "flaky": functools.partial(_flaky_factory, str(marker), 2)
        }
        plan = plan_campaign([tiny_trace], factories, cache_dir=tmp_path)
        sink = CollectingSink()
        campaign = execute_plan(plan, jobs=1, events=sink, retries=2,
                                backoff=0.01)
        assert campaign.results["tiny"]["flaky"].indirect_branches >= 0
        assert len(sink.of_kind("cell_retry")) == 2
        assert sink.of_kind("campaign_end")[0].retries == 2

    def test_retry_budget_exhaustion_raises(self, tiny_trace, tmp_path):
        marker = tmp_path / "attempts"
        factories = {
            "doomed": functools.partial(_flaky_factory, str(marker), 99)
        }
        plan = plan_campaign([tiny_trace], factories, cache_dir=tmp_path)
        sink = CollectingSink()
        with pytest.raises(CellFailedError, match="doomed"):
            execute_plan(plan, jobs=1, events=sink, retries=1, backoff=0.01)
        assert len(sink.of_kind("cell_failed")) == 1

    def test_journal_written_per_cell(self, tiny_trace, vdispatch_trace,
                                      tmp_path):
        plan = plan_campaign(
            [tiny_trace, vdispatch_trace], {"BTB": BranchTargetBuffer},
            cache_dir=tmp_path,
        )
        journal_path = tmp_path / "journal.jsonl"
        campaign = execute_plan(plan, jobs=1, journal_path=journal_path)
        journaled = load_journal(journal_path)
        assert set(journaled) == {("tiny", "BTB"), ("vd-test", "BTB")}
        assert journaled[("tiny", "BTB")] == campaign.results["tiny"]["BTB"]


class TestExecutePlanParallel:
    def test_matches_serial_runner(self, tiny_trace, vdispatch_trace,
                                   switchcase_trace, tmp_path):
        traces = [tiny_trace, vdispatch_trace, switchcase_trace]
        factories = {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB}
        plan = plan_campaign(traces, factories, cache_dir=tmp_path)
        campaign = execute_plan(plan, jobs=2)
        serial = run_campaign(traces, factories)
        assert campaign.results == serial.results

    def test_unpicklable_factory_falls_back_to_serial(self, tiny_trace,
                                                      tmp_path):
        entries = 64

        def closure_factory():
            return BranchTargetBuffer(num_entries=entries)

        plan = plan_campaign(
            [tiny_trace], {"closure": closure_factory}, cache_dir=tmp_path,
        )
        sink = CollectingSink()
        campaign = execute_plan(plan, jobs=2, events=sink)
        fallback = sink.of_kind("fallback")
        assert fallback and "picklable" in fallback[0].message
        assert ("tiny", "closure") in [
            (r.trace_name, r.predictor_name)
            for per in campaign.results.values() for r in per.values()
        ]

    def test_retry_in_workers(self, tiny_trace, tmp_path):
        marker = tmp_path / "attempts"
        factories = {
            "flaky": functools.partial(_flaky_factory, str(marker), 1)
        }
        plan = plan_campaign([tiny_trace], factories, cache_dir=tmp_path)
        sink = CollectingSink()
        campaign = execute_plan(plan, jobs=2, events=sink, retries=2,
                                backoff=0.01)
        assert "tiny" in campaign.results
        assert len(sink.of_kind("cell_retry")) == 1


class TestResume:
    def test_journaled_cells_are_skipped(self, tiny_trace, vdispatch_trace,
                                         tmp_path):
        traces = [tiny_trace, vdispatch_trace]
        factories = {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB}
        plan = plan_campaign(traces, factories, cache_dir=tmp_path)
        journal_path = tmp_path / "journal.jsonl"

        # Pre-seed the journal with two cells carrying sentinel values a
        # real simulation could never produce; if the executor
        # re-simulated them, the sentinels would be overwritten.
        sentinel_a = SimulationResult("tiny", "BTB", 123, 45, 44)
        sentinel_b = SimulationResult("vd-test", "2bit", 456, 78, 77)
        with Journal(journal_path) as journal:
            journal.append(sentinel_a)
            journal.append(sentinel_b)

        sink = CollectingSink()
        campaign = execute_plan(plan, jobs=1, journal_path=journal_path,
                                events=sink)
        assert campaign.results["tiny"]["BTB"] == sentinel_a
        assert campaign.results["vd-test"]["2bit"] == sentinel_b
        assert len(sink.of_kind("cell_skipped")) == 2
        assert len(sink.of_kind("cell_finish")) == 2
        # The journal now covers the whole campaign for the next resume.
        assert len(load_journal(journal_path)) == 4

    def test_fully_journaled_campaign_runs_nothing(self, tiny_trace,
                                                   tmp_path):
        factories = {"BTB": BranchTargetBuffer}
        plan = plan_campaign([tiny_trace], factories, cache_dir=tmp_path)
        journal_path = tmp_path / "journal.jsonl"
        execute_plan(plan, jobs=1, journal_path=journal_path)

        sink = CollectingSink()
        resumed = execute_plan(plan, jobs=1, journal_path=journal_path,
                               events=sink)
        assert sink.of_kind("cell_finish") == []
        assert len(sink.of_kind("cell_skipped")) == 1
        assert resumed.results["tiny"]["BTB"].trace_name == "tiny"

    def test_journal_from_other_campaign_ignored(self, tiny_trace,
                                                 tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        with Journal(journal_path) as journal:
            journal.append(SimulationResult("elsewhere", "BTB", 1, 1, 1))
        plan = plan_campaign(
            [tiny_trace], {"BTB": BranchTargetBuffer}, cache_dir=tmp_path,
        )
        sink = CollectingSink()
        campaign = execute_plan(plan, jobs=1, journal_path=journal_path,
                                events=sink)
        assert sink.of_kind("cell_skipped") == []
        assert "elsewhere" not in campaign.results
