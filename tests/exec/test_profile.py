"""Profiling plumbing through the campaign execution engine.

``run_campaign_parallel(profile=True)`` must carry each cell's hot-path
counters end-to-end: onto the cell's ``SimulationResult.profile``, into
the ``cell_finish`` event stream, and through the JSONL journal's
round-trip.
"""

from repro.exec import (
    CELL_FINISH,
    CollectingSink,
    result_from_json,
    result_to_json,
    run_campaign_parallel,
)
from repro.predictors import BranchTargetBuffer
from repro.sim.metrics import SimulationResult
from repro.workloads import SwitchCaseSpec


def _trace(records=800):
    return SwitchCaseSpec(
        name="profile-trace", seed=3, num_records=records
    ).generate()


class TestExecProfilePlumbing:
    def test_profile_lands_on_results_and_events(self):
        sink = CollectingSink()
        campaign = run_campaign_parallel(
            [_trace()],
            {"BTB": BranchTargetBuffer},
            jobs=1,
            events=sink,
            profile=True,
        )
        result = campaign.results["profile-trace"]["BTB"]
        assert result.profile is not None
        assert result.profile["records"] == 800
        assert result.profile["elapsed_seconds"] > 0.0
        finishes = sink.of_kind(CELL_FINISH)
        assert len(finishes) == 1
        assert finishes[0].profile == result.profile

    def test_unprofiled_campaign_has_no_profiles(self):
        sink = CollectingSink()
        campaign = run_campaign_parallel(
            [_trace()], {"BTB": BranchTargetBuffer}, jobs=1, events=sink
        )
        assert campaign.results["profile-trace"]["BTB"].profile is None
        assert all(
            event.profile is None for event in sink.of_kind(CELL_FINISH)
        )

    def test_journal_resume_preserves_profiles(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        first = run_campaign_parallel(
            [_trace()],
            {"BTB": BranchTargetBuffer},
            jobs=1,
            journal_path=journal,
            profile=True,
        )
        resumed = run_campaign_parallel(
            [_trace()],
            {"BTB": BranchTargetBuffer},
            jobs=1,
            journal_path=journal,
            profile=True,
        )
        assert (
            resumed.results["profile-trace"]["BTB"].profile
            == first.results["profile-trace"]["BTB"].profile
        )


class TestJournalProfileRoundTrip:
    def test_profile_survives_serialization(self):
        result = SimulationResult(
            trace_name="t",
            predictor_name="p",
            total_instructions=1000,
            indirect_branches=10,
            indirect_mispredictions=2,
            profile={"predictions": 10, "elapsed_seconds": 0.5},
        )
        clone = result_from_json(result_to_json(result))
        assert clone.profile == result.profile
        assert clone == result

    def test_absent_profile_stays_absent(self):
        result = SimulationResult(
            trace_name="t",
            predictor_name="p",
            total_instructions=1000,
            indirect_branches=10,
            indirect_mispredictions=2,
        )
        payload = result_to_json(result)
        assert "profile" not in payload
        assert result_from_json(payload).profile is None
