"""Tests for campaign planning and factory references."""

import functools

import pytest

from repro.exec.plan import (
    CellSpec,
    FactoryRef,
    PlanError,
    plan_campaign,
)
from repro.predictors import BranchTargetBuffer, TwoBitBTB
from repro.trace.stream import read_trace


class TestFactoryRef:
    def test_importable_class_uses_dotted_path(self):
        ref = FactoryRef.from_callable(BranchTargetBuffer)
        assert ref.dotted == "repro.predictors.btb:BranchTargetBuffer"
        assert ref.obj is None
        assert ref.picklable()

    def test_dotted_ref_builds_fresh_instances(self):
        ref = FactoryRef.from_callable(BranchTargetBuffer)
        first, second = ref.build(), ref.build()
        assert isinstance(first, BranchTargetBuffer)
        assert first is not second

    def test_closure_carried_as_object(self):
        captured = 16

        def factory():
            return BranchTargetBuffer(num_entries=captured)

        ref = FactoryRef.from_callable(factory)
        assert ref.dotted is None
        assert ref.obj is factory
        assert not ref.picklable()  # closures cannot cross processes
        assert ref.build().num_entries == 16

    def test_partial_is_picklable_object_ref(self):
        ref = FactoryRef.from_callable(
            functools.partial(BranchTargetBuffer, num_entries=64)
        )
        assert ref.dotted is None
        assert ref.picklable()
        assert ref.build().num_entries == 64


class TestPlanCampaign:
    def test_cell_order_matches_serial_runner(self, tiny_trace,
                                              vdispatch_trace, tmp_path):
        plan = plan_campaign(
            [tiny_trace, vdispatch_trace],
            {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB},
            cache_dir=tmp_path,
        )
        assert plan.total == 4
        assert plan.keys() == [
            ("tiny", "BTB"),
            ("tiny", "2bit"),
            ("vd-test", "BTB"),
            ("vd-test", "2bit"),
        ]
        assert [cell.index for cell in plan.cells] == [0, 1, 2, 3]

    def test_traces_spilled_once_and_readable(self, tiny_trace,
                                              vdispatch_trace, tmp_path):
        plan = plan_campaign(
            [tiny_trace, vdispatch_trace],
            {"BTB": BranchTargetBuffer, "2bit": TwoBitBTB},
            cache_dir=tmp_path,
        )
        paths = {cell.trace_path for cell in plan.cells}
        assert len(paths) == 2  # one spill file per trace, shared by cells
        for cell in plan.cells:
            loaded = read_trace(cell.trace_path)
            assert loaded.name == cell.trace_name
            assert len(loaded) == cell.records

    def test_carries_simulation_parameters(self, tiny_trace, tmp_path):
        plan = plan_campaign(
            [tiny_trace], {"BTB": BranchTargetBuffer},
            cache_dir=tmp_path, ras_depth=8, warmup_records=4,
        )
        cell = plan.cells[0]
        assert isinstance(cell, CellSpec)
        assert cell.ras_depth == 8
        assert cell.warmup_records == 4

    def test_duplicate_trace_names_rejected(self, tiny_trace, tmp_path):
        with pytest.raises(PlanError, match="duplicate"):
            plan_campaign(
                [tiny_trace, tiny_trace], {"BTB": BranchTargetBuffer},
                cache_dir=tmp_path,
            )

    def test_empty_factories_rejected(self, tiny_trace, tmp_path):
        with pytest.raises(PlanError):
            plan_campaign([tiny_trace], {}, cache_dir=tmp_path)

    def test_spill_names_safe_for_weird_trace_names(self, tiny_trace,
                                                    tmp_path):
        from repro.trace.stream import Trace

        weird = Trace(
            "a/b c:δ", tiny_trace.pcs, tiny_trace.types, tiny_trace.takens,
            tiny_trace.targets, tiny_trace.gaps,
        )
        plan = plan_campaign(
            [weird], {"BTB": BranchTargetBuffer}, cache_dir=tmp_path,
        )
        loaded = read_trace(plan.cells[0].trace_path)
        assert loaded.name == "a/b c:δ"


class TestPlanOverSources:
    """Plans accept Trace | TraceSource | workload spec interchangeably."""

    def _spec(self, name="vd-src"):
        from repro.workloads import VirtualDispatchSpec

        return VirtualDispatchSpec(
            name=name, seed=7, num_records=400, num_types=4, num_sites=2,
        )

    def test_sources_plan_identically_to_traces(self, tmp_path):
        from repro.trace.source import WorkloadSource

        spec = self._spec()
        eager = plan_campaign(
            [spec.generate()], {"BTB": BranchTargetBuffer},
            cache_dir=tmp_path / "eager",
        )
        lazy = plan_campaign(
            [WorkloadSource(spec)], {"BTB": BranchTargetBuffer},
            cache_dir=tmp_path / "lazy",
        )
        for left, right in zip(eager.cells, lazy.cells):
            assert left.trace_name == right.trace_name
            assert left.records == right.records
            assert left.key == right.key
        # Identical spill bytes — journals and worker caches can't tell.
        eager_spill = (tmp_path / "eager" / "0000-vd-src.trace").read_bytes()
        lazy_spill = (tmp_path / "lazy" / "0000-vd-src.trace").read_bytes()
        assert eager_spill == lazy_spill

    def test_bare_spec_accepted(self, tmp_path):
        plan = plan_campaign(
            [self._spec()], {"BTB": BranchTargetBuffer}, cache_dir=tmp_path,
        )
        assert plan.cells[0].trace_name == "vd-src"
        assert plan.cells[0].records == 400

    def test_spill_once_keyed_on_content_hash(self, tiny_trace, tmp_path):
        plan_campaign([tiny_trace], {"BTB": BranchTargetBuffer},
                      cache_dir=tmp_path)
        spill = tmp_path / f"0000-{tiny_trace.name}.trace"
        stamp = spill.stat().st_mtime_ns
        plan_campaign([tiny_trace], {"BTB": BranchTargetBuffer},
                      cache_dir=tmp_path)
        assert spill.stat().st_mtime_ns == stamp

    def test_lazy_source_released_after_planning(self, tmp_path):
        from repro.trace.source import WorkloadSource

        source = WorkloadSource(self._spec())
        plan_campaign([source], {"BTB": BranchTargetBuffer},
                      cache_dir=tmp_path)
        assert source._trace is None  # spilled, then dropped

    def test_plan_summary_over_sources(self):
        from repro.exec.plan import plan_summary
        from repro.trace.source import WorkloadSource

        spec = self._spec()
        eager = plan_summary([spec.generate()], {"BTB": BranchTargetBuffer})
        lazy = plan_summary([WorkloadSource(spec)],
                            {"BTB": BranchTargetBuffer})
        assert eager == lazy
