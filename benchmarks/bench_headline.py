"""Section 5.1 headline: mean MPKI across the suite, plus the CBP-4 check.

The paper's central result: BTB 3.40, VPC 0.29, ITTAGE 0.193, BLBP 0.183
mean MPKI over 88 traces (BLBP 5% better than ITTAGE), and on the
untuned CBP-4 traces ITTAGE 0.028 vs BLBP 0.027.  This bench prints the
paper-vs-measured comparison; the assertions lock in the *ordering*
(the reproduction's success criterion), not the absolute values.
"""

from benchmarks.conftest import run_once
from repro.sim.statistics import paired_improvement


def _means(campaign):
    return {name: campaign.mean_mpki(name) for name in campaign.predictors()}


def test_headline(benchmark, campaign, cbp4_campaign):
    means = run_once(benchmark, _means, campaign)
    print()
    print("Section 5.1 headline: mean indirect-target MPKI (suite-88)")
    paper = {"BTB": 3.40, "VPC": 0.29, "ITTAGE": 0.193, "BLBP": 0.183}
    for name in ("BTB", "VPC", "ITTAGE", "BLBP"):
        print(f"  {name:<8} paper {paper[name]:>6.3f}   measured {means[name]:8.4f}")
    interval = paired_improvement(campaign, "ITTAGE", "BLBP")
    print(
        f"  BLBP vs ITTAGE: {interval.mean:+.1f}% "
        f"[{interval.low:+.1f}%, {interval.high:+.1f}%] at 95% confidence "
        f"(paper: +5.2%)"
    )

    cbp4 = _means(cbp4_campaign)
    print("CBP-4-like cross-check (untuned):")
    for name in ("ITTAGE", "BLBP"):
        print(f"  {name:<8} measured {cbp4[name]:8.4f}")

    # The paper's ordering must hold on the main suite:
    assert means["BLBP"] < means["VPC"] < means["BTB"]
    assert means["ITTAGE"] < means["VPC"]
    # BLBP competitive with ITTAGE (within 10% either way).
    assert means["BLBP"] < 1.10 * means["ITTAGE"]
    # The CBP-4-like suite is much easier than the main suite for both.
    assert cbp4["BLBP"] < means["BLBP"] / 2
    assert cbp4["ITTAGE"] < means["ITTAGE"] / 2
