"""Figure 10: effect of the §3.6 optimizations (ablation study).

Regenerates the twelve-configuration ablation against ITTAGE: all
optimizations off (SNIP-like), each alone, each removed, all on.  Uses
an evenly-spaced subsample of the suite (the full 12-config x 88-trace
sweep would multiply the whole campaign cost by three).
"""

from benchmarks.conftest import run_once
from repro.experiments.figure_export import export_series
from repro.experiments.ablation import (
    ablation_traces,
    figure10,
    format_figure10,
)


def test_figure10(benchmark):
    traces = ablation_traces()
    results = run_once(benchmark, figure10, traces)
    print()
    print(format_figure10(results))
    export_series(results, "results/figure10.csv",
                  header=("configuration", "mpki_reduction_vs_ittage_pct"))
    by_label = dict(results)
    # The paper's qualitative findings, with tolerance for bench-scale
    # noise (the paper's Fig. 10 deltas are single-digit percent):
    # 1. All-on beats all-off by a clear margin.
    assert (
        by_label["all optimizations on"]
        > by_label["all optimizations off"] + 5.0
    )
    # 2. No single optimization alone collapses the predictor: every
    #    only-X config stays in the neighbourhood of all-off or better.
    for label, reduction in results:
        if label.startswith("only"):
            assert reduction >= by_label["all optimizations off"] - 6.0
    # 3. Removing any optimization from the full predictor does not help
    #    beyond noise.
    for label, reduction in results:
        if label.startswith("no "):
            assert reduction <= by_label["all optimizations on"] + 4.0
