"""Multi-node campaign scaling gate for :mod:`repro.dist`.

Runs one fused campaign through :func:`execute_plan` on a
:class:`~repro.dist.NodePool` of 1, 2, and 4 local worker nodes and
measures end-to-end wall clock — trace shipping, scheduling, and
journal-shard merging included, because that is what a user of
``repro simulate --nodes`` actually pays.

Every arm must produce results identical to the single-node run
(asserted every time — a scaling gate is worthless if distribution
drifts).  The campaign is a suite sample under the two expensive
predictors (BLBP, ITTAGE) so cells are long enough to amortize node
startup; with cheap table predictors the bench would measure process
spawn, not scheduling.

Run as the CI gate::

    PYTHONPATH=src python benchmarks/bench_dist.py --quick --gate

``--gate`` exits non-zero unless 4 nodes clear ``--min-speedup``
(default 1.6x) over 1 node.  Like ``bench_parallel``, the speedup
claim only applies where parallelism is physically possible: on hosts
with fewer than 4 CPUs the gate reports and skips (determinism is
still asserted).  The measurement is written to
``results/throughput_dist.json`` with host-environment metadata.
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.common.envinfo import environment_metadata
from repro.core.blbp import BLBP
from repro.dist import NodePool
from repro.exec.plan import plan_campaign
from repro.exec.pool import execute_plan
from repro.predictors.ittage import ITTAGE

NODE_COUNTS = (1, 2, 4)
FACTORIES = {"BLBP": BLBP, "ITTAGE": ITTAGE}


def _suite_traces(scale: float, stride: int, min_traces: int = 8):
    from repro.workloads.suite import suite88_specs

    entries = suite88_specs(scale)[::stride]
    if len(entries) < min_traces:
        entries = suite88_specs(scale)[:min_traces]
    return [entry.generate() for entry in entries]


def _identical(reference, other, arm):
    if other.traces() != reference.traces():
        raise AssertionError(f"{arm}: trace set drifted")
    if other.predictors() != reference.predictors():
        raise AssertionError(f"{arm}: predictor set drifted")
    for trace in reference.traces():
        for predictor in reference.predictors():
            if (
                other.results[trace][predictor]
                != reference.results[trace][predictor]
            ):
                raise AssertionError(
                    f"{arm}: results drifted at ({trace}, {predictor})"
                )


def measure_scaling(scale: float, stride: int, repeats: int) -> dict:
    """Best-of-``repeats`` wall clock for 1, 2, and 4 local nodes.

    The plan (and its spilled traces) is built once and shared, so the
    arms differ only in where cells execute.  Pool startup happens
    inside the timed region — a fresh pool per pass — because node
    spawn is a real cost of distribution; the transfer-once store
    means repeats after the first ship nothing.
    """
    traces = _suite_traces(scale, stride)
    records = sum(len(trace) for trace in traces)
    cells = len(traces) * len(FACTORIES)

    with tempfile.TemporaryDirectory(prefix="repro-dist-bench-") as cache:
        plan = plan_campaign(traces, FACTORIES, cache_dir=Path(cache))
        reference = execute_plan(plan, jobs=1)  # warmup + golden results

        best = {}
        for nodes in NODE_COUNTS:
            for _ in range(repeats):
                started = time.perf_counter()
                with NodePool(nodes=nodes) as pool:
                    campaign = execute_plan(plan, pool=pool)
                elapsed = time.perf_counter() - started
                _identical(reference, campaign, f"{nodes}-node")
                best[nodes] = (
                    elapsed if nodes not in best
                    else min(best[nodes], elapsed)
                )

    summary = {
        "environment": environment_metadata(),
        "predictors": list(FACTORIES),
        "traces": [trace.name for trace in traces],
        "cells": cells,
        "units": len(traces),  # fused: one unit per trace
        "records": records,
        "scale": scale,
        "stride": stride,
        "repeats": repeats,
    }
    for nodes in NODE_COUNTS:
        summary[f"nodes_{nodes}_seconds"] = round(best[nodes], 4)
        summary[f"nodes_{nodes}_cells_per_sec"] = round(
            cells / best[nodes], 2
        )
    for nodes in NODE_COUNTS[1:]:
        summary[f"speedup_{nodes}_vs_1"] = round(best[1] / best[nodes], 3)
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="multi-node campaign scaling gate"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller sample for CI (scale 1.0, 1 repeat)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--stride", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--gate", action="store_true",
        help="exit non-zero unless 4 nodes clear --min-speedup over 1 "
             "(skipped on hosts with fewer than 4 CPUs)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.6,
        help="minimum 4-node speedup over 1 node (default 1.6)",
    )
    parser.add_argument(
        "--out", default="results/throughput_dist.json",
        help="where to write the measurement (empty string to skip)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (1.0 if args.quick else 2.0)
    stride = args.stride if args.stride is not None else 10
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 2)

    summary = measure_scaling(scale, stride, repeats)
    print(
        f"campaign  {summary['cells']} cells in {summary['units']} fused "
        f"units, {summary['records']:,} records"
    )
    for nodes in NODE_COUNTS:
        line = (
            f"{nodes} node{'s' if nodes > 1 else ' '}   "
            f"{summary[f'nodes_{nodes}_cells_per_sec']:>8.2f} cells/s  "
            f"({summary[f'nodes_{nodes}_seconds']:.2f}s)"
        )
        if nodes > 1:
            line += f"  {summary[f'speedup_{nodes}_vs_1']:.2f}x vs 1 node"
        print(line)

    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {out_path}")

    if args.gate:
        cores = os.cpu_count() or 1
        if cores < 4:
            print(
                f"gate skipped: host has {cores} CPU(s); 4-node speedup "
                "is not physically possible (determinism still asserted)"
            )
        elif summary["speedup_4_vs_1"] < args.min_speedup:
            print(
                f"FAIL: 4-node speedup {summary['speedup_4_vs_1']:.2f}x "
                f"below {args.min_speedup}x gate",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
