"""Extension bench: SNIP vs BLBP — the 44-array vs 8-array trade-off.

§3 motivates BLBP as a practical reformulation of SNIP that cuts the
SRAM arrays needed from 44 to 8.  This bench runs the published-style
SNIP (plain linear perceptron over individual history bits), BLBP, and
a piecewise-extended SNIP over a suite subsample, reporting accuracy
next to each predictor's array count and storage.
"""

from benchmarks.conftest import run_once
from repro.core import BLBP, SNIP, SNIPConfig
from repro.sim.runner import run_campaign
from repro.workloads.suite import env_scale, suite88_specs


def _traces():
    return [entry.generate() for entry in suite88_specs(env_scale())[::8]]


def _run(traces):
    return run_campaign(
        traces,
        {
            "SNIP": SNIP,
            "SNIP+pw": lambda: SNIP(SNIPConfig(piecewise_bits=4)),
            "BLBP": BLBP,
        },
    )


def test_snip_vs_blbp(benchmark):
    traces = _traces()
    campaign = run_once(benchmark, _run, traces)
    snip = campaign.mean_mpki("SNIP")
    snip_pw = campaign.mean_mpki("SNIP+pw")
    blbp = campaign.mean_mpki("BLBP")
    arrays = {
        "SNIP": SNIP().config.num_features,
        "BLBP": BLBP().config.num_subpredictors,
    }
    print()
    print("SNIP vs BLBP (44 arrays vs 8):")
    print(f"  SNIP     {snip:8.4f} MPKI   {arrays['SNIP']} SRAM arrays")
    print(f"  SNIP+pw  {snip_pw:8.4f} MPKI   {arrays['SNIP']} SRAM arrays "
          f"(piecewise extension)")
    print(f"  BLBP     {blbp:8.4f} MPKI   {arrays['BLBP']} SRAM arrays")
    # The paper's claim: BLBP improves accuracy over SNIP while using
    # 5.5x fewer arrays.
    assert arrays["SNIP"] == 44
    assert arrays["BLBP"] == 8
    assert blbp < snip
    # The piecewise extension must recover a large part of SNIP's gap.
    assert snip_pw < snip
