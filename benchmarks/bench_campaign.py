"""Campaign-fusion throughput gate.

Measures end-to-end wall clock for the same campaign executed three
ways:

* **pr4** — a faithful reconstruction of the PR 4 execution path, the
  gate's baseline: traces spilled as ``RPTRACE1`` archives, every
  (trace, predictor) cell re-reading its spill via ``np.load``,
  re-converting columns to scalars, and replaying the RAS solo;
* **unfused** — today's ``execute_plan(fuse=False)``: cells still run
  solo, but through the worker :class:`~repro.trace.plane.TraceCache`
  (memmap attach, scalars decoded once per trace);
* **fused** — ``execute_plan(fuse=True)``: contiguous same-trace cells
  grouped into :class:`FusedCellSpec`s, each group one
  :func:`simulate_many` pass sharing the decoded columns and the
  on-disk derived plane (precomputed RAS outcomes, indirect index
  arrays).

All three arms must produce identical results (asserted every run — a
throughput gate is worthless if fusion drifts).  The campaign shape is
the paper's Figure-1-style capacity sweep — many cheap predictor
configurations over a suite sample — which is exactly the shape where
per-cell predictor-independent costs (decode, dispatch, RAS replay)
dominate and fusion pays off.

Run as the CI gate::

    PYTHONPATH=src python benchmarks/bench_campaign.py --quick --gate

``--gate`` exits non-zero unless fused ≥ ``--min-speedup`` × the PR 4
baseline (default 1.5x).  The measurement is written to
``results/throughput_campaign.json`` with host-environment metadata.
"""

import argparse
import functools
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.common.envinfo import environment_metadata
from repro.exec.plan import _spill_name, plan_campaign
from repro.exec.pool import execute_plan
from repro.predictors import BranchTargetBuffer, TwoBitBTB
from repro.sim.engine import simulate
from repro.sim.metrics import CampaignResult
from repro.trace.stream import read_trace, write_trace_v1


def sweep_factories():
    """A Figure-1-style capacity sweep: 8 predictor configurations."""
    factories = {}
    for bits in (8, 10, 12, 14):
        entries = 1 << bits
        factories[f"BTB-{entries}"] = functools.partial(
            BranchTargetBuffer, num_entries=entries
        )
        factories[f"2bit-{entries}"] = functools.partial(
            TwoBitBTB, num_entries=entries
        )
    return factories


def _suite_traces(scale: float, stride: int, min_traces: int = 8):
    from repro.workloads.suite import suite88_specs

    entries = suite88_specs(scale)[::stride]
    if len(entries) < min_traces:
        entries = suite88_specs(scale)[:min_traces]
    return [entry.generate() for entry in entries]


def _run_pr4(traces, factories, spill_dir: Path) -> CampaignResult:
    """The PR 4 unfused path: per-cell np.load decode + solo replay.

    Reconstructs what ``execute_plan`` did before the trace plane:
    spills were ``RPTRACE1`` archives and every cell independently
    re-read and re-decoded its trace (no worker cache, no shared
    scalars, no derived plane).  Reading the file fresh per cell is the
    point — it reproduces the per-cell cost the trace plane removed.
    """
    campaign = CampaignResult()
    for index, trace in enumerate(traces):
        path = spill_dir / _spill_name(index, trace.name)
        for name, factory in factories.items():
            loaded = read_trace(path)
            result = simulate(factory(), loaded)
            result.predictor_name = name
            campaign.add(result)
    return campaign


def measure_campaign(
    scale: float, stride: int, repeats: int, factories=None
) -> dict:
    """Best-of-``repeats`` wall clock for pr4 vs unfused vs fused.

    All arms run serially in one process against pre-spilled traces, so
    the comparison isolates execution-path cost from pool scheduling.
    Arms are interleaved within each repeat so frequency drift and cache
    warmth hit them equally.
    """
    factories = factories or sweep_factories()
    traces = _suite_traces(scale, stride)
    records = sum(len(trace) for trace in traces)
    cells = len(traces) * len(factories)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        cache = Path(cache_dir)
        plan = plan_campaign(traces, factories, cache_dir=cache)
        v1_dir = cache / "pr4"
        v1_dir.mkdir()
        for index, trace in enumerate(traces):
            write_trace_v1(trace, v1_dir / _spill_name(index, trace.name))

        def fused_pass():
            started = time.perf_counter()
            campaign = execute_plan(plan, jobs=1, fuse=True)
            return time.perf_counter() - started, campaign

        def unfused_pass():
            started = time.perf_counter()
            campaign = execute_plan(plan, jobs=1, fuse=False)
            return time.perf_counter() - started, campaign

        def pr4_pass():
            started = time.perf_counter()
            campaign = _run_pr4(traces, factories, v1_dir)
            return time.perf_counter() - started, campaign

        # Warmup: populates the worker trace cache and the on-disk
        # derived planes, so repeats measure steady-state execution.
        _, expected = fused_pass()
        best = {"pr4": None, "unfused": None, "fused": None}
        for _ in range(repeats):
            for arm, one_pass in (
                ("pr4", pr4_pass),
                ("unfused", unfused_pass),
                ("fused", fused_pass),
            ):
                elapsed, campaign = one_pass()
                if campaign.results != expected.results:
                    raise AssertionError(f"{arm} campaign results drifted")
                best[arm] = (
                    elapsed if best[arm] is None
                    else min(best[arm], elapsed)
                )

    return {
        "environment": environment_metadata(),
        "predictors": list(factories),
        "traces": [trace.name for trace in traces],
        "cells": cells,
        "records": records,
        "scale": scale,
        "stride": stride,
        "repeats": repeats,
        "pr4_seconds": round(best["pr4"], 4),
        "unfused_seconds": round(best["unfused"], 4),
        "fused_seconds": round(best["fused"], 4),
        "pr4_cells_per_sec": round(cells / best["pr4"], 2),
        "unfused_cells_per_sec": round(cells / best["unfused"], 2),
        "fused_cells_per_sec": round(cells / best["fused"], 2),
        "speedup_vs_pr4": round(best["pr4"] / best["fused"], 3),
        "speedup_vs_unfused": round(best["unfused"] / best["fused"], 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fused-vs-unfused campaign throughput gate"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller sample for CI (scale 0.25, 2 repeats)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--stride", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--gate", action="store_true",
        help="exit non-zero unless fused/pr4 clears --min-speedup",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.5,
        help="minimum fused speedup over the PR 4 path (default 1.5)",
    )
    parser.add_argument(
        "--out", default="results/throughput_campaign.json",
        help="where to write the measurement (empty string to skip)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.25 if args.quick else 0.5)
    stride = args.stride if args.stride is not None else 10
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 3)

    summary = measure_campaign(scale, stride, repeats)
    print(
        f"pr4 path  {summary['pr4_cells_per_sec']:>8.2f} cells/s  "
        f"({summary['pr4_seconds']:.2f}s, {summary['cells']} cells, "
        f"{summary['records']:,} records)"
    )
    print(
        f"unfused   {summary['unfused_cells_per_sec']:>8.2f} cells/s  "
        f"({summary['unfused_seconds']:.2f}s)"
    )
    print(
        f"fused     {summary['fused_cells_per_sec']:>8.2f} cells/s  "
        f"({summary['fused_seconds']:.2f}s)"
    )
    print(
        f"speedup   {summary['speedup_vs_pr4']:.2f}x vs pr4, "
        f"{summary['speedup_vs_unfused']:.2f}x vs unfused"
        + (f"  (gate: ≥{args.min_speedup}x vs pr4)" if args.gate else "")
    )

    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {out_path}")

    if args.gate and summary["speedup_vs_pr4"] < args.min_speedup:
        print(
            f"FAIL: fused speedup {summary['speedup_vs_pr4']:.2f}x below "
            f"{args.min_speedup}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
