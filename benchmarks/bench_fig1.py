"""Figure 1: branch-type prevalence per kilo-instruction.

Regenerates the paper's workload-characterization plot: for every trace
in the suite, executions per 1000 instructions of each branch category,
sorted by indirect-branch prevalence.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure1, format_figure1


def test_figure1(benchmark, suite_stats):
    rows = run_once(benchmark, figure1, suite_stats)
    print()
    print(format_figure1(suite_stats, max_rows=22))
    assert len(rows) == 88
    # The paper's Fig. 1 property: conditionals dominate every trace.
    for row in rows:
        assert row["conditional"] > row["indirect"] or row["indirect"] > 20
    # Sorted by indirect prevalence.
    indirect = [row["indirect"] for row in rows]
    assert indirect == sorted(indirect)
