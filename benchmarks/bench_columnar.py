"""Columnar-kernel throughput gates: ITTAGE replay and fused campaigns.

Two measurements, two CI gates, one results file:

* **ITTAGE columnar** — ``simulate(ITTAGE(), trace, backend="columnar")``
  vs the scalar engine over a suite sample.  The columnar kernel
  vectorises the base/tagged-table walk that dominates scalar ITTAGE,
  so the gate demands a wide margin (default ≥ 3x).

* **Fused campaign** — a Figure-1-style ablation campaign (BLBP feature
  toggles plus an ITTAGE useful-bit reset-period sweep) executed two
  ways: *per-cell*, each (trace, predictor) cell replayed solo with a
  cold shared-precompute cache — the cost profile of distributed
  workers, where cells land on different processes and share nothing
  in-memory (the same reconstruction discipline as
  ``bench_campaign``'s pr4 arm); and *fused*,
  ``simulate_many(backend="columnar")`` replaying all lanes over one
  shared precompute per trace.  Ablation lanes differ only in replay
  behaviour, so the fused pass derives the trace planes (history
  streams, folded index/tag columns, RAS outcomes) once instead of
  once per lane.  Gate: fused ≥ 1.5x per-cell (default).

Both arms of both measurements must produce identical results — the
assertion runs every pass, because a throughput gate is worthless if
the fast path drifts.  The per-cell arm's warm-cache timing (shared
precompute already resident, as in a single-process unfused run) is
reported in the JSON for transparency but not gated.

Run as the CI gate::

    PYTHONPATH=src python benchmarks/bench_columnar.py --quick --gate

The measurement is written to ``results/throughput_columnar.json``
with host-environment metadata.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.common.envinfo import environment_metadata
from repro.core import BLBP, BLBPConfig
from repro.predictors.ittage import ITTAGE, ITTAGEConfig
from repro.sim import kernel
from repro.sim.engine import simulate, simulate_many


def ablation_factories():
    """The fused-campaign roster: lanes that share one trace precompute.

    Six BLBP feature ablations (Figure-6-style single-feature removals)
    and a three-point ITTAGE useful-bit reset-period sweep.  Every knob
    here is replay-only: the derived trace planes — history streams,
    folded index/tag columns, RAS outcomes — are identical across
    lanes, which is exactly the sharing the fused pass exploits.
    """
    return {
        "BLBP": lambda: BLBP(),
        "BLBP-no-selective": lambda: BLBP(
            BLBPConfig(use_selective_update=False)
        ),
        "BLBP-no-adaptive": lambda: BLBP(
            BLBPConfig(use_adaptive_threshold=False)
        ),
        "BLBP-no-transfer": lambda: BLBP(
            BLBPConfig(use_transfer_function=False)
        ),
        "BLBP-no-local": lambda: BLBP(
            BLBPConfig(use_local_history=False)
        ),
        "BLBP-no-intervals": lambda: BLBP(
            BLBPConfig(use_intervals=False)
        ),
        "ITTAGE-ureset-14": lambda: ITTAGE(
            ITTAGEConfig(u_reset_period=1 << 14)
        ),
        "ITTAGE": lambda: ITTAGE(),
        "ITTAGE-ureset-18": lambda: ITTAGE(
            ITTAGEConfig(u_reset_period=1 << 18)
        ),
    }


def _suite_traces(scale: float, stride: int, min_traces: int = 4):
    from repro.workloads.suite import suite88_specs

    entries = suite88_specs(scale)[::stride]
    if len(entries) < min_traces:
        entries = suite88_specs(scale)[:min_traces]
    return [entry.generate() for entry in entries]


def measure_ittage(traces, repeats: int) -> dict:
    """Best-of-``repeats`` for scalar vs columnar ITTAGE replay."""

    def scalar_pass():
        started = time.perf_counter()
        results = [simulate(ITTAGE(), trace) for trace in traces]
        return time.perf_counter() - started, results

    def columnar_pass():
        kernel._SHARED_CACHE.clear()
        started = time.perf_counter()
        results = [
            simulate(ITTAGE(), trace, backend="columnar")
            for trace in traces
        ]
        return time.perf_counter() - started, results

    _, expected = scalar_pass()  # warmup: numpy/ctypes import, caches
    best = {"scalar": None, "columnar": None}
    for _ in range(repeats):
        for arm, one_pass in (
            ("scalar", scalar_pass), ("columnar", columnar_pass)
        ):
            elapsed, results = one_pass()
            if results != expected:
                raise AssertionError(f"ITTAGE {arm} results drifted")
            best[arm] = (
                elapsed if best[arm] is None else min(best[arm], elapsed)
            )

    records = sum(len(trace) for trace in traces)
    return {
        "records": records,
        "scalar_seconds": round(best["scalar"], 4),
        "columnar_seconds": round(best["columnar"], 4),
        "scalar_records_per_sec": round(records / best["scalar"]),
        "columnar_records_per_sec": round(records / best["columnar"]),
        "speedup": round(best["scalar"] / best["columnar"], 3),
    }


def measure_fused(traces, repeats: int) -> dict:
    """Best-of-``repeats`` for per-cell vs fused columnar campaigns.

    ``percell_cold`` clears the shared-precompute cache before every
    cell — the distributed-worker cost profile the gate targets.
    ``percell_warm`` leaves the cache resident across same-trace cells
    (the single-process unfused profile); it is reported, not gated.
    """
    factories = ablation_factories()

    def percell_pass(cold: bool):
        kernel._SHARED_CACHE.clear()
        started = time.perf_counter()
        results = []
        for trace in traces:
            for factory in factories.values():
                if cold:
                    kernel._SHARED_CACHE.clear()
                results.append(
                    simulate(factory(), trace, backend="columnar")
                )
        return time.perf_counter() - started, results

    def fused_pass():
        kernel._SHARED_CACHE.clear()
        started = time.perf_counter()
        results = []
        for trace in traces:
            lanes = [factory() for factory in factories.values()]
            results.extend(
                simulate_many(lanes, trace, backend="columnar")
            )
        return time.perf_counter() - started, results

    _, expected = fused_pass()
    best = {"percell_cold": None, "percell_warm": None, "fused": None}
    for _ in range(repeats):
        for arm, one_pass in (
            ("percell_cold", lambda: percell_pass(cold=True)),
            ("percell_warm", lambda: percell_pass(cold=False)),
            ("fused", fused_pass),
        ):
            elapsed, results = one_pass()
            if results != expected:
                raise AssertionError(f"fused-gate {arm} results drifted")
            best[arm] = (
                elapsed if best[arm] is None else min(best[arm], elapsed)
            )

    cells = len(traces) * len(factories)
    return {
        "predictors": list(factories),
        "cells": cells,
        "percell_cold_seconds": round(best["percell_cold"], 4),
        "percell_warm_seconds": round(best["percell_warm"], 4),
        "fused_seconds": round(best["fused"], 4),
        "percell_cold_cells_per_sec": round(
            cells / best["percell_cold"], 2
        ),
        "fused_cells_per_sec": round(cells / best["fused"], 2),
        "speedup_vs_percell_cold": round(
            best["percell_cold"] / best["fused"], 3
        ),
        "speedup_vs_percell_warm": round(
            best["percell_warm"] / best["fused"], 3
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="columnar ITTAGE + fused-campaign throughput gates"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller sample for CI (scale 0.5, 2 repeats)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--stride", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--gate", action="store_true",
        help="exit non-zero unless both speedup gates clear",
    )
    parser.add_argument(
        "--min-ittage-speedup", type=float, default=3.0,
        help="minimum columnar-ITTAGE speedup over scalar (default 3)",
    )
    parser.add_argument(
        "--min-fused-speedup", type=float, default=1.5,
        help="minimum fused speedup over per-cell columnar (default 1.5)",
    )
    parser.add_argument(
        "--out", default="results/throughput_columnar.json",
        help="where to write the measurement (empty string to skip)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.5 if args.quick else 1.0)
    stride = args.stride if args.stride is not None else 15
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 3)

    traces = _suite_traces(scale, stride)
    records = sum(len(trace) for trace in traces)

    ittage = measure_ittage(traces, repeats)
    print(
        f"ITTAGE scalar    {ittage['scalar_records_per_sec']:>9,} rec/s  "
        f"({ittage['scalar_seconds']:.2f}s, {records:,} records)"
    )
    print(
        f"ITTAGE columnar  {ittage['columnar_records_per_sec']:>9,} rec/s  "
        f"({ittage['columnar_seconds']:.2f}s)  "
        f"{ittage['speedup']:.2f}x"
        + (f"  (gate: ≥{args.min_ittage_speedup}x)" if args.gate else "")
    )

    fused = measure_fused(traces, repeats)
    print(
        f"per-cell cold    {fused['percell_cold_cells_per_sec']:>9.2f} "
        f"cells/s  ({fused['percell_cold_seconds']:.2f}s, "
        f"{fused['cells']} cells)"
    )
    print(
        f"fused            {fused['fused_cells_per_sec']:>9.2f} cells/s  "
        f"({fused['fused_seconds']:.2f}s)  "
        f"{fused['speedup_vs_percell_cold']:.2f}x vs cold, "
        f"{fused['speedup_vs_percell_warm']:.2f}x vs warm"
        + (f"  (gate: ≥{args.min_fused_speedup}x vs cold)"
           if args.gate else "")
    )

    summary = {
        "environment": environment_metadata(),
        "traces": [trace.name for trace in traces],
        "records": records,
        "scale": scale,
        "stride": stride,
        "repeats": repeats,
        "ittage": ittage,
        "fused_campaign": fused,
    }
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {out_path}")

    failed = False
    if args.gate and ittage["speedup"] < args.min_ittage_speedup:
        print(
            f"FAIL: columnar ITTAGE speedup {ittage['speedup']:.2f}x "
            f"below {args.min_ittage_speedup}x gate",
            file=sys.stderr,
        )
        failed = True
    if args.gate and (
        fused["speedup_vs_percell_cold"] < args.min_fused_speedup
    ):
        print(
            f"FAIL: fused campaign speedup "
            f"{fused['speedup_vs_percell_cold']:.2f}x below "
            f"{args.min_fused_speedup}x gate",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
