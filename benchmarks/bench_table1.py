"""Table 1: the 88-workload suite inventory.

Prints the same rows as the paper's Table 1 (sources, benchmark counts,
workload details) from the reproduction's suite definition.
"""

from benchmarks.conftest import run_once
from repro.experiments.tables import format_table1, table1


def test_table1(benchmark):
    rows = run_once(benchmark, table1)
    print()
    print(format_table1())
    assert sum(count for _, count, _ in rows) == 88
