"""Figure 11: effect of IBTB associativity.

Regenerates the associativity sweep: 4,096 IBTB entries reorganized as
4/8/16/32/64 ways, with ITTAGE as the reference bar.  The paper's shape:
MPKI falls monotonically with associativity (1.09 -> 0.183), crossing
ITTAGE between 32 and 64 ways.
"""

from benchmarks.conftest import run_once
from repro.experiments.figure_export import export_series
from repro.experiments.associativity import (
    associativity_traces,
    figure11,
    format_figure11,
)


def test_figure11(benchmark):
    traces = associativity_traces()
    results = run_once(benchmark, figure11, traces)
    print()
    print(format_figure11(results))
    export_series(results, "results/figure11.csv",
                  header=("configuration", "mean_mpki"))
    mpki = dict(results)
    # Monotone improvement with associativity (allow tiny noise).
    sweep = [mpki[f"assoc={w}"] for w in (4, 8, 16, 32, 64)]
    for low_assoc, high_assoc in zip(sweep, sweep[1:]):
        assert high_assoc <= low_assoc * 1.05
    # 64-way must be substantially better than 4-way.
    assert sweep[-1] < sweep[0] * 0.8
