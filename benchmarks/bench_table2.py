"""Table 2: predictor configurations and hardware budgets.

Prints each predictor's paper-claimed budget next to the budget computed
from the actual structures instantiated in this reproduction, plus the
itemized breakdown.
"""

from benchmarks.conftest import run_once
from repro.experiments.configs import (
    format_budget_details,
    format_table2,
    table2,
)


def test_table2(benchmark):
    rows = run_once(benchmark, table2)
    print()
    print(format_table2())
    print()
    print(format_budget_details())
    measured = {name: kb for name, _, _, kb in rows}
    # Iso-area check: BLBP and ITTAGE must be within 20% of each other.
    assert abs(measured["BLBP"] - measured["ITTAGE"]) < 0.25 * measured["ITTAGE"]
