"""Figure 8: per-benchmark MPKI for VPC, ITTAGE and BLBP.

Regenerates the paper's main per-benchmark comparison: MPKI of the three
competitive predictors over all 88 traces, sorted by BLBP MPKI, with the
BTB omitted (its MPKI dwarfs the rest, as in the paper).
"""

from benchmarks.conftest import run_once
from repro.experiments.categories import category_means, format_category_means
from repro.experiments.figure_export import export_all
from repro.experiments.figures import figure8, format_figure8
from repro.sim.report import format_mpki_table


def test_figure8(benchmark, campaign, suite_stats):
    series = run_once(benchmark, figure8, campaign)
    print()
    print(format_figure8(campaign))
    print()
    print(format_mpki_table(
        campaign, predictor_order=("BTB", "VPC", "ITTAGE", "BLBP"),
        sort_by="BLBP",
    ))
    print()
    print(format_category_means(category_means(campaign, by="source")))
    print()
    print(format_category_means(category_means(campaign)))
    paths = export_all(suite_stats, campaign, "results")
    print(f"\nfigure data exported: {', '.join(str(p) for p in paths)}")
    assert len(series["BLBP"]) == 88
    # Series sorted by BLBP, and the mean ordering must hold:
    blbp = series["BLBP"]
    assert blbp == sorted(blbp)
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(series["BLBP"]) < mean(series["VPC"])
    assert mean(series["ITTAGE"]) < mean(series["VPC"])
