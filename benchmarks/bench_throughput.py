"""Implementation-cost microbenchmarks (supplementary to §3.7).

The paper argues BLBP's prediction is implementable within conditional-
perceptron latency (8 tables, K adder trees).  These microbenchmarks
measure the simulator-side cost per operation of each predictor —
useful both as a software regression guard and as a proxy for relative
implementation complexity.
"""

import numpy as np
import pytest

from repro.core import BLBP
from repro.predictors import ITTAGE, BranchTargetBuffer, VPCPredictor


def _warmed(predictor, pcs, targets, steps=500):
    rng = np.random.default_rng(0)
    for _ in range(steps):
        pc = pcs[int(rng.integers(len(pcs)))]
        target = targets[int(rng.integers(len(targets)))]
        predictor.predict_target(pc)
        predictor.train(pc, target)
        predictor.on_conditional(0x500, bool(rng.integers(2)))
    return predictor


PCS = [0x1000, 0x1040, 0x2000]
TARGETS = [0x40_0004, 0x40_0128, 0x40_0A3C, 0x41_0010]


@pytest.mark.parametrize("factory", [BranchTargetBuffer, VPCPredictor, ITTAGE, BLBP],
                         ids=["BTB", "VPC", "ITTAGE", "BLBP"])
def test_predict_throughput(benchmark, factory):
    predictor = _warmed(factory(), PCS, TARGETS)
    benchmark(predictor.predict_target, PCS[0])


@pytest.mark.parametrize("factory", [BranchTargetBuffer, VPCPredictor, ITTAGE, BLBP],
                         ids=["BTB", "VPC", "ITTAGE", "BLBP"])
def test_predict_train_round_trip(benchmark, factory):
    predictor = _warmed(factory(), PCS, TARGETS)

    def round_trip():
        predictor.predict_target(PCS[1])
        predictor.train(PCS[1], TARGETS[1])

    benchmark(round_trip)
