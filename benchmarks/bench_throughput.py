"""Implementation-cost microbenchmarks (supplementary to §3.7).

The paper argues BLBP's prediction is implementable within conditional-
perceptron latency (8 tables, K adder trees).  These microbenchmarks
measure the simulator-side cost per operation of each predictor —
useful both as a software regression guard and as a proxy for relative
implementation complexity.

Run directly, this module is also the **hot-path speedup gate**::

    PYTHONPATH=src python benchmarks/bench_throughput.py --quick

It replays a suite sample through :class:`repro.core.ReferenceBLBP`
(the per-bank, from-scratch-fold "before" implementation), the
optimized :class:`repro.core.BLBP`, and the columnar batch kernel
(``simulate(..., backend="columnar")`` over precomputed derived
planes) on the headline paper configuration, prints branches/second
for all three, writes the numbers to ``results/``, and exits non-zero
unless optimized ≥ ``--min-speedup`` × reference AND columnar ≥
``--min-columnar-speedup`` × optimized.  CI runs this on every push.

``--checkpoint-gate`` instead measures the cost of mid-trace
checkpointing (see ``docs/checkpointing.md``): the same sample with
``checkpoint_every=0`` versus with periodic snapshots, failing if
snapshots cost more than ``--max-checkpoint-overhead`` percent.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.common.envinfo import environment_metadata
from repro.core import BLBP, ReferenceBLBP
from repro.predictors import ITTAGE, BranchTargetBuffer, VPCPredictor


def _warmed(predictor, pcs, targets, steps=500):
    rng = np.random.default_rng(0)
    for _ in range(steps):
        pc = pcs[int(rng.integers(len(pcs)))]
        target = targets[int(rng.integers(len(targets)))]
        predictor.predict_target(pc)
        predictor.train(pc, target)
        predictor.on_conditional(0x500, bool(rng.integers(2)))
    return predictor


PCS = [0x1000, 0x1040, 0x2000]
TARGETS = [0x40_0004, 0x40_0128, 0x40_0A3C, 0x41_0010]


@pytest.mark.parametrize("factory", [BranchTargetBuffer, VPCPredictor, ITTAGE, BLBP],
                         ids=["BTB", "VPC", "ITTAGE", "BLBP"])
def test_predict_throughput(benchmark, factory):
    predictor = _warmed(factory(), PCS, TARGETS)
    benchmark(predictor.predict_target, PCS[0])


@pytest.mark.parametrize("factory", [BranchTargetBuffer, VPCPredictor, ITTAGE, BLBP],
                         ids=["BTB", "VPC", "ITTAGE", "BLBP"])
def test_predict_train_round_trip(benchmark, factory):
    predictor = _warmed(factory(), PCS, TARGETS)

    def round_trip():
        predictor.predict_target(PCS[1])
        predictor.train(PCS[1], TARGETS[1])

    benchmark(round_trip)


# ----------------------------------------------------------------------
# Reference-vs-optimized speedup gate (CLI mode)
# ----------------------------------------------------------------------


def measure_speedup(scale: float, stride: int, repeats: int) -> dict:
    """Replay a suite sample through both BLBP implementations.

    Each implementation gets ``repeats`` full passes (fresh predictors
    every pass); the best pass counts, which damps scheduler noise on
    shared CI runners.  Returns a JSON-ready summary.
    """
    from repro.sim.engine import simulate
    from repro.trace.derived import compute_derived
    from repro.workloads.suite import suite88_specs

    entries = suite88_specs(scale)[::stride]
    traces = [entry.generate() for entry in entries]
    records = sum(len(trace) for trace in traces)

    def best_pass(factory) -> float:
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            for trace in traces:
                simulate(factory(), trace)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        return best

    reference_seconds = best_pass(ReferenceBLBP)
    optimized_seconds = best_pass(BLBP)
    # The columnar pass gets its derived planes up front, mirroring how
    # campaigns run it: exec workers pull the plane from the RPDERIV1
    # cache, so derivation is a one-time cost amortized across cells,
    # not part of the per-pass hot path.
    planes = {trace.name: compute_derived(trace) for trace in traces}
    columnar_seconds = None
    for _ in range(repeats):
        started = time.perf_counter()
        for trace in traces:
            simulate(BLBP(), trace, backend="columnar",
                     derived=planes[trace.name])
        elapsed = time.perf_counter() - started
        if columnar_seconds is None or elapsed < columnar_seconds:
            columnar_seconds = elapsed
    return {
        "environment": environment_metadata(),
        "traces": [trace.name for trace in traces],
        "records": records,
        "scale": scale,
        "stride": stride,
        "repeats": repeats,
        "reference_seconds": round(reference_seconds, 4),
        "optimized_seconds": round(optimized_seconds, 4),
        "columnar_seconds": round(columnar_seconds, 4),
        "reference_records_per_sec": round(records / reference_seconds),
        "optimized_records_per_sec": round(records / optimized_seconds),
        "columnar_records_per_sec": round(records / columnar_seconds),
        "speedup": round(reference_seconds / optimized_seconds, 3),
        "columnar_speedup": round(optimized_seconds / columnar_seconds, 3),
    }


def measure_checkpoint_overhead(
    scale: float, stride: int, repeats: int, interval: int = 0
) -> dict:
    """Measure checkpointing cost: off versus every-``interval`` records.

    Snapshots go to an in-memory no-op sink, so the measurement isolates
    the ``state_dict()`` + span-slicing cost the checkpoint machinery
    adds to the hot loop (disk writes are the journal's problem and
    amortize identically either way).  ``interval=0`` picks half the
    longest trace, clamped to the library default, so every trace takes
    at least one mid-trace snapshot at any ``--scale``.  Test traces are
    far shorter than ``DEFAULT_CHECKPOINT_INTERVAL``, so this snapshots
    *more* often per record than a production run — passing the gate
    here bounds default-interval overhead from above.
    """
    from repro.sim import DEFAULT_CHECKPOINT_INTERVAL
    from repro.sim.engine import simulate
    from repro.workloads.suite import suite88_specs

    entries = suite88_specs(scale)[::stride]
    traces = [entry.generate() for entry in entries]
    records = sum(len(trace) for trace in traces)
    if interval <= 0:
        longest = max(len(trace) for trace in traces)
        interval = max(1, min(DEFAULT_CHECKPOINT_INTERVAL, longest // 2))

    def one_pass(**kwargs) -> float:
        started = time.perf_counter()
        for trace in traces:
            simulate(BLBP(), trace, **kwargs)
        return time.perf_counter() - started

    snapshots = 0

    def count(_checkpoint):
        nonlocal snapshots
        snapshots += 1

    # One throwaway warmup pass, then interleave modes so cache/allocator
    # warm-up and CPU-frequency drift hit both measurements equally.
    one_pass()
    off_seconds = on_seconds = None
    for _ in range(repeats):
        off = one_pass()
        on = one_pass(checkpoint_every=interval, on_checkpoint=count)
        off_seconds = off if off_seconds is None else min(off_seconds, off)
        on_seconds = on if on_seconds is None else min(on_seconds, on)
    overhead = 100.0 * (on_seconds - off_seconds) / off_seconds
    return {
        "environment": environment_metadata(),
        "records": records,
        "scale": scale,
        "stride": stride,
        "repeats": repeats,
        "checkpoint_every": interval,
        "snapshots_per_pass": snapshots // repeats,
        "off_seconds": round(off_seconds, 4),
        "on_seconds": round(on_seconds, 4),
        "off_records_per_sec": round(records / off_seconds),
        "on_records_per_sec": round(records / on_seconds),
        "overhead_percent": round(overhead, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="BLBP reference-vs-optimized throughput gate"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller sample for CI (scale 0.5, stride 30, 2 repeats)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--stride", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail unless optimized/reference throughput ≥ this (default 2.0)",
    )
    parser.add_argument(
        "--min-columnar-speedup", type=float, default=5.0,
        help="fail unless columnar/optimized throughput ≥ this (default 5.0)",
    )
    parser.add_argument(
        "--out", default="results/throughput_blbp.json",
        help="where to write the measurement (empty string to skip)",
    )
    parser.add_argument(
        "--checkpoint-gate", action="store_true",
        help="measure mid-trace checkpoint overhead instead of the "
             "reference-vs-optimized speedup",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="snapshot interval in records for --checkpoint-gate "
             "(default: quarter of the longest trace)",
    )
    parser.add_argument(
        "--max-checkpoint-overhead", type=float, default=5.0,
        help="fail --checkpoint-gate when periodic snapshots cost more "
             "than this percent (default 5)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.5 if args.quick else 1.0)
    stride = args.stride if args.stride is not None else (30 if args.quick else 10)
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 3)

    if args.checkpoint_gate:
        summary = measure_checkpoint_overhead(
            scale, stride, repeats, args.checkpoint_every
        )
        print(
            f"checkpointing off  {summary['off_records_per_sec']:>10,} "
            f"records/s  ({summary['off_seconds']:.2f}s, "
            f"{summary['records']:,} records)"
        )
        print(
            f"every {summary['checkpoint_every']:>6,}      "
            f"{summary['on_records_per_sec']:>10,} records/s  "
            f"({summary['on_seconds']:.2f}s, "
            f"{summary['snapshots_per_pass']} snapshots/pass)"
        )
        print(
            f"overhead           {summary['overhead_percent']:.2f}%  "
            f"(gate: <{args.max_checkpoint_overhead}%)"
        )
        out = args.out
        if out == parser.get_default("out"):
            out = "results/checkpoint_overhead.json"
        if out:
            out_path = Path(out)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(json.dumps(summary, indent=2) + "\n")
            print(f"wrote {out_path}")
        if summary["overhead_percent"] >= args.max_checkpoint_overhead:
            print(
                f"FAIL: checkpoint overhead "
                f"{summary['overhead_percent']:.2f}% is not below "
                f"{args.max_checkpoint_overhead}% gate",
                file=sys.stderr,
            )
            return 1
        return 0

    summary = measure_speedup(scale, stride, repeats)
    print(
        f"ReferenceBLBP  {summary['reference_records_per_sec']:>10,} records/s"
        f"  ({summary['reference_seconds']:.2f}s, {summary['records']:,} records)"
    )
    print(
        f"BLBP           {summary['optimized_records_per_sec']:>10,} records/s"
        f"  ({summary['optimized_seconds']:.2f}s)"
    )
    print(
        f"BLBP columnar  {summary['columnar_records_per_sec']:>10,} records/s"
        f"  ({summary['columnar_seconds']:.2f}s)"
    )
    print(f"speedup        {summary['speedup']:.2f}x  (gate: ≥{args.min_speedup}x)")
    print(
        f"columnar       {summary['columnar_speedup']:.2f}x over scalar BLBP"
        f"  (gate: ≥{args.min_columnar_speedup}x)"
    )

    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {out_path}")

    if summary["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {summary['speedup']:.2f}x below "
            f"{args.min_speedup}x gate",
            file=sys.stderr,
        )
        return 1
    if summary["columnar_speedup"] < args.min_columnar_speedup:
        print(
            f"FAIL: columnar speedup {summary['columnar_speedup']:.2f}x "
            f"below {args.min_columnar_speedup}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
