"""VPC's conditional-accuracy degradation (§4.2).

The paper reports that sharing the conditional predictor with VPC's
virtual branches costs 2.05% conditional accuracy.  This bench measures
the same quantity: the multiperspective perceptron's accuracy on real
conditional branches when standalone vs when shared with VPC, over a
suite subsample.
"""

from benchmarks.conftest import run_once
from repro.cond import MultiperspectivePerceptron
from repro.predictors import VPCPredictor
from repro.sim.engine import simulate, simulate_conditional
from repro.workloads.suite import env_scale, suite88_specs


def _traces():
    return [entry.generate() for entry in suite88_specs(env_scale())[::8]]


def _run(traces):
    standalone_rates = []
    shared_rates = []
    for trace in traces:
        standalone = simulate_conditional(MultiperspectivePerceptron(), trace)
        standalone_rates.append(1.0 - standalone.misprediction_rate())
        vpc = VPCPredictor()
        simulate(vpc, trace)
        shared_rates.append(vpc.conditional_accuracy())
    mean = lambda xs: sum(xs) / len(xs)
    return mean(standalone_rates), mean(shared_rates)


def test_vpc_conditional_degradation(benchmark):
    traces = _traces()
    standalone, shared = run_once(benchmark, _run, traces)
    degradation = 100.0 * (standalone - shared)
    print()
    print("Conditional accuracy of the shared MPP (mean over subsample):")
    print(f"  standalone        {100 * standalone:7.3f}%")
    print(f"  shared with VPC   {100 * shared:7.3f}%")
    print(f"  degradation       {degradation:7.3f} points (paper: 2.05%)")
    print(
        "  note: our VPC trains virtual branches without shifting the\n"
        "  shared history register (DESIGN.md §5), which removes the\n"
        "  history-pollution component of the paper's 2.05% degradation —\n"
        "  the residual interference is weight-table pressure only."
    )
    # The paper's degradation is ~2 points; with history pollution
    # removed, the residual interference must stay within ±3 points.
    assert abs(degradation) < 3.0
