"""Sampled-simulation accuracy and speedup gate.

Builds a long phase-structured trace (five workload phases with
distinct branch mixes), round-trips it through the ChampSim text
adapter so the measured input is a genuinely *ingested* external
trace, then compares full simulation against SimPoint-style sampled
simulation (:func:`repro.sim.simulate_sampled`) for each predictor:

* **wall clock** — full replay vs plan construction + region replay
  (both arms on the scalar backend, best-of-``repeats``);
* **accuracy** — full-trace MPKI vs the weighted region estimate.

The phases use moderate Markov determinism (0.55-0.65) so learning
predictors reach their entropy floor quickly; on such stationary
workloads the SimPoint estimate is unbiased.  High-determinism traces
whose full MPKI is dominated by the cold-start learning transient are
exactly where truncated-warm-up sampling is known to drift — see
docs/ingestion.md for the caveats.

Run as the CI gate::

    PYTHONPATH=src python benchmarks/bench_sampling.py --quick --gate

``--gate`` exits non-zero unless, for every predictor, the sampled
wall-clock speedup clears ``--min-speedup`` (default 5x) and the MPKI
relative error stays under ``--max-error`` (default 10%).  The
measurement is written to ``results/sampling_accuracy.json`` with
host-environment metadata.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.common.envinfo import environment_metadata
from repro.core.blbp import BLBP
from repro.predictors import ITTAGE, BranchTargetBuffer
from repro.sim import simulate, simulate_sampled
from repro.trace.ingest import write_champsim_trace
from repro.trace.sampling import simpoint_plan
from repro.trace.source import FileSource
from repro.trace.stream import Trace
from repro.workloads import (
    CallReturnSpec,
    InterpreterSpec,
    SwitchCaseSpec,
    VirtualDispatchSpec,
)

PREDICTORS = {"BTB": BranchTargetBuffer, "ITTAGE": ITTAGE, "BLBP": BLBP}


def phase_specs(records_per_phase: int):
    """Five phases with distinct branch mixes and target entropies."""
    n = records_per_phase
    return [
        VirtualDispatchSpec(
            name="ph-vd8", seed=11, num_records=n,
            num_sites=4, num_types=8, determinism=0.6,
        ),
        SwitchCaseSpec(
            name="ph-sw24", seed=22, num_records=n,
            num_cases=24, determinism=0.55,
        ),
        InterpreterSpec(name="ph-interp", seed=33, num_records=n),
        CallReturnSpec(
            name="ph-cr12", seed=44, num_records=n,
            num_callbacks=12, determinism=0.6,
        ),
        VirtualDispatchSpec(
            name="ph-vd16", seed=55, num_records=n,
            num_sites=2, num_types=16, determinism=0.65,
        ),
    ]


def build_phased_trace(records_per_phase: int) -> Trace:
    """Concatenate the phase traces into one long phase-structured run."""
    segments = [spec.generate() for spec in phase_specs(records_per_phase)]
    return Trace(
        "phased-long",
        np.concatenate([t.pcs for t in segments]),
        np.concatenate([t.types for t in segments]),
        np.concatenate([t.takens for t in segments]),
        np.concatenate([t.targets for t in segments]),
        np.concatenate([t.gaps for t in segments]),
    )


def ingest_round_trip(trace: Trace, directory: Path) -> Trace:
    """Write the trace as ChampSim text and re-ingest it via FileSource."""
    path = directory / "phased-long.champsim.txt"
    write_champsim_trace(trace, path)
    return FileSource(path).trace()


def measure_sampling(
    records_per_phase: int,
    interval_records: int,
    max_regions: int,
    warmup_intervals: int,
    repeats: int,
) -> dict:
    """Full vs sampled wall clock and MPKI for each predictor.

    Both arms replay on the scalar backend so the comparison isolates
    the record reduction (plus plan overhead) from backend choice.
    MPKI values are asserted identical across repeats — sampling is
    deterministic end to end.
    """
    trace = build_phased_trace(records_per_phase)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        ingested = ingest_round_trip(trace, Path(tmp))
    if len(ingested) != len(trace):
        raise AssertionError("ChampSim round-trip changed the record count")

    plan = simpoint_plan(
        ingested, interval_records,
        max_regions=max_regions, warmup_intervals=warmup_intervals,
    )
    rows = []
    for name, factory in PREDICTORS.items():
        best_full = best_sampled = None
        full_mpki = estimated_mpki = None
        for _ in range(repeats):
            started = time.perf_counter()
            full = simulate(factory(), ingested)
            full_elapsed = time.perf_counter() - started

            started = time.perf_counter()
            # Plan construction is charged to the sampled arm: a real
            # consumer pays for clustering before the first region runs.
            run_plan = simpoint_plan(
                ingested, interval_records,
                max_regions=max_regions, warmup_intervals=warmup_intervals,
            )
            sampled = simulate_sampled(
                factory, ingested, plan=run_plan
            )
            sampled_elapsed = time.perf_counter() - started

            if full_mpki is not None and (
                full.mpki() != full_mpki
                or sampled.estimated_mpki != estimated_mpki
            ):
                raise AssertionError(f"{name} MPKI drifted across repeats")
            full_mpki = full.mpki()
            estimated_mpki = sampled.estimated_mpki
            best_full = (
                full_elapsed if best_full is None
                else min(best_full, full_elapsed)
            )
            best_sampled = (
                sampled_elapsed if best_sampled is None
                else min(best_sampled, sampled_elapsed)
            )
        relative_error = (
            abs(estimated_mpki - full_mpki) / full_mpki
            if full_mpki else 0.0
        )
        rows.append({
            "predictor": name,
            "full_mpki": round(full_mpki, 4),
            "estimated_mpki": round(estimated_mpki, 4),
            "relative_error": round(relative_error, 4),
            "full_seconds": round(best_full, 4),
            "sampled_seconds": round(best_sampled, 4),
            "speedup": round(best_full / best_sampled, 2),
        })

    return {
        "environment": environment_metadata(),
        "records": len(ingested),
        "records_per_phase": records_per_phase,
        "phases": [spec.name for spec in phase_specs(records_per_phase)],
        "interval_records": interval_records,
        "max_regions": max_regions,
        "warmup_intervals": warmup_intervals,
        "regions": len(plan.regions),
        "replayed_records": plan.replayed_records,
        "record_reduction": round(len(ingested) / plan.replayed_records, 2),
        "repeats": repeats,
        "predictors": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="sampled-simulation accuracy and speedup gate"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="single repeat for CI (same trace and plan geometry)",
    )
    parser.add_argument(
        "--records-per-phase", type=int, default=200_000,
        help="records per workload phase (5 phases total)",
    )
    parser.add_argument("--interval", type=int, default=10_000)
    parser.add_argument("--regions", type=int, default=5)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--gate", action="store_true",
        help="exit non-zero unless every predictor clears both bounds",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="minimum sampled wall-clock speedup (default 5x)",
    )
    parser.add_argument(
        "--max-error", type=float, default=0.10,
        help="maximum MPKI relative error (default 0.10)",
    )
    parser.add_argument(
        "--out", default="results/sampling_accuracy.json",
        help="where to write the measurement (empty string to skip)",
    )
    args = parser.parse_args(argv)
    repeats = (
        args.repeats if args.repeats is not None
        else (1 if args.quick else 2)
    )

    summary = measure_sampling(
        args.records_per_phase, args.interval, args.regions,
        args.warmup, repeats,
    )
    print(
        f"trace     {summary['records']:,} records, "
        f"{summary['regions']} regions of {summary['interval_records']:,} "
        f"(+{summary['warmup_intervals']} warm-up intervals), "
        f"{summary['replayed_records']:,} replayed "
        f"({summary['record_reduction']:.1f}x record reduction)"
    )
    for row in summary["predictors"]:
        print(
            f"{row['predictor']:<8} full {row['full_mpki']:>8.4f} MPKI "
            f"({row['full_seconds']:.2f}s)  "
            f"est {row['estimated_mpki']:>8.4f} MPKI "
            f"({row['sampled_seconds']:.2f}s)  "
            f"err {row['relative_error'] * 100:>5.1f}%  "
            f"speedup {row['speedup']:.1f}x"
        )
    if args.gate:
        print(
            f"gate      ≥{args.min_speedup}x speedup, "
            f"≤{args.max_error * 100:.0f}% relative error"
        )

    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {out_path}")

    if args.gate:
        failures = []
        for row in summary["predictors"]:
            if row["speedup"] < args.min_speedup:
                failures.append(
                    f"{row['predictor']} speedup {row['speedup']:.2f}x "
                    f"below {args.min_speedup}x"
                )
            if row["relative_error"] > args.max_error:
                failures.append(
                    f"{row['predictor']} relative error "
                    f"{row['relative_error'] * 100:.1f}% above "
                    f"{args.max_error * 100:.0f}%"
                )
        if failures:
            print("FAIL: " + "; ".join(failures), file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
