"""Design-space search engine: wall-clock speedup and determinism.

Not a paper artifact — an infrastructure benchmark for the
:mod:`repro.search` engine.  It runs the same seeded hill-climbing
search twice, serial (``jobs=1``) and parallel (``jobs=N``), prints the
wall-clock comparison, and asserts the two searches walk the identical
trajectory: same evaluation count, same generations, byte-identical
leaderboard.  Determinism is asserted unconditionally — on any host,
any core count — mirroring ``bench_parallel.py``.
"""

import os
import time

from benchmarks.conftest import run_once
from repro.search import (
    GenerationEvaluator,
    HillClimb,
    leaderboard_to_json,
    run_search,
    sizing_space,
)
from repro.workloads.suite import env_scale, suite88_specs

SEED = 0xB1B0
BUDGET = 12
BATCH = 4


def _search_inputs():
    """4 traces × a 12-candidate hill-climb = up to 48 simulation cells."""
    entries = suite88_specs(env_scale())[::22]
    return [entry.generate() for entry in entries]


def _run(traces, jobs):
    strategy = HillClimb(sizing_space(), seed=SEED, batch_size=BATCH)
    started = time.perf_counter()
    with GenerationEvaluator(traces, jobs=jobs) as evaluator:
        result = run_search(strategy, evaluator, budget=BUDGET)
    return result, time.perf_counter() - started


def _compare(jobs):
    traces = _search_inputs()
    serial, serial_seconds = _run(traces, 1)
    parallel, parallel_seconds = _run(traces, jobs)
    return serial, parallel, serial_seconds, parallel_seconds


def test_search_speedup_and_determinism(benchmark):
    jobs = min(4, os.cpu_count() or 1) if (os.cpu_count() or 1) > 1 else 2
    serial, parallel, serial_s, parallel_s = run_once(
        benchmark, _compare, jobs
    )

    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    print()
    print(
        f"Search execution: {BUDGET} evaluations, "
        f"host cores={os.cpu_count()}"
    )
    print(f"  serial              {serial_s:8.2f}s")
    print(f"  parallel (jobs={jobs})   {parallel_s:8.2f}s")
    print(f"  speedup             {speedup:8.2f}x")
    print(f"  best mean MPKI      {serial.best_score:8.4f}")

    # Determinism: the parallel search walks the serial trajectory.
    assert parallel.evaluations == serial.evaluations == BUDGET
    assert parallel.generations == serial.generations
    assert leaderboard_to_json(parallel.leaderboard) == leaderboard_to_json(
        serial.leaderboard
    )

    # Speedup claim only where parallelism is physically possible.
    if (os.cpu_count() or 1) >= 2:
        assert parallel_s < serial_s, (
            f"parallel ({parallel_s:.2f}s) slower than serial "
            f"({serial_s:.2f}s) on a {os.cpu_count()}-core host"
        )
