"""Extension bench: hierarchical IBTB (§6 future work).

§5.3 shows the IBTB needs 64-way associativity; §6 proposes a hierarchy
of structures to avoid it.  This bench compares three BLBP variants —
the monolithic 64-way Table 2 IBTB, a monolithic 8-way IBTB (the §5.3
failure case), and the two-level hierarchy (64-entry fully-associative
L1 over an 8-way L2) — over a suite subsample.
"""

import dataclasses

from benchmarks.conftest import run_once
from repro.core import BLBP
from repro.core.config import BLBPConfig
from repro.sim.runner import run_campaign
from repro.workloads.suite import env_scale, suite88_specs


def _traces():
    return [entry.generate() for entry in suite88_specs(env_scale())[::8]]


def _run(traces):
    configs = {
        "mono-64way": BLBPConfig(),
        "mono-8way": dataclasses.replace(
            BLBPConfig(), ibtb_ways=8, ibtb_sets=512
        ),
        "hier-L1/8way": dataclasses.replace(
            BLBPConfig(), use_hierarchical_ibtb=True
        ),
    }
    factories = {
        label: (lambda cfg: (lambda: BLBP(cfg)))(config)
        for label, config in configs.items()
    }
    return run_campaign(traces, factories)


def test_hierarchical_ibtb(benchmark):
    traces = _traces()
    campaign = run_once(benchmark, _run, traces)
    mono64 = campaign.mean_mpki("mono-64way")
    mono8 = campaign.mean_mpki("mono-8way")
    hier = campaign.mean_mpki("hier-L1/8way")
    print()
    print("IBTB organization (mean MPKI):")
    print(f"  monolithic 64-way      {mono64:8.4f}")
    print(f"  monolithic 8-way       {mono8:8.4f}")
    print(f"  hierarchy L1 + 8-way   {hier:8.4f}")
    # Low associativity must hurt, and the hierarchy must recover most
    # of the gap (the §6 hypothesis).
    assert mono8 > mono64
    assert hier < mono8
    assert hier < mono64 + 0.5 * (mono8 - mono64)
