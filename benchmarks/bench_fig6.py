"""Figure 6: polymorphism in workloads.

Regenerates the per-trace share of indirect executions coming from
polymorphic (multi-target) branches, ordered ascending as in the paper.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure6, format_figure6


def test_figure6(benchmark, suite_stats):
    series = run_once(benchmark, figure6, suite_stats)
    print()
    print(format_figure6(suite_stats))
    assert len(series) == 88
    values = [share for _, share in series]
    assert values == sorted(values)
    # The suite must span a wide polymorphism range (paper: many traces
    # dominated by monomorphic branches, many nearly fully polymorphic).
    assert values[0] < 70.0
    assert values[-1] > 95.0
