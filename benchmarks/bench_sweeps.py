"""Design-choice sweeps behind the paper's fixed parameters (§3.7).

Three sweeps over a suite subsample, each holding everything else at
the Table 2 configuration:

* weight width 2..6 bits — §3.7 claims 4 bits is the sweet spot;
* predicted target bits K = 4..16 — the paper uses 12;
* weight-table rows 128..2048 — the paper's budget implies 1024.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.sweeps import (
    format_sweep,
    run_sweep,
    table_rows_sweep,
    target_bits_sweep,
    weight_bits_sweep,
)
from repro.workloads.suite import env_scale, suite88_specs


@pytest.fixture(scope="module")
def sweep_traces():
    return [entry.generate() for entry in suite88_specs(env_scale())[::10]]


def test_weight_bits_sweep(benchmark, sweep_traces):
    results = run_once(benchmark, run_sweep, weight_bits_sweep(),
                       traces=sweep_traces)
    print()
    print(format_sweep("weight width (paper: 4 bits sufficient)", results))
    # The measurable §3.7 claim at our scale: 4-bit weights sit within a
    # few percent of the best width, and widening past 4 bits buys
    # nothing (accuracy saturates; only area grows).
    best = min(results.values())
    assert results["weights=4b"] < best * 1.08
    assert results["weights=6b"] > results["weights=4b"] * 0.92


def test_target_bits_sweep(benchmark, sweep_traces):
    results = run_once(benchmark, run_sweep, target_bits_sweep(),
                       traces=sweep_traces)
    print()
    print(format_sweep("predicted target bits K (paper: 12)", results))
    # Too few bits cannot separate targets; K=12 must beat K=4 clearly.
    assert results["K=12"] < results["K=4"]
    # K=16 must not be much better than K=12.
    assert results["K=16"] > results["K=12"] * 0.85


def test_table_rows_sweep(benchmark, sweep_traces):
    results = run_once(benchmark, run_sweep, table_rows_sweep(),
                       traces=sweep_traces)
    print()
    print(format_sweep("weight-table rows (paper budget: 1024)", results))
    # Capacity must help monotonically-ish from 128 to 1024.
    assert results["rows=1024"] < results["rows=128"]
