"""Figure 7: distribution of the number of potential targets.

Regenerates the CCDF over static indirect branches: for x = 1..64, the
percentage of branches with at least x distinct observed targets.  The
paper's findings: the majority of indirect branches have no more than 5
potential targets, and only ~10% have more than 20.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure7, format_figure7


def test_figure7(benchmark, suite_stats):
    series = run_once(benchmark, figure7, suite_stats)
    print()
    print(format_figure7(suite_stats))
    assert series[0] == 100.0
    assert all(a >= b for a, b in zip(series, series[1:]))
    # Majority of branches with <= 5 targets:
    assert series[5] < 50.0
    # Small tail above 20 targets (paper: ~10%).
    assert series[20 - 1] < 25.0
    assert series[20 - 1] > 0.5
