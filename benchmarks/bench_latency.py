"""§3.7's selection-latency claim.

"A feasible implementation could compute 5 cosine similarities per
cycle ... taking only one cycle for over half of all predictions and no
more than 4 cycles for 90% of the predictions."  This bench profiles
BLBP's candidate-set sizes over a suite subsample and checks both
percentiles at 5 similarities/cycle.
"""

from benchmarks.conftest import run_once
from repro.core import BLBP
from repro.sim.latency import (
    LatencyProfile,
    format_latency_profile,
    profile_selection_latency,
)
from repro.workloads.suite import env_scale, suite88_specs


def _run():
    traces = [entry.generate() for entry in suite88_specs(env_scale())[::8]]
    pooled = LatencyProfile(trace_name="suite", similarities_per_cycle=5)
    for trace in traces:
        pooled.merge(profile_selection_latency(BLBP(), trace))
    return pooled


def test_selection_latency(benchmark):
    profile = run_once(benchmark, _run)
    print()
    print(format_latency_profile(profile))
    print("  (paper: >50% in one cycle, 90% within 4 cycles — our suite's")
    print("   dynamic mix is heavier in megamorphic dispatch, see Fig. 7)")
    # The paper's claims, with head-room for our megamorphic-heavier mix:
    assert profile.fraction_within(1) > 0.40   # paper: > 0.5
    assert profile.fraction_within(4) > 0.70   # paper: > 0.9
    # And the distribution must be short-dominated overall:
    assert profile.mean_cycles() < 4.0
