"""Shared fixtures for the benchmark harness.

Benchmarks regenerate the paper's tables and figures.  The expensive
inputs (the 88-trace suite and the 4-predictor campaign) are produced
once per session through :mod:`repro.experiments.runcache` and shared by
every bench.  Trace lengths honour ``REPRO_SCALE``
(``small``/``medium``/``full`` or a float; default medium = 3x).
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import predictor_factories
from repro.experiments.runcache import (
    get_campaign,
    get_suite_stats,
    get_suite_traces,
)


@pytest.fixture(scope="session")
def suite_traces():
    return get_suite_traces()


@pytest.fixture(scope="session")
def suite_stats():
    return get_suite_stats()


@pytest.fixture(scope="session")
def campaign():
    """The full 88-trace x 4-predictor campaign (cached per session)."""
    return get_campaign(predictor_factories())


@pytest.fixture(scope="session")
def cbp4_campaign():
    pair = {
        name: factory
        for name, factory in predictor_factories().items()
        if name in ("ITTAGE", "BLBP")
    }
    return get_campaign(pair, suite="cbp4")


def run_once(benchmark, func, *args, **kwargs):
    """Run a whole-experiment bench exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
