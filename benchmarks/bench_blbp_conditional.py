"""Extension bench: BLBP as a conditional predictor (§6 future work).

Runs the BLBP-derived direction predictor against the hashed perceptron
(the paper's simulation substrate) and TAGE on the conditional streams
of a suite subsample, reporting conditional mispredictions per
kilo-instruction.
"""

from benchmarks.conftest import run_once
from repro.cond import BLBPConditional, HashedPerceptron, TAGE, GShare
from repro.sim.engine import simulate_conditional
from repro.workloads.suite import env_scale, suite88_specs


def _traces():
    return [entry.generate() for entry in suite88_specs(env_scale())[::8]]


def _run(traces):
    factories = {
        "gshare": GShare,
        "hashed-perceptron": HashedPerceptron,
        "TAGE": TAGE,
        "BLBP-cond": BLBPConditional,
    }
    means = {}
    for name, factory in factories.items():
        values = [
            simulate_conditional(factory(), trace).mpki() for trace in traces
        ]
        means[name] = sum(values) / len(values)
    return means


def test_blbp_conditional(benchmark):
    traces = _traces()
    means = run_once(benchmark, _run, traces)
    print()
    print("Conditional-direction MPKI (mean over subsample):")
    for name, mpki in means.items():
        print(f"  {name:<18} {mpki:8.4f}")
    # The consolidation claim: BLBP's machinery predicts directions
    # competitively with the dedicated conditional predictors.
    assert means["BLBP-cond"] < 1.5 * means["hashed-perceptron"] + 0.1
    assert means["BLBP-cond"] < means["gshare"] * 1.2
