"""Serving throughput gate: concurrent sessions over the TCP server.

Boots a real :class:`~repro.serve.server.PredictionServer` on an
ephemeral localhost port and drives fleets of concurrent sessions
through the load driver (``repro.serve.client``): pipelined event
messages over a handful of connections, with many sessions sharing the
same deterministic event stream so the server's cross-session fused
batching engages.  One sweep row per fleet size — the full sweep's
largest row is ≥ 1000 concurrent sessions, the subsystem's headline
capacity claim.

Every row self-checks correctness the cheap way: sessions that share a
stream and a predictor must close with identical ``state_hash`` and
MPKI (fused batching, eviction, and scheduling are invisible in
results); the bit-level equivalence against ``simulate`` is pinned by
``tests/serve``.

Run as the CI gate::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick --gate

``--gate`` exits non-zero unless the largest row clears
``--min-events-per-sec``.  The sweep is written to
``results/throughput_serve.json`` with host-environment metadata.
"""

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.common.envinfo import environment_metadata
from repro.serve.client import drive_load, session_plan
from repro.serve.server import PredictionServer

#: (sessions, events per session, max resident) sweep rows.
FULL_ROWS = [(50, 100, 1024), (250, 100, 1024), (1000, 100, 1024)]
QUICK_ROWS = [(20, 60, 1024), (100, 60, 64)]


def _check_row_consistency(outcome, predictors, distinct_streams):
    """Sessions sharing (stream, predictor) must close identically."""
    groups = {}
    plan = session_plan(
        outcome["sessions"], predictors, distinct_streams
    )
    for session_id, predictor, stream_index in plan:
        closed = outcome["closed"][session_id]
        key = (predictor, stream_index)
        expected = groups.setdefault(key, closed)
        if closed != expected:
            raise AssertionError(
                f"session {session_id} drifted from its stream group "
                f"{key}: {closed} != {expected}"
            )


async def _measure_row(sessions, events_per_session, max_resident, args):
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        server = PredictionServer(
            state_dir=Path(tmp) / "state",
            max_resident=max_resident,
            batch_window=args.batch_window,
            workers=args.workers,
        )
        port = await server.start()
        try:
            outcome = await drive_load(
                "127.0.0.1",
                port,
                sessions=sessions,
                events_per_session=events_per_session,
                connections=args.connections,
                window=args.window,
                distinct_streams=args.distinct_streams,
            )
            stats = server.stats()
        finally:
            await server.stop()

    _check_row_consistency(
        outcome, outcome["predictors"], args.distinct_streams
    )
    batching = stats["batching"]
    return {
        "sessions": sessions,
        "events_per_session": events_per_session,
        "max_resident": max_resident,
        "events": outcome["events"],
        "elapsed_seconds": outcome["elapsed_seconds"],
        "events_per_second": outcome["events_per_second"],
        "connections": outcome["connections"],
        "predictors": outcome["predictors"],
        "distinct_streams": outcome["distinct_streams"],
        "mean_sessions_per_batch": batching["mean_sessions_per_batch"],
        "mean_events_per_batch": batching["mean_events_per_batch"],
        "fused_share": batching["fused_share"],
        "evicted": stats["sessions"]["evicted"],
        "rehydrated": stats["sessions"]["rehydrated"],
    }


def measure_serving(rows, args) -> dict:
    measured = []
    for sessions, events_per_session, max_resident in rows:
        row = asyncio.run(
            _measure_row(sessions, events_per_session, max_resident, args)
        )
        measured.append(row)
        print(
            f"{row['sessions']:>5} sessions  "
            f"{row['events_per_second']:>9.2f} events/s  "
            f"({row['events']} events in {row['elapsed_seconds']:.2f}s, "
            f"{row['mean_sessions_per_batch']:.1f} sessions/batch, "
            f"fused share {row['fused_share']:.2f}, "
            f"{row['evicted']} evictions)"
        )
    return {
        "environment": environment_metadata(),
        "batch_window": args.batch_window,
        "workers": args.workers,
        "rows": measured,
        "max_sessions": max(row["sessions"] for row in measured),
        "peak_events_per_second": max(
            row["events_per_second"] for row in measured
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="concurrent-session serving throughput gate"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller fleets for CI (largest row 100 sessions)",
    )
    parser.add_argument(
        "--sessions", type=int, default=None,
        help="run one row with this many sessions instead of the sweep",
    )
    parser.add_argument("--events", type=int, default=100,
                        help="events per session for --sessions rows")
    parser.add_argument("--max-resident", type=int, default=1024)
    parser.add_argument("--batch-window", type=float, default=0.002)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--window", type=int, default=16,
                        help="pipelined messages per connection")
    parser.add_argument("--distinct-streams", type=int, default=16)
    parser.add_argument(
        "--gate", action="store_true",
        help="exit non-zero unless the largest row clears the floor",
    )
    parser.add_argument(
        "--min-events-per-sec", type=float, default=500.0,
        help="throughput floor for the largest row (default 500)",
    )
    parser.add_argument(
        "--out", default="results/throughput_serve.json",
        help="where to write the sweep (empty string to skip)",
    )
    args = parser.parse_args(argv)

    if args.sessions is not None:
        rows = [(args.sessions, args.events, args.max_resident)]
    else:
        rows = QUICK_ROWS if args.quick else FULL_ROWS

    summary = measure_serving(rows, args)
    largest = max(summary["rows"], key=lambda row: row["sessions"])
    print(
        f"largest fleet: {largest['sessions']} sessions at "
        f"{largest['events_per_second']:.2f} events/s"
        + (
            f"  (gate: ≥{args.min_events_per_sec:.0f} events/s)"
            if args.gate
            else ""
        )
    )

    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {out_path}")

    if args.gate and largest["events_per_second"] < args.min_events_per_sec:
        print(
            f"FAIL: {largest['events_per_second']:.2f} events/s below the "
            f"{args.min_events_per_sec:.0f} events/s gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
