"""Parallel execution engine: wall-clock speedup and determinism.

Not a paper artifact — an infrastructure benchmark for the
:mod:`repro.exec` campaign engine.  It runs one multi-cell campaign
twice, serial (`run_campaign`) and parallel
(`run_campaign_parallel(jobs=N)`), prints the wall-clock comparison,
and asserts the two produce *identical* results.  On a multi-core host
the parallel run must not be slower than serial (and is typically
close to N× faster once cells are long enough to amortize worker
startup); on a single-core host only the determinism assertions apply.
"""

import os
import time

from benchmarks.conftest import run_once
from repro.exec import run_campaign_parallel
from repro.predictors import ITTAGE, BranchTargetBuffer
from repro.sim.runner import run_campaign
from repro.workloads.suite import suite88_specs


def _campaign_inputs():
    """A modest slice of the suite: 6 traces × 2 predictors = 12 cells."""
    entries = suite88_specs(1.0)[::15]
    traces = [entry.generate() for entry in entries]
    factories = {"BTB": BranchTargetBuffer, "ITTAGE": ITTAGE}
    return traces, factories


def _compare(jobs):
    traces, factories = _campaign_inputs()

    started = time.perf_counter()
    serial = run_campaign(traces, factories)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_campaign_parallel(traces, factories, jobs=jobs)
    parallel_seconds = time.perf_counter() - started

    return serial, parallel, serial_seconds, parallel_seconds


def test_parallel_speedup_and_determinism(benchmark):
    jobs = min(4, os.cpu_count() or 1) if (os.cpu_count() or 1) > 1 else 2
    serial, parallel, serial_s, parallel_s = run_once(
        benchmark, _compare, jobs
    )

    cells = len(serial.traces()) * len(serial.predictors())
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    print()
    print(f"Campaign execution: {cells} cells, host cores={os.cpu_count()}")
    print(f"  serial              {serial_s:8.2f}s")
    print(f"  parallel (jobs={jobs})   {parallel_s:8.2f}s")
    print(f"  speedup             {speedup:8.2f}x")

    # Determinism: byte-identical result cells regardless of scheduling.
    assert parallel.traces() == serial.traces()
    assert parallel.predictors() == serial.predictors()
    for trace in serial.traces():
        for predictor in serial.predictors():
            assert (
                parallel.results[trace][predictor]
                == serial.results[trace][predictor]
            ), (trace, predictor)

    # Speedup claim only where parallelism is physically possible.
    if (os.cpu_count() or 1) >= 2:
        assert parallel_s < serial_s, (
            f"parallel ({parallel_s:.2f}s) slower than serial "
            f"({serial_s:.2f}s) on a {os.cpu_count()}-core host"
        )
