"""Figure 9: relative MPKI breakdown of the four predictors.

Regenerates the paper's normalized comparison: for each benchmark the
four predictors' MPKIs as shares of their sum, showing the BTB absorbing
most of the misprediction mass everywhere.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure9, format_figure9


def test_figure9(benchmark, campaign):
    shares = run_once(benchmark, figure9, campaign)
    print()
    print(format_figure9(campaign))
    count = len(shares["benchmarks"])
    assert count == 88
    for i in range(count):
        total = sum(shares[name][i] for name in ("BTB", "VPC", "ITTAGE", "BLBP"))
        assert abs(total - 100.0) < 1e-6
    # BTB takes the largest mean share (paper's Fig. 9 shape).
    mean = lambda name: sum(shares[name]) / count
    assert mean("BTB") >= max(mean("VPC"), mean("ITTAGE"), mean("BLBP"))
