#!/usr/bin/env python3
"""Study: a complete front-end — COTTAGE vs VPC vs BLBP + TAGE.

The paper's §6 closes with consolidation: one structure predicting both
conditional directions and indirect targets.  This example compares
three front-end organizations on the same workload:

* **COTTAGE** (Seznec): TAGE directions + ITTAGE targets;
* **VPC** (Kim et al.): one multiperspective perceptron doing double
  duty through devirtualization;
* **BLBP + BLBP-cond**: the paper's predictor for targets next to its
  §6 conditional sibling sharing the same feature set.

Reported: indirect MPKI, conditional accuracy, and total storage.

Run:  python examples/frontend_study.py
"""

from repro.cond import BLBPConditional
from repro.core import BLBP
from repro.predictors import COTTAGE, VPCPredictor
from repro.sim import simulate
from repro.sim.engine import simulate_conditional
from repro.workloads import MixedSpec, SwitchCaseSpec, VirtualDispatchSpec


def build_trace():
    dispatch = VirtualDispatchSpec(
        name="vd", seed=601, num_records=20_000, num_sites=8, num_types=6,
        determinism=0.94, filler_conditionals=12,
    )
    demux = SwitchCaseSpec(
        name="sw", seed=602, num_records=20_000, num_cases=16,
        determinism=0.92, filler_conditionals=10,
    )
    return MixedSpec(
        name="frontend", seed=603, num_records=40_000,
        components=[(dispatch, 2.0), (demux, 1.0)], phase_records=4000,
    ).generate()


def main() -> None:
    trace = build_trace()
    print(f"workload: {trace}\n")

    print(f"{'front-end':<16} {'indirect MPKI':>13}  {'cond acc':>8}  {'KB':>7}")

    cottage = COTTAGE()
    result = simulate(cottage, trace)
    print(
        f"{'COTTAGE':<16} {result.mpki():>13.4f}  "
        f"{100 * cottage.conditional_accuracy():>7.2f}%  "
        f"{cottage.storage_budget().total_kilobytes():>7.1f}"
    )

    vpc = VPCPredictor()
    result = simulate(vpc, trace)
    print(
        f"{'VPC':<16} {result.mpki():>13.4f}  "
        f"{100 * vpc.conditional_accuracy():>7.2f}%  "
        f"{vpc.storage_budget().total_kilobytes():>7.1f}"
    )

    blbp = BLBP()
    indirect_result = simulate(blbp, trace)
    blbp_cond = BLBPConditional()
    cond_result = simulate_conditional(blbp_cond, trace)
    cond_accuracy = 1.0 - cond_result.misprediction_rate()
    total_kb = (
        blbp.storage_budget().total_kilobytes()
        + blbp_cond.storage_budget().total_kilobytes()
    )
    print(
        f"{'BLBP + BLBPcond':<16} {indirect_result.mpki():>13.4f}  "
        f"{100 * cond_accuracy:>7.2f}%  {total_kb:>7.1f}"
    )


if __name__ == "__main__":
    main()
