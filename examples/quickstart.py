#!/usr/bin/env python3
"""Quickstart: simulate BLBP against a BTB on one synthetic workload.

Generates a virtual-dispatch trace (polymorphic indirect calls whose
receiver type leaks into prior conditional outcomes), runs the paper's
BLBP predictor and the baseline BTB over it, and prints MPKI plus the
predictors' hardware budgets.

Run:  python examples/quickstart.py
"""

from repro import BLBP, BranchTargetBuffer, ITTAGE, simulate
from repro.workloads import VirtualDispatchSpec


def main() -> None:
    spec = VirtualDispatchSpec(
        name="quickstart",
        seed=2024,
        num_records=40_000,
        num_sites=6,
        num_types=4,
        determinism=0.95,
        filler_conditionals=12,
    )
    trace = spec.generate()
    print(f"workload: {trace}")

    for predictor in (BranchTargetBuffer(), ITTAGE(), BLBP()):
        result = simulate(predictor, trace)
        print(
            f"{predictor.name:<8} MPKI {result.mpki():7.4f}   "
            f"miss rate {100 * result.misprediction_rate():5.1f}%   "
            f"budget {predictor.storage_budget().total_kilobytes():6.1f} KB"
        )

    blbp = BLBP()
    simulate(blbp, trace)
    print("\nBLBP storage breakdown:")
    print(blbp.storage_budget().format_table())


if __name__ == "__main__":
    main()
