#!/usr/bin/env python3
"""Study: how polymorphism degree and signal noise shape predictor MPKI.

Sweeps the number of receiver types (2..32) and the signal-branch noise
(0..10%) for a virtual-dispatch workload, comparing the BTB baseline,
ITTAGE, and BLBP.  Reproduces, at example scale, the paper's motivation:
BTB accuracy collapses with polymorphism while history-based predictors
track it, and perceptron-style aggregation degrades gracefully with
noise.

Run:  python examples/virtual_dispatch_study.py
"""

from repro import BLBP, BranchTargetBuffer, ITTAGE, simulate
from repro.workloads import VirtualDispatchSpec


def run(num_types: int, signal_noise: float) -> dict:
    spec = VirtualDispatchSpec(
        name=f"vd-{num_types}-{signal_noise}",
        seed=7_000 + num_types,
        num_records=30_000,
        num_sites=4,
        num_types=num_types,
        determinism=0.96,
        signal_noise=signal_noise,
        filler_conditionals=12,
    )
    trace = spec.generate()
    return {
        predictor.name: simulate(predictor, trace).mpki()
        for predictor in (BranchTargetBuffer(), ITTAGE(), BLBP())
    }


def main() -> None:
    print("== Sweep 1: polymorphism degree (no signal noise) ==")
    print(f"{'types':>6}  {'BTB':>8}  {'ITTAGE':>8}  {'BLBP':>8}")
    for num_types in (2, 4, 8, 16, 32):
        mpki = run(num_types, 0.0)
        print(
            f"{num_types:>6}  {mpki['BTB']:>8.3f}  {mpki['ITTAGE']:>8.3f}"
            f"  {mpki['BLBP']:>8.3f}"
        )

    print("\n== Sweep 2: signal noise (8 types) ==")
    print(f"{'noise':>6}  {'BTB':>8}  {'ITTAGE':>8}  {'BLBP':>8}")
    for noise in (0.0, 0.02, 0.05, 0.10):
        mpki = run(8, noise)
        print(
            f"{noise:>6.2f}  {mpki['BTB']:>8.3f}  {mpki['ITTAGE']:>8.3f}"
            f"  {mpki['BLBP']:>8.3f}"
        )

    print(
        "\nExpected shape: BTB MPKI grows with polymorphism and stays high;"
        "\nITTAGE and BLBP stay low and degrade gracefully with noise."
    )


if __name__ == "__main__":
    main()
