#!/usr/bin/env python3
"""Ablation walk-through: what each BLBP optimization buys (Fig. 10).

Runs a reduced version of the paper's §5.2 ablation on a couple of
workloads: the SNIP-like unoptimized predictor, each optimization alone,
and the full predictor, against ITTAGE as the reference.

Run:  python examples/ablation_study.py
"""

import dataclasses

from repro import ITTAGE, simulate
from repro.core import BLBP
from repro.core.config import BLBPConfig, unoptimized_config
from repro.experiments.ablation import OPTIMIZATIONS
from repro.workloads import SwitchCaseSpec, VirtualDispatchSpec


def build_traces():
    return [
        VirtualDispatchSpec(
            name="vd", seed=501, num_records=25_000, num_sites=6,
            num_types=6, determinism=0.95, filler_conditionals=12,
        ).generate(),
        SwitchCaseSpec(
            name="sw", seed=502, num_records=25_000, num_cases=12,
            determinism=0.93, filler_conditionals=10,
        ).generate(),
    ]


def mean_mpki(factory, traces) -> float:
    values = [simulate(factory(), trace).mpki() for trace in traces]
    return sum(values) / len(values)


def main() -> None:
    traces = build_traces()
    reference = mean_mpki(ITTAGE, traces)
    print(f"ITTAGE reference: {reference:.4f} MPKI\n")

    configs = {"all optimizations off": unoptimized_config()}
    for label, field in OPTIMIZATIONS:
        configs[f"only {label} on"] = dataclasses.replace(
            unoptimized_config(), **{field: True}
        )
    configs["all optimizations on"] = BLBPConfig()

    print(f"{'configuration':<28} {'MPKI':>8}  {'vs ITTAGE':>9}")
    for label, config in configs.items():
        mpki = mean_mpki(lambda cfg=config: BLBP(cfg), traces)
        delta = 100.0 * (reference - mpki) / reference
        print(f"{label:<28} {mpki:>8.4f}  {delta:>+8.1f}%")

    print(
        "\nExpected shape (paper Fig. 10): the unoptimized predictor trails"
        "\nITTAGE; each optimization recovers part of the gap; the full"
        "\npredictor is competitive with (or ahead of) ITTAGE."
    )


if __name__ == "__main__":
    main()
