#!/usr/bin/env python3
"""Extending the library: a custom workload, validated and exported.

Shows the full downstream-user loop:

1. define a new :class:`WorkloadSpec` (a state-machine-driven protocol
   parser with two dispatch tiers);
2. validate the generated trace against the workload contract
   (``repro.workloads.validation``);
3. run the Table 2 predictors on it;
4. export the trace as CSV for use with other tools.

Run:  python examples/custom_workload.py
"""

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro import BLBP, BranchTargetBuffer, ITTAGE, simulate
from repro.trace.stream import Trace
from repro.trace.textio import write_text_trace
from repro.workloads.base import (
    AddressAllocator,
    TraceBuilder,
    WorkloadSpec,
    draw_gap,
)
from repro.workloads.markov import MarkovChain, structured_transition_matrix
from repro.workloads.validation import format_report, validate_trace


@dataclass
class ProtocolParserSpec(WorkloadSpec):
    """A two-tier protocol parser: message type selects a handler
    (first indirect dispatch), and the handler's sub-opcode selects a
    field decoder (second indirect dispatch) — dispatch correlated
    across tiers."""

    num_messages: int = 6
    num_fields: int = 4
    determinism: float = 0.94
    filler_conditionals: int = 10

    def generate(self) -> Trace:
        rng = self.rng()
        alloc = AddressAllocator()
        builder = TraceBuilder(self.name)
        driver = alloc.function()
        loop_pc = alloc.site()
        inner_pc = alloc.site()
        signal_pcs = [alloc.site() for _ in range(3)]
        dispatch1 = alloc.site()
        dispatch2 = alloc.site()
        handlers = [alloc.function() for _ in range(self.num_messages)]
        decoders = [alloc.function() for _ in range(self.num_fields)]

        chain = MarkovChain(
            structured_transition_matrix(
                self.num_messages, rng, determinism=self.determinism
            ),
            rng,
        )
        while len(builder) < self.num_records:
            message = chain.step()
            builder.conditional(loop_pc, True, driver + 8,
                                gap=draw_gap(rng, 10.0))
            for step in range(self.filler_conditionals):
                taken = step < self.filler_conditionals - 1
                builder.conditional(
                    inner_pc, taken, inner_pc + (0x10 if taken else 4), gap=2
                )
            for bit, pc in enumerate(signal_pcs):
                outcome = bool((message >> bit) & 1)
                builder.conditional(pc, outcome,
                                    pc + (0x10 if outcome else 4), gap=1)
            # Tier 1: message-type handler.
            builder.indirect_jump(dispatch1, handlers[message],
                                  gap=draw_gap(rng, 3.0))
            # Tier 2: field decoder, correlated with the message type.
            field = message % self.num_fields
            builder.indirect_jump(dispatch2, decoders[field],
                                  gap=draw_gap(rng, 3.0))
            builder.direct_jump(decoders[field] + 0x40, loop_pc, gap=2)
        return builder.build()


def main() -> None:
    spec = ProtocolParserSpec(name="protocol", seed=4242, num_records=20_000)
    trace = spec.generate()
    print(f"generated {trace}\n")

    report = validate_trace(trace)
    print(format_report(report))
    if not report.ok:
        raise SystemExit("workload violates the calibration contract")

    print()
    for predictor in (BranchTargetBuffer(), ITTAGE(), BLBP()):
        result = simulate(predictor, trace)
        print(f"{predictor.name:<8} MPKI {result.mpki():7.4f}")

    out = Path(tempfile.gettempdir()) / "protocol.csv"
    write_text_trace(trace, out)
    print(f"\ntrace exported for external tools: {out}")


if __name__ == "__main__":
    main()
