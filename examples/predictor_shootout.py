#!/usr/bin/env python3
"""Shootout: six indirect predictors over a slice of the paper's suite.

Runs the Table 2 predictors plus the two related-work extras (the 2-bit
BTB of Calder & Grunwald and Chang et al.'s Target Cache) over an
evenly-spaced sample of the 88-trace suite and prints a per-trace MPKI
table in the paper's Fig. 8 organization.

Run:  python examples/predictor_shootout.py  [--scale SMALL_FLOAT]
"""

import argparse

from repro import (
    BLBP,
    ITTAGE,
    BranchTargetBuffer,
    TargetCache,
    TwoBitBTB,
    VPCPredictor,
)
from repro.sim import format_mpki_table, run_campaign
from repro.workloads.suite import suite88_specs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="trace-length scale factor (default 1.0)")
    parser.add_argument("--stride", type=int, default=8,
                        help="take every Nth suite trace (default 8)")
    args = parser.parse_args()

    entries = suite88_specs(scale=args.scale)[:: args.stride]
    print(f"generating {len(entries)} traces at scale {args.scale} ...")
    traces = [entry.generate() for entry in entries]

    factories = {
        "BTB": BranchTargetBuffer,
        "2bit-BTB": TwoBitBTB,
        "TgtCache": TargetCache,
        "VPC": VPCPredictor,
        "ITTAGE": ITTAGE,
        "BLBP": BLBP,
    }
    campaign = run_campaign(
        traces,
        factories,
        progress=lambda trace, name, mpki: print(
            f"  {trace:<24} {name:<9} {mpki:7.4f}"
        ),
    )
    print()
    print(format_mpki_table(campaign, sort_by="BLBP"))


if __name__ == "__main__":
    main()
