#!/usr/bin/env python3
"""Translating MPKI into performance (§4.2's linearity argument).

The paper measures MPKI and appeals to the linear MPKI-performance
relationship to infer speedups.  This example makes the inference
concrete: it simulates the four Table 2 predictors on one workload and
converts their MPKIs into CPI and relative speedup under a
20-cycle-penalty pipeline model.

Run:  python examples/performance_impact.py
"""

from repro import BLBP, BranchTargetBuffer, ITTAGE, VPCPredictor, simulate
from repro.sim import PipelineModel
from repro.workloads import MixedSpec, SwitchCaseSpec, VirtualDispatchSpec


def build_trace():
    dispatch = VirtualDispatchSpec(
        name="vd", seed=901, num_records=20_000, num_sites=8, num_types=6,
        determinism=0.93, filler_conditionals=12,
    )
    demux = SwitchCaseSpec(
        name="sw", seed=902, num_records=20_000, num_cases=12,
        determinism=0.92, filler_conditionals=10,
    )
    return MixedSpec(
        name="perf", seed=903, num_records=36_000,
        components=[(dispatch, 2.0), (demux, 1.0)], phase_records=4000,
    ).generate()


def main() -> None:
    trace = build_trace()
    model = PipelineModel(base_cpi=0.6, indirect_penalty=20.0)
    print(f"workload: {trace}")
    print(f"pipeline model: base CPI {model.base_cpi}, "
          f"{model.indirect_penalty:.0f}-cycle misprediction penalty\n")

    results = {}
    for predictor in (BranchTargetBuffer(), VPCPredictor(), ITTAGE(), BLBP()):
        results[predictor.name] = simulate(predictor, trace)

    baseline = results["BTB"]
    print(f"{'predictor':<8} {'MPKI':>8} {'CPI':>8} {'speedup vs BTB':>15}")
    for name, result in results.items():
        speedup = model.speedup(baseline, result)
        print(
            f"{name:<8} {result.mpki():>8.3f} {model.cpi(result):>8.4f} "
            f"{speedup:>14.3f}x"
        )

    blbp = results["BLBP"]
    ittage = results["ITTAGE"]
    delta = model.speedup(ittage, blbp)
    print(
        f"\nBLBP over ITTAGE: {100 * (delta - 1):+.2f}% performance "
        f"(paper: ~5% MPKI reduction at equal area)"
    )


if __name__ == "__main__":
    main()
