#!/usr/bin/env python3
"""Study: interpreter dispatch loops and long-history prediction.

A bytecode interpreter executes a fixed program repeatedly, so its
dispatch-target sequence is periodic with the program length.  A
predictor needs history reaching back roughly one period to lock on.
This example sweeps the program length and shows where each predictor's
effective history runs out — exercising BLBP's long tuned intervals
(up to position 630) and ITTAGE's long geometric history lengths.

Run:  python examples/interpreter_dispatch.py
"""

from repro import BLBP, BranchTargetBuffer, ITTAGE, VPCPredictor, simulate
from repro.workloads import InterpreterSpec


def run(program_length: int) -> dict:
    spec = InterpreterSpec(
        name=f"interp-{program_length}",
        seed=11_000 + program_length,
        num_records=40_000,
        num_opcodes=16,
        program_length=program_length,
        data_noise=0.01,
        filler_conditionals=4,
    )
    trace = spec.generate()
    return {
        predictor.name: simulate(predictor, trace).mpki()
        for predictor in (
            BranchTargetBuffer(),
            VPCPredictor(),
            ITTAGE(),
            BLBP(),
        )
    }


def main() -> None:
    print(f"{'prog len':>8}  {'BTB':>8}  {'VPC':>8}  {'ITTAGE':>8}  {'BLBP':>8}")
    for program_length in (8, 16, 32, 64, 128):
        mpki = run(program_length)
        print(
            f"{program_length:>8}  {mpki['BTB']:>8.3f}  {mpki['VPC']:>8.3f}"
            f"  {mpki['ITTAGE']:>8.3f}  {mpki['BLBP']:>8.3f}"
        )
    print(
        "\nExpected shape: the BTB misses almost every dispatch (the next"
        "\nopcode is rarely the previous one); the history-based predictors"
        "\nstay accurate until the period outruns their reach."
    )


if __name__ == "__main__":
    main()
