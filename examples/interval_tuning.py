#!/usr/bin/env python3
"""Re-running the paper's interval tuning (§3.6 methodology).

The seven global-history intervals of BLBP were "found by starting with
geometric histories and improving with hill-climbing".  This example
re-runs that procedure on a small tuning set of synthetic workloads and
compares the result against both the GEHL starting point and the
paper's published intervals.

Run:  python examples/interval_tuning.py   (takes a couple of minutes)
"""

import dataclasses

from repro.core import BLBP
from repro.core.config import BLBPConfig, GEHL_INTERVALS, PAPER_INTERVALS
from repro.experiments.tuning import format_tuning_result, hill_climb_intervals
from repro.sim import simulate
from repro.workloads import InterpreterSpec, SwitchCaseSpec, VirtualDispatchSpec


def tuning_traces():
    return [
        VirtualDispatchSpec(
            name="tune-vd", seed=801, num_records=8000, num_types=6,
            determinism=0.94, filler_conditionals=10, signal_lag=8,
        ).generate(),
        SwitchCaseSpec(
            name="tune-sw", seed=802, num_records=8000, num_cases=12,
            determinism=0.93, filler_conditionals=8,
        ).generate(),
        InterpreterSpec(
            name="tune-in", seed=803, num_records=8000, num_opcodes=16,
            program_length=40, filler_conditionals=6,
        ).generate(),
    ]


def mean_mpki(intervals, traces):
    config = dataclasses.replace(BLBPConfig(), intervals=intervals)
    return sum(simulate(BLBP(config), t).mpki() for t in traces) / len(traces)


def main() -> None:
    traces = tuning_traces()
    print("tuning set:", ", ".join(t.name for t in traces))

    result = hill_climb_intervals(traces, iterations=40, seed=99)
    print()
    print(format_tuning_result(result))

    paper = mean_mpki(PAPER_INTERVALS, traces)
    print()
    print(f"paper's published intervals on this tuning set: {paper:.4f} MPKI")
    print(f"GEHL starting point:                            "
          f"{result.initial_mpki:.4f} MPKI")
    print(f"our hill-climbed intervals:                     "
          f"{result.best_mpki:.4f} MPKI")
    print(
        "\nThe point: hill-climbing finds workload-specific intervals that"
        "\nbeat plain geometric lengths, as §3.6 describes.  The paper's"
        "\nintervals were tuned to *their* traces, ours to ours."
    )


if __name__ == "__main__":
    main()
