#!/usr/bin/env python3
"""Study: where do the mispredictions come from?

Uses the analysis toolkit to decompose a predictor's MPKI on one trace:
the learning curve (cold-start vs steady state), the per-branch
breakdown (which static branches carry the misses), and the
steady-state MPKI with warmup excluded — the number most comparable to
the paper's billion-instruction simpoints.

Run:  python examples/warmup_analysis.py
"""

from repro.core import BLBP
from repro.predictors import ITTAGE
from repro.sim.analysis import (
    format_branch_reports,
    format_learning_curve,
    learning_curve,
    per_branch_breakdown,
    steady_state_mpki,
)
from repro.workloads import VirtualDispatchSpec


def main() -> None:
    trace = VirtualDispatchSpec(
        name="warmup-study", seed=701, num_records=30_000, num_sites=6,
        num_types=8, determinism=0.94, filler_conditionals=10,
    ).generate()
    print(f"workload: {trace}\n")

    for factory in (ITTAGE, BLBP):
        name = factory.name
        curve = learning_curve(factory(), trace, window=200)
        whole, steady = steady_state_mpki(factory, trace)
        print(f"== {name} ==")
        print(
            f"whole-trace MPKI {whole:.4f}  |  steady-state (after 50% "
            f"warmup) {steady:.4f}"
        )
        print(
            f"first-window miss rate {curve.rates[0]:.3f} -> converged "
            f"{curve.converged_rate():.3f} "
            f"(warmup ≈ {curve.warmup_windows()} windows)"
        )
        print("worst static branches:")
        print(format_branch_reports(per_branch_breakdown(factory(), trace, top=4)))
        print()

    print("full BLBP learning curve:")
    print(format_learning_curve(learning_curve(BLBP(), trace, window=400)))


if __name__ == "__main__":
    main()
