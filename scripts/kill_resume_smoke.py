#!/usr/bin/env python
"""Kill-and-resume smoke test: SIGKILL a live campaign, resume, compare.

The scenario the checkpointing layer exists for, exercised for real:

1. run a small parallel campaign to completion (the reference);
2. start the same campaign in a fresh process group, wait until a
   worker has written a mid-trace checkpoint, and ``SIGKILL`` the whole
   group — no cleanup handlers, no atexit, exactly like a preempted CI
   runner or an OOM kill;
3. rerun the campaign against the survivors (journal + checkpoint
   files) and require a ``cell_resume`` event plus **identical** MPKI
   for every cell.

Used by the ``kill-resume-smoke`` CI job; also runnable locally::

    PYTHONPATH=src python scripts/kill_resume_smoke.py
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SCALE = 8.0  # 128k-record traces: long enough to die mid-trace
STRIDE = 44  # two suite traces
CHECKPOINT_EVERY = 10_000
JOBS = 2


def drive(workdir: Path) -> None:
    """Child mode: run the campaign, print per-cell MPKI as JSON."""
    from repro.core.blbp import BLBP
    from repro.exec import LogSink, run_campaign_parallel
    from repro.predictors.ittage import ITTAGE
    from repro.workloads.suite import suite88_specs

    traces = [e.generate() for e in suite88_specs(SCALE)[::STRIDE]]
    campaign = run_campaign_parallel(
        traces,
        {"BLBP": BLBP, "ITTAGE": ITTAGE},
        jobs=JOBS,
        journal_path=workdir / "journal.jsonl",
        cache_dir=workdir / "cache",
        events=LogSink(sys.stderr),
        checkpoint_every=CHECKPOINT_EVERY,
    )
    mpki = {
        trace: {name: result.mpki() for name, result in sorted(per.items())}
        for trace, per in sorted(campaign.results.items())
    }
    print(json.dumps(mpki, sort_keys=True))


def _run_to_completion(workdir: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, __file__, "--drive", str(workdir)],
        capture_output=True, text=True, check=True, timeout=600,
    )


def _start_and_kill(workdir: Path) -> None:
    """Start the campaign, SIGKILL its process group mid-trace."""
    victim = subprocess.Popen(
        [sys.executable, __file__, "--drive", str(workdir)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,  # workers join the group; killpg gets all
    )
    checkpoint_dir = workdir / "journal.jsonl.ckpt"
    deadline = time.monotonic() + 120
    try:
        while time.monotonic() < deadline:
            if list(checkpoint_dir.glob("*.ckpt.json")):
                break
            if victim.poll() is not None:
                raise SystemExit(
                    "FAIL: campaign finished before a checkpoint appeared; "
                    "raise SCALE or lower CHECKPOINT_EVERY"
                )
            time.sleep(0.02)
        else:
            raise SystemExit("FAIL: no checkpoint appeared within 120s")
        time.sleep(0.1)  # let the worker get mid-span again
    finally:
        if victim.poll() is None:
            os.killpg(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
    if not list(checkpoint_dir.glob("*.ckpt.json")):
        raise SystemExit("FAIL: SIGKILL left no checkpoint files behind")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--drive", metavar="WORKDIR", default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.drive:
        drive(Path(args.drive))
        return 0

    with tempfile.TemporaryDirectory(prefix="kill-resume-") as tmp:
        tmp = Path(tmp)
        clean_dir = tmp / "clean"
        killed_dir = tmp / "killed"
        clean_dir.mkdir()
        killed_dir.mkdir()

        print("== reference run (uninterrupted) ==", flush=True)
        reference = _run_to_completion(clean_dir)
        print(reference.stdout.strip())

        print("== victim run (SIGKILLed mid-trace) ==", flush=True)
        _start_and_kill(killed_dir)
        journaled = (
            (killed_dir / "journal.jsonl").read_text().splitlines()
            if (killed_dir / "journal.jsonl").exists()
            else []
        )
        print(f"killed with {len(journaled)} cell(s) journaled and "
              f"{len(list((killed_dir / 'journal.jsonl.ckpt').glob('*')))} "
              f"checkpoint file(s) on disk")

        print("== resumed run ==", flush=True)
        resumed = _run_to_completion(killed_dir)
        print(resumed.stdout.strip())
        if "cell_resume" not in resumed.stderr:
            print("FAIL: resumed run never emitted cell_resume "
                  "(did not pick up the mid-trace checkpoint)",
                  file=sys.stderr)
            return 1

        if json.loads(resumed.stdout) != json.loads(reference.stdout):
            print("FAIL: resumed campaign MPKI differs from reference",
                  file=sys.stderr)
            return 1
        print("PASS: resumed campaign identical to uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
