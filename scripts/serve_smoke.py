#!/usr/bin/env python
"""Serve smoke test: SIGTERM a live server mid-stream, restart, resume.

The restart contract of ``repro serve``, exercised against real
processes and real sockets:

1. golden run — one server process hosts 50 sessions streamed to
   completion and closed; their final ``state_hash``/MPKI are the
   reference;
2. victim run — a fresh server (own state dir) receives the first half
   of every session's stream, is ``SIGTERM``ed while all 50 sessions
   are open mid-stream, and must drain every one to disk on the way
   down;
3. resumed run — a new server process on the *same* state dir; the
   driver re-opens all 50 sessions (every open must report
   ``resumed``), streams the second half, closes, and the final hashes
   and metrics must equal the golden run exactly.

Used by the ``serve-smoke`` CI job; also runnable locally::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

import asyncio
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

SESSIONS = 50
EVENTS_PER_SESSION = 120
CUT = 60  # SIGTERM lands after this many events per session
CONNECTIONS = 4

_SERVING = re.compile(r"serving on ([\d.]+):(\d+)")


class Server:
    """One ``python -m repro serve`` child process."""

    def __init__(self, state_dir: Path) -> None:
        self.state_dir = state_dir
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--state-dir", str(state_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        line = self.process.stdout.readline()
        match = _SERVING.search(line)
        if not match:
            self.process.kill()
            raise SystemExit(f"FAIL: no 'serving on' banner, got {line!r}")
        self.host, self.port = match.group(1), int(match.group(2))

    def sigterm(self) -> str:
        """SIGTERM the server; return its remaining output (drain log)."""
        self.process.send_signal(signal.SIGTERM)
        output = self.process.stdout.read()
        code = self.process.wait(timeout=60)
        if code != 0:
            raise SystemExit(f"FAIL: server exited {code}: {output}")
        return output

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=30)


def drive(port: int, **kwargs):
    from repro.serve.client import drive_load

    return asyncio.run(
        drive_load(
            "127.0.0.1",
            port,
            sessions=SESSIONS,
            events_per_session=EVENTS_PER_SESSION,
            connections=CONNECTIONS,
            **kwargs,
        )
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        tmp = Path(tmp)

        print("== golden run (uninterrupted) ==", flush=True)
        golden_server = Server(tmp / "golden")
        try:
            golden = drive(golden_server.port)
        finally:
            golden_server.sigterm()
        print(
            f"{SESSIONS} sessions closed at "
            f"{golden['events_per_second']:.0f} events/s"
        )

        print("== victim run (SIGTERM mid-stream) ==", flush=True)
        state_dir = tmp / "state"
        victim = Server(state_dir)
        try:
            drive(victim.port, count=CUT, do_close=False)
            drain_log = victim.sigterm()
        finally:
            victim.kill()
        print(drain_log.strip())
        on_disk = len(list(state_dir.glob("*.session.json")))
        if on_disk != SESSIONS:
            print(
                f"FAIL: expected {SESSIONS} drained session checkpoints, "
                f"found {on_disk}",
                file=sys.stderr,
            )
            return 1

        print("== resumed run (same state dir) ==", flush=True)
        restarted = Server(state_dir)
        try:
            resumed = drive(restarted.port, offset=CUT)
        finally:
            restarted.sigterm()
        if resumed["resumed"] != SESSIONS:
            print(
                f"FAIL: only {resumed['resumed']}/{SESSIONS} opens resumed "
                f"from the drained checkpoints",
                file=sys.stderr,
            )
            return 1
        if resumed["closed"] != golden["closed"]:
            diffs = [
                session_id
                for session_id, closed in sorted(golden["closed"].items())
                if resumed["closed"].get(session_id) != closed
            ]
            print(
                f"FAIL: {len(diffs)} session(s) diverged from golden after "
                f"resume: {diffs[:5]}",
                file=sys.stderr,
            )
            return 1
        leftover = len(list(state_dir.glob("*.session.json")))
        if leftover:
            print(
                f"FAIL: {leftover} stale checkpoint(s) after clean closes",
                file=sys.stderr,
            )
            return 1
        print(
            f"PASS: all {SESSIONS} sessions resumed bit-identical to the "
            f"uninterrupted run"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
