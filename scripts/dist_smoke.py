#!/usr/bin/env python
"""Distributed-campaign smoke test: node death, coordinator death, cmp.

The scenarios ``repro.dist`` exists to survive, exercised for real:

1. run a small campaign serially — the reference journal bytes;
2. run the same campaign on a 2-node :class:`NodePool` and ``SIGKILL``
   one worker node after its first finished cell — the campaign must
   emit ``node_down``, reschedule the dead node's cells on the
   survivor, and finish with a merged journal **byte-identical** to the
   serial reference;
3. start the distributed campaign again in a fresh process group,
   ``SIGKILL`` the whole group (coordinator + nodes) once a journal
   shard holds at least one cell, then resume: the resumed run must
   skip the shard-journaled cells and still produce byte-identical
   canonical journal bytes.

The journals are left in ``--workdir`` as ``serial.jsonl`` /
``dist.jsonl`` / ``resumed.jsonl`` so CI can ``cmp`` them again
independently.  Used by the ``dist-smoke`` CI job; also runnable
locally::

    PYTHONPATH=src python scripts/dist_smoke.py
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SCALE = 2.0   # ~32k-record traces: real work, quick smoke
STRIDE = 22   # four suite traces -> four fused units across two nodes


def _traces():
    from repro.workloads.suite import suite88_specs

    return [entry.generate() for entry in suite88_specs(SCALE)[::STRIDE]]


def drive(workdir: Path, kill_node: bool) -> None:
    """Child mode: run the distributed campaign, print per-cell MPKI.

    With ``kill_node`` the second worker node is SIGKILLed right after
    the first ``cell_finish`` lands, whichever node produced it — a
    node death with the campaign genuinely in flight.
    """
    from repro.core.blbp import BLBP
    from repro.dist import NodePool
    from repro.exec import LogSink, broadcast
    from repro.exec.plan import plan_campaign
    from repro.exec.pool import execute_plan
    from repro.predictors.ittage import ITTAGE

    plan = plan_campaign(
        _traces(), {"BLBP": BLBP, "ITTAGE": ITTAGE},
        cache_dir=workdir / "cache",
    )
    pool = NodePool(nodes=2)
    killed = []

    def assassin(event) -> None:
        if kill_node and not killed and event.kind == "cell_finish":
            survivor = event.node
            victim = next(
                client for client in pool.nodes if client.node != survivor
            )
            os.kill(victim.pid, signal.SIGKILL)
            killed.append(victim.node)
            print(f"smoke: killed {victim.node} (pid {victim.pid}) "
                  f"mid-campaign", file=sys.stderr, flush=True)

    try:
        campaign = execute_plan(
            plan,
            journal_path=workdir / "journal.jsonl",
            pool=pool,
            events=broadcast(assassin, LogSink(sys.stderr)),
        )
    finally:
        pool.close()
    if kill_node and not killed:
        raise SystemExit("FAIL: campaign ended before a cell finished")
    mpki = {
        trace: {name: result.mpki() for name, result in sorted(per.items())}
        for trace, per in sorted(campaign.results.items())
    }
    print(json.dumps(mpki, sort_keys=True))


def _run_drive(workdir: Path, kill_node: bool = False):
    command = [sys.executable, __file__, "--drive", str(workdir)]
    if kill_node:
        command.append("--kill-node")
    return subprocess.run(
        command, capture_output=True, text=True, check=True, timeout=600,
    )


def _start_and_kill_group(workdir: Path) -> None:
    """Start the distributed campaign; SIGKILL coordinator + nodes."""
    victim = subprocess.Popen(
        [sys.executable, __file__, "--drive", str(workdir)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,  # nodes join the group; killpg gets all
    )
    shard_dir = workdir / "journal.jsonl.shards"
    deadline = time.monotonic() + 180
    try:
        while time.monotonic() < deadline:
            if any(
                shard.stat().st_size > 0
                for shard in shard_dir.glob("*.jsonl")
            ):
                break
            if victim.poll() is not None:
                raise SystemExit(
                    "FAIL: campaign finished before a shard appeared; "
                    "raise SCALE"
                )
            time.sleep(0.02)
        else:
            raise SystemExit("FAIL: no journal shard appeared within 180s")
    finally:
        if victim.poll() is None:
            os.killpg(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
    if (workdir / "journal.jsonl").exists():
        raise SystemExit(
            "FAIL: canonical journal exists after a mid-campaign kill "
            "(shards should be the only survivors)"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--drive", metavar="WORKDIR", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--kill-node", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--workdir", metavar="DIR", default=None,
                        help="keep journals here for an external cmp "
                             "(default: a temporary directory)")
    args = parser.parse_args()
    if args.drive:
        drive(Path(args.drive), kill_node=args.kill_node)
        return 0

    keep = args.workdir is not None
    context = (
        tempfile.TemporaryDirectory(prefix="dist-smoke-")
        if not keep else None
    )
    root = Path(args.workdir) if keep else Path(context.name)
    root.mkdir(parents=True, exist_ok=True)
    try:
        print("== serial reference ==", flush=True)
        serial_dir = root / "serial"
        serial_dir.mkdir()
        from repro.core.blbp import BLBP
        from repro.exec.plan import plan_campaign
        from repro.exec.pool import execute_plan
        from repro.predictors.ittage import ITTAGE

        plan = plan_campaign(
            _traces(), {"BLBP": BLBP, "ITTAGE": ITTAGE},
            cache_dir=serial_dir / "cache",
        )
        reference = execute_plan(
            plan, jobs=1, journal_path=root / "serial.jsonl"
        )
        reference_mpki = {
            trace: {
                name: result.mpki()
                for name, result in sorted(per.items())
            }
            for trace, per in sorted(reference.results.items())
        }
        reference_bytes = (root / "serial.jsonl").read_bytes()

        print("== 2-node campaign, one node SIGKILLed mid-flight ==",
              flush=True)
        dist_dir = root / "dist"
        dist_dir.mkdir()
        run = _run_drive(dist_dir, kill_node=True)
        if "node_down" not in run.stderr:
            print("FAIL: no node_down event after SIGKILLing a node",
                  file=sys.stderr)
            return 1
        (root / "dist.jsonl").write_bytes(
            (dist_dir / "journal.jsonl").read_bytes()
        )
        if (root / "dist.jsonl").read_bytes() != reference_bytes:
            print("FAIL: merged journal differs from serial reference",
                  file=sys.stderr)
            return 1
        if json.loads(run.stdout) != reference_mpki:
            print("FAIL: distributed MPKI differs from reference",
                  file=sys.stderr)
            return 1
        print("node-death journal byte-identical to serial reference")

        print("== coordinator + nodes SIGKILLed, then resumed ==",
              flush=True)
        resume_dir = root / "resume"
        resume_dir.mkdir()
        _start_and_kill_group(resume_dir)
        shards = list(
            (resume_dir / "journal.jsonl.shards").glob("*.jsonl")
        )
        print(f"killed with {len(shards)} journal shard(s) on disk")
        resumed = _run_drive(resume_dir)
        if "cell_skipped" not in resumed.stderr:
            print("FAIL: resumed run re-simulated every cell "
                  "(shards were not folded in)", file=sys.stderr)
            return 1
        (root / "resumed.jsonl").write_bytes(
            (resume_dir / "journal.jsonl").read_bytes()
        )
        if (root / "resumed.jsonl").read_bytes() != reference_bytes:
            print("FAIL: resumed journal differs from serial reference",
                  file=sys.stderr)
            return 1
        if json.loads(resumed.stdout) != reference_mpki:
            print("FAIL: resumed MPKI differs from reference",
                  file=sys.stderr)
            return 1
        print("resumed journal byte-identical to serial reference")
        print("PASS: distributed campaigns byte-identical under node "
              "death and coordinator death")
    finally:
        if context is not None:
            context.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
